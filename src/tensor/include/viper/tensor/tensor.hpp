// Owning n-dimensional dense tensor. Deliberately minimal: Viper moves
// and stores weights, it does not do math on them — so no strides, views,
// or broadcasting, just a typed contiguous buffer with a shape.
//
// A tensor can alternatively *borrow* its payload from a refcounted
// checkpoint blob (from_view) — the zero-copy deserialize path. Borrowed
// payloads are immutable-by-aliasing: the first mutable access
// (mutable_bytes / mutable_data / perturb) materializes a private copy so
// the shared blob is never written through.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "viper/common/rng.hpp"
#include "viper/common/status.hpp"
#include "viper/tensor/dtype.hpp"

namespace viper {

/// Dense row-major shape; rank 0 denotes a scalar.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {}

  [[nodiscard]] std::size_t rank() const noexcept { return dims_.size(); }
  [[nodiscard]] std::int64_t dim(std::size_t i) const { return dims_.at(i); }
  [[nodiscard]] const std::vector<std::int64_t>& dims() const noexcept { return dims_; }

  /// Product of dimensions (1 for scalars). 0 if any dimension is 0.
  [[nodiscard]] std::int64_t num_elements() const noexcept;

  /// All dimensions non-negative.
  [[nodiscard]] bool valid() const noexcept;

  [[nodiscard]] std::string to_string() const;  ///< e.g. "[128, 20, 1]"

  friend bool operator==(const Shape& a, const Shape& b) noexcept {
    return a.dims_ == b.dims_;
  }

 private:
  std::vector<std::int64_t> dims_;
};

/// Contiguous typed buffer. Copyable (deep) and movable (cheap).
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialized buffer of shape × dtype.
  static Result<Tensor> zeros(DType dtype, Shape shape);

  /// Allocates and fills with uniform noise in [-bound, bound] (float types).
  static Result<Tensor> random(DType dtype, Shape shape, Rng& rng,
                               double bound = 0.1);

  /// Adopts an existing byte buffer; size must match shape × dtype.
  static Result<Tensor> from_bytes(DType dtype, Shape shape,
                                   std::vector<std::byte> bytes);

  /// Borrows an externally owned payload (zero-copy deserialize): the
  /// tensor aliases `bytes` and holds `owner` to keep them alive. With a
  /// null owner this degrades to an owned copy — there is nothing to
  /// anchor the view's lifetime to.
  static Result<Tensor> from_view(DType dtype, Shape shape,
                                  std::span<const std::byte> bytes,
                                  std::shared_ptr<const void> owner);

  [[nodiscard]] DType dtype() const noexcept { return dtype_; }
  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::int64_t num_elements() const noexcept {
    return shape_.num_elements();
  }
  [[nodiscard]] std::size_t byte_size() const noexcept { return bytes().size(); }

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return owner_ != nullptr ? view_ : std::span<const std::byte>(data_);
  }
  /// Mutable view; materializes a private copy first if the payload is
  /// borrowed (so writes never reach the shared blob).
  [[nodiscard]] std::span<std::byte> mutable_bytes() {
    materialize();
    return data_;
  }

  /// True when the payload lives in this tensor's own buffer; false when
  /// it aliases a shared blob.
  [[nodiscard]] bool owns_payload() const noexcept { return owner_ == nullptr; }

  /// Copy a borrowed payload into owned storage; no-op when already owned.
  void materialize();

  /// Typed access; T must match dtype (checked in debug builds only).
  template <typename T>
  [[nodiscard]] std::span<const T> data() const noexcept {
    const auto b = bytes();
    return {reinterpret_cast<const T*>(b.data()), b.size() / sizeof(T)};
  }
  template <typename T>
  [[nodiscard]] std::span<T> mutable_data() {
    const auto b = mutable_bytes();
    return {reinterpret_cast<T*>(b.data()), b.size() / sizeof(T)};
  }

  /// In-place perturbation of float tensors — simulates a training step's
  /// weight delta so consecutive checkpoints genuinely differ.
  void perturb(Rng& rng, double magnitude);

  /// Exact content equality (dtype, shape, bytes).
  [[nodiscard]] bool equals(const Tensor& other) const noexcept;

 private:
  Tensor(DType dtype, Shape shape, std::vector<std::byte> data)
      : dtype_(dtype), shape_(std::move(shape)), data_(std::move(data)) {}

  DType dtype_ = DType::kF32;
  Shape shape_;
  std::vector<std::byte> data_;
  /// Borrowed mode: keeps the backing blob alive while view_ aliases it.
  std::shared_ptr<const void> owner_;
  std::span<const std::byte> view_;
};

}  // namespace viper
