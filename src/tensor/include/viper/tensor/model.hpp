// A named, versioned collection of weight tensors — the unit that Viper
// checkpoints, transfers, and swaps.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "viper/common/status.hpp"
#include "viper/tensor/tensor.hpp"

namespace viper {

/// DNN model state: ordered (name → tensor). Iteration order is the
/// serialization order, so it is deterministic (lexicographic by name).
class Model {
 public:
  Model() = default;
  explicit Model(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Monotonically increasing checkpoint version; 0 = untrained.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  void set_version(std::uint64_t v) noexcept { version_ = v; }

  /// Iteration the weights were captured at (producer-side bookkeeping).
  [[nodiscard]] std::int64_t iteration() const noexcept { return iteration_; }
  void set_iteration(std::int64_t iter) noexcept { iteration_ = iter; }

  /// Paper-scale size used for transfer-cost accounting when the in-memory
  /// tensors are scaled down. 0 means "use the actual payload size".
  [[nodiscard]] std::uint64_t nominal_bytes() const noexcept { return nominal_bytes_; }
  void set_nominal_bytes(std::uint64_t bytes) noexcept { nominal_bytes_ = bytes; }

  /// Adds a tensor. Fails on duplicate names.
  Status add_tensor(std::string tensor_name, Tensor tensor);

  /// Replaces an existing tensor's contents (shape/dtype must match).
  Status update_tensor(const std::string& tensor_name, Tensor tensor);

  [[nodiscard]] bool has_tensor(const std::string& tensor_name) const;
  [[nodiscard]] Result<const Tensor*> tensor(const std::string& tensor_name) const;
  [[nodiscard]] Result<Tensor*> mutable_tensor(const std::string& tensor_name);

  [[nodiscard]] const std::map<std::string, Tensor>& tensors() const noexcept {
    return tensors_;
  }
  [[nodiscard]] std::map<std::string, Tensor>& mutable_tensors() noexcept {
    return tensors_;
  }

  [[nodiscard]] std::size_t num_tensors() const noexcept { return tensors_.size(); }
  [[nodiscard]] std::int64_t num_parameters() const noexcept;

  /// Actual in-memory payload size (sum of tensor byte sizes).
  [[nodiscard]] std::uint64_t payload_bytes() const noexcept;

  /// Size used for cost accounting: nominal if set, else payload.
  [[nodiscard]] std::uint64_t cost_bytes() const noexcept {
    return nominal_bytes_ ? nominal_bytes_ : payload_bytes();
  }

  /// Simulate one training step: perturb every float tensor.
  void perturb_weights(Rng& rng, double magnitude);

  /// Structural + content equality (version/iteration excluded).
  [[nodiscard]] bool same_weights(const Model& other) const noexcept;

 private:
  std::string name_;
  std::uint64_t version_ = 0;
  std::int64_t iteration_ = -1;
  std::uint64_t nominal_bytes_ = 0;
  std::map<std::string, Tensor> tensors_;
};

}  // namespace viper
