// Builders for the three applications the paper evaluates (§5.2):
// CANDLE-NT3 (A/B variants), CANDLE-TC1, and PtychoNN. Each builder
// produces a Model with a realistic layer structure whose tensors are
// scaled down by `width_scale` so tests stay fast, while nominal_bytes
// carries the paper-reported checkpoint size for cost accounting.
#pragma once

#include <cstdint>
#include <string_view>

#include "viper/common/rng.hpp"
#include "viper/common/status.hpp"
#include "viper/tensor/model.hpp"

namespace viper {

enum class AppModel { kNt3A, kNt3B, kTc1, kPtychoNN };

std::string_view to_string(AppModel app) noexcept;

/// Paper-reported serialized checkpoint size of each model.
std::uint64_t nominal_model_bytes(AppModel app) noexcept;

struct ArchitectureOptions {
  /// Multiplier on layer widths in (0, 1]. 1.0 builds full-size tensors;
  /// the default keeps models at a few hundred KB for tests.
  double width_scale = 1.0 / 16.0;
  /// Seed for weight initialization.
  std::uint64_t seed = 42;
  /// When true, Model::nominal_bytes is set to the paper size.
  bool set_nominal_size = true;
};

/// Build an initialized model of the given application architecture.
Result<Model> build_app_model(AppModel app, const ArchitectureOptions& options = {});

}  // namespace viper
