// Element types supported by Viper tensors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "viper/common/status.hpp"

namespace viper {

enum class DType : std::uint8_t {
  kF32 = 0,
  kF64 = 1,
  kF16 = 2,  ///< IEEE half, stored as raw uint16 payload.
  kI32 = 3,
  kI64 = 4,
  kU8 = 5,
};

/// Size in bytes of one element.
std::size_t dtype_size(DType dtype) noexcept;

/// "f32", "i64", ... — stable wire names used by the serializers.
std::string_view to_string(DType dtype) noexcept;

/// Parse a wire name back to a DType.
Result<DType> dtype_from_string(std::string_view name);

/// Validates the raw enum value read off the wire.
Result<DType> dtype_from_wire(std::uint8_t raw);

}  // namespace viper
