#include "viper/tensor/tensor.hpp"

#include <cstring>

namespace viper {

std::int64_t Shape::num_elements() const noexcept {
  std::int64_t n = 1;
  for (std::int64_t d : dims_) n *= d;
  return n;
}

bool Shape::valid() const noexcept {
  for (std::int64_t d : dims_) {
    if (d < 0) return false;
  }
  return true;
}

std::string Shape::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(dims_[i]);
  }
  out += "]";
  return out;
}

Result<Tensor> Tensor::zeros(DType dtype, Shape shape) {
  if (!shape.valid()) return invalid_argument("negative dimension in shape");
  const auto bytes =
      static_cast<std::size_t>(shape.num_elements()) * dtype_size(dtype);
  return Tensor(dtype, std::move(shape), std::vector<std::byte>(bytes));
}

Result<Tensor> Tensor::random(DType dtype, Shape shape, Rng& rng, double bound) {
  auto tensor = zeros(dtype, std::move(shape));
  if (!tensor.is_ok()) return tensor;
  Tensor& t = tensor.value();
  switch (dtype) {
    case DType::kF32:
      for (float& v : t.mutable_data<float>()) {
        v = static_cast<float>(rng.uniform(-bound, bound));
      }
      break;
    case DType::kF64:
      for (double& v : t.mutable_data<double>()) v = rng.uniform(-bound, bound);
      break;
    default:
      // Integer / raw types: fill with uniform bytes.
      for (std::byte& b : t.mutable_bytes()) {
        b = static_cast<std::byte>(rng.uniform_int(0, 255));
      }
  }
  return tensor;
}

Result<Tensor> Tensor::from_bytes(DType dtype, Shape shape,
                                  std::vector<std::byte> bytes) {
  if (!shape.valid()) return invalid_argument("negative dimension in shape");
  const auto expected =
      static_cast<std::size_t>(shape.num_elements()) * dtype_size(dtype);
  if (bytes.size() != expected) {
    return invalid_argument("byte buffer size " + std::to_string(bytes.size()) +
                            " does not match shape requiring " +
                            std::to_string(expected));
  }
  return Tensor(dtype, std::move(shape), std::move(bytes));
}

Result<Tensor> Tensor::from_view(DType dtype, Shape shape,
                                 std::span<const std::byte> bytes,
                                 std::shared_ptr<const void> owner) {
  if (!shape.valid()) return invalid_argument("negative dimension in shape");
  const auto expected =
      static_cast<std::size_t>(shape.num_elements()) * dtype_size(dtype);
  if (bytes.size() != expected) {
    return invalid_argument("byte view size " + std::to_string(bytes.size()) +
                            " does not match shape requiring " +
                            std::to_string(expected));
  }
  if (owner == nullptr) {
    return from_bytes(dtype, std::move(shape),
                      std::vector<std::byte>(bytes.begin(), bytes.end()));
  }
  Tensor t(dtype, std::move(shape), {});
  t.owner_ = std::move(owner);
  t.view_ = bytes;
  return t;
}

void Tensor::materialize() {
  if (owner_ == nullptr) return;
  data_.assign(view_.begin(), view_.end());
  owner_.reset();
  view_ = {};
}

void Tensor::perturb(Rng& rng, double magnitude) {
  switch (dtype_) {
    case DType::kF32:
      for (float& v : mutable_data<float>()) {
        v += static_cast<float>(rng.uniform(-magnitude, magnitude));
      }
      break;
    case DType::kF64:
      for (double& v : mutable_data<double>()) v += rng.uniform(-magnitude, magnitude);
      break;
    default:
      break;  // Non-float tensors are left untouched.
  }
}

bool Tensor::equals(const Tensor& other) const noexcept {
  const auto a = bytes();
  const auto b = other.bytes();
  return dtype_ == other.dtype_ && shape_ == other.shape_ &&
         a.size() == b.size() && std::memcmp(a.data(), b.data(), a.size()) == 0;
}

}  // namespace viper
