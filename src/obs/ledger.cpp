#include "viper/obs/ledger.hpp"

#include <algorithm>
#include <cstdio>

namespace viper::obs {

namespace detail {
std::atomic<bool> ledger_armed{false};
}  // namespace detail

namespace {

const Clock& default_clock() {
  static WallClock clock;
  return clock;
}

constexpr std::string_view kStageNames[kNumStages] = {
    "capture_start", "serialize_done", "commit_done",
    "flush_done",    "notified",       "fetch_start",
    "fetch_done",    "decode_done",    "swap_done",
};

}  // namespace

std::string_view to_string(Stage stage) noexcept {
  return kStageNames[static_cast<std::size_t>(stage)];
}

VersionLedger::VersionLedger()
    : windowed_latency_(WindowedHistogram::Options{.window_seconds = 60.0,
                                                   .num_buckets = 6}) {}

VersionLedger& VersionLedger::global() {
  static VersionLedger* ledger = new VersionLedger();  // never destroyed
  return *ledger;
}

void VersionLedger::set_clock(const Clock* clock) noexcept {
  clock_.store(clock, std::memory_order_release);
  windowed_latency_.set_clock(clock);
}

double VersionLedger::now() const noexcept {
  const Clock* clock = clock_.load(std::memory_order_acquire);
  return (clock != nullptr ? *clock : default_clock()).now();
}

void VersionLedger::record(const std::string& model, std::uint64_t version,
                           Stage stage, std::uint64_t trace_id,
                           int origin_rank) {
  record_at(model, version, stage, now(), trace_id, origin_rank);
}

void VersionLedger::record_at(const std::string& model, std::uint64_t version,
                              Stage stage, double timestamp,
                              std::uint64_t trace_id, int origin_rank) {
  double latency = -1.0;
  {
    std::lock_guard lock(mutex_);
    VersionTimeline& timeline = timelines_[{model, version}];
    if (timeline.model.empty()) {
      timeline.model = model;
      timeline.version = version;
    }
    if (timeline.trace_id == 0) timeline.trace_id = trace_id;
    if (timeline.origin_rank < 0) timeline.origin_rank = origin_rank;
    // First stamp wins: resends and retried stages keep the original
    // causal time (a duplicate notification must not rewrite history).
    double& slot = timeline.at[static_cast<std::size_t>(stage)];
    if (slot < 0.0) slot = timestamp;
    if (stage == Stage::kSwapDone) {
      timeline.interrupted = false;
      timeline.interrupted_reason.clear();
      latency = timeline.update_latency();
    }
  }
  if (latency >= 0.0) {
    update_latency_.record(latency);
    windowed_latency_.record(latency);
    static Histogram& registered = MetricsRegistry::global().histogram(
        "viper.obs.update_latency_seconds");
    registered.record(latency);
  }
}

std::size_t VersionLedger::close_interrupted(const std::string& model,
                                             const std::string& reason) {
  std::lock_guard lock(mutex_);
  std::size_t closed = 0;
  for (auto& [key, timeline] : timelines_) {
    if (key.first != model) continue;
    if (timeline.complete() || timeline.interrupted) continue;
    timeline.interrupted = true;
    timeline.interrupted_reason = reason;
    ++closed;
  }
  return closed;
}

std::size_t VersionLedger::close_superseded(const std::string& model,
                                            std::uint64_t head,
                                            const std::string& reason) {
  std::lock_guard lock(mutex_);
  std::size_t closed = 0;
  for (auto& [key, timeline] : timelines_) {
    if (key.first != model || key.second >= head) continue;
    if (timeline.complete() || timeline.interrupted) continue;
    timeline.interrupted = true;
    timeline.interrupted_reason = reason;
    ++closed;
  }
  return closed;
}

std::optional<VersionTimeline> VersionLedger::timeline(
    const std::string& model, std::uint64_t version) const {
  std::lock_guard lock(mutex_);
  auto it = timelines_.find({model, version});
  if (it == timelines_.end()) return std::nullopt;
  return it->second;
}

std::vector<VersionTimeline> VersionLedger::timelines() const {
  std::lock_guard lock(mutex_);
  std::vector<VersionTimeline> out;
  out.reserve(timelines_.size());
  for (const auto& [_, timeline] : timelines_) out.push_back(timeline);
  return out;
}

WindowedHistogram::Stats VersionLedger::windowed_update_latency() const {
  return windowed_latency_.stats();
}

const Histogram& VersionLedger::update_latency_histogram() const {
  return update_latency_;
}

double VersionLedger::staleness_seconds(const std::string& model,
                                        double now) const {
  std::lock_guard lock(mutex_);
  double newest_capture = -1.0;
  std::uint64_t newest_version = 0;
  for (const auto& [key, timeline] : timelines_) {
    if (key.first != model || !timeline.complete()) continue;
    if (timeline.version >= newest_version &&
        timeline.has(Stage::kCaptureStart)) {
      newest_version = timeline.version;
      newest_capture = timeline.stamp(Stage::kCaptureStart);
    }
  }
  return newest_capture < 0.0 ? -1.0 : now - newest_capture;
}

double VersionLedger::max_flush_gap_seconds(const std::string& model) const {
  std::lock_guard lock(mutex_);
  // Empty model = every model, each measured against its own flushes.
  std::map<std::string, std::vector<double>> flushes;
  for (const auto& [key, timeline] : timelines_) {
    if (!model.empty() && key.first != model) continue;
    if (!timeline.has(Stage::kFlushDone)) continue;
    flushes[key.first].push_back(timeline.stamp(Stage::kFlushDone));
  }
  double max_gap = 0.0;
  for (auto& [_, stamps] : flushes) {
    std::sort(stamps.begin(), stamps.end());
    for (std::size_t i = 1; i < stamps.size(); ++i) {
      max_gap = std::max(max_gap, stamps[i] - stamps[i - 1]);
    }
  }
  return max_gap;
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string VersionLedger::to_json() const {
  const auto snapshot = timelines();
  std::string out = "{\n  \"versions\": [";
  bool first = true;
  char buf[64];
  for (const VersionTimeline& timeline : snapshot) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"model\": ";
    append_json_string(out, timeline.model);
    out += ", \"version\": " + std::to_string(timeline.version);
    std::snprintf(buf, sizeof(buf), ", \"trace\": \"%llx\"",
                  static_cast<unsigned long long>(timeline.trace_id));
    out += buf;
    out += ", \"origin_rank\": " + std::to_string(timeline.origin_rank);
    out += ", \"stages\": {";
    bool first_stage = true;
    for (int i = 0; i < kNumStages; ++i) {
      const double t = timeline.at[static_cast<std::size_t>(i)];
      if (t < 0.0) continue;
      if (!first_stage) out += ", ";
      first_stage = false;
      out += '"';
      out += kStageNames[static_cast<std::size_t>(i)];
      out += "\": ";
      append_double(out, t);
    }
    out += "}";
    const double latency = timeline.update_latency();
    if (latency >= 0.0) {
      out += ", \"update_latency\": ";
      append_double(out, latency);
    }
    out += ", \"interrupted\": ";
    out += timeline.interrupted ? "true" : "false";
    if (timeline.interrupted) {
      out += ", \"reason\": ";
      append_json_string(out, timeline.interrupted_reason);
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void VersionLedger::clear() {
  std::lock_guard lock(mutex_);
  timelines_.clear();
  update_latency_.reset();
  windowed_latency_.reset();
}

}  // namespace viper::obs
