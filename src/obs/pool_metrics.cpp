#include "viper/obs/pool_metrics.hpp"

#include "viper/obs/metrics.hpp"

namespace viper::obs {

void instrument_thread_pool(ThreadPool& pool) {
  // Resolve handles once; the observer then records lock-free on worker
  // threads. set_task_observer is first-caller-wins, so racing callers
  // install at most one observer.
  Counter& tasks = MetricsRegistry::global().counter("viper.common.pool_tasks");
  Histogram& run_seconds =
      MetricsRegistry::global().histogram("viper.common.pool_task_seconds");
  Histogram& queue_wait = MetricsRegistry::global().histogram(
      "viper.common.pool_queue_wait_seconds");
  pool.set_task_observer(
      [&tasks, &run_seconds, &queue_wait](double wait_s, double run_s) {
        tasks.add();
        queue_wait.record(wait_s);
        run_seconds.record(run_s);
      });
}

void publish_thread_pool_gauges(const ThreadPool& pool) {
  const ThreadPool::Stats stats = pool.stats();
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.gauge("viper.common.pool_threads")
      .set(static_cast<double>(stats.num_threads));
  registry.gauge("viper.common.pool_queue_depth")
      .set(static_cast<double>(stats.queue_depth));
  registry.gauge("viper.common.pool_peak_queue_depth")
      .set(static_cast<double>(stats.peak_queue_depth));
  registry.gauge("viper.common.pool_tasks_rejected")
      .set(static_cast<double>(stats.tasks_rejected));
}

}  // namespace viper::obs
