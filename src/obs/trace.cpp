#include "viper/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "viper/common/thread_util.hpp"

namespace viper::obs {

namespace {

// Per-thread span nesting depth (the tracer is process-global but spans
// nest on their own thread).
thread_local int t_span_depth = 0;

const Clock& default_clock() {
  static WallClock clock;
  return clock;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // never destroyed
  return *tracer;
}

double Tracer::now() const {
  const Clock* clock = clock_.load(std::memory_order_acquire);
  return (clock != nullptr ? *clock : default_clock()).now();
}

Tracer::Span::Span(Tracer* tracer, std::string name, std::string category)
    : tracer_(tracer),
      name_(std::move(name)),
      category_(std::move(category)),
      start_(tracer->now()),
      depth_(t_span_depth++) {}

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    name_ = std::move(other.name_);
    category_ = std::move(other.category_);
    start_ = other.start_;
    depth_ = other.depth_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Tracer::Span::end() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  --t_span_depth;
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.thread_id = thread_ordinal();
  event.depth = depth_;
  event.start_seconds = start_;
  event.duration_seconds = tracer->now() - start_;
  tracer->record(std::move(event));
}

Tracer::Span Tracer::span(std::string name, std::string category) {
  if (!enabled()) return Span();
  return Span(this, std::move(name), std::move(category));
}

void Tracer::instant(std::string name, std::string category) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.thread_id = thread_ordinal();
  event.depth = t_span_depth;
  event.start_seconds = now();
  event.instant = true;
  record(std::move(event));
}

void Tracer::record(TraceEvent event) {
  std::lock_guard lock(mutex_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  const auto snapshot = events();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  char buf[128];
  for (const TraceEvent& event : snapshot) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": ";
    append_json_string(out, event.name);
    out += ", \"cat\": ";
    append_json_string(out, event.category);
    // Chrome trace timestamps are microseconds.
    std::snprintf(buf, sizeof(buf),
                  ", \"ph\": \"%s\", \"ts\": %.3f, \"pid\": 1, \"tid\": %d",
                  event.instant ? "i" : "X", event.start_seconds * 1e6,
                  event.thread_id);
    out += buf;
    if (event.instant) {
      out += ", \"s\": \"t\"";
    } else {
      std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f",
                    event.duration_seconds * 1e6);
      out += buf;
    }
    out += "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string Tracer::summary() const {
  struct Aggregate {
    std::uint64_t count = 0;
    double total = 0.0;
    double max = 0.0;
  };
  std::map<std::string, Aggregate> by_name;
  for (const TraceEvent& event : events()) {
    auto& agg = by_name[event.category + "/" + event.name];
    ++agg.count;
    agg.total += event.duration_seconds;
    agg.max = std::max(agg.max, event.duration_seconds);
  }
  std::string out;
  char buf[256];
  for (const auto& [name, agg] : by_name) {
    std::snprintf(buf, sizeof(buf),
                  "%-36s n=%-6llu total=%10.6fs mean=%10.6fs max=%10.6fs\n",
                  name.c_str(), static_cast<unsigned long long>(agg.count),
                  agg.total, agg.total / static_cast<double>(agg.count),
                  agg.max);
    out += buf;
  }
  const std::uint64_t lost = dropped();
  if (lost > 0) {
    std::snprintf(buf, sizeof(buf), "(%llu events dropped after buffer fill)\n",
                  static_cast<unsigned long long>(lost));
    out += buf;
  }
  return out;
}

}  // namespace viper::obs
