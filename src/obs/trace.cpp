#include "viper/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "viper/common/thread_util.hpp"
#include "viper/obs/context.hpp"

namespace viper::obs {

namespace {

// Per-thread span nesting depth (the tracer is process-global but spans
// nest on their own thread).
thread_local int t_span_depth = 0;

const Clock& default_clock() {
  static WallClock clock;
  return clock;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // never destroyed
  return *tracer;
}

double Tracer::now() const {
  const Clock* clock = clock_.load(std::memory_order_acquire);
  return (clock != nullptr ? *clock : default_clock()).now();
}

std::uint64_t Tracer::next_span_id() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Tracer::Span::Span(Tracer* tracer, std::string name, std::string category)
    : tracer_(tracer),
      name_(std::move(name)),
      category_(std::move(category)),
      start_(tracer->now()),
      depth_(t_span_depth++) {
  // Adopt the thread's trace context (if one is armed and installed):
  // this span joins the context's trace, parents on the span that handed
  // the work over, and becomes the parent of anything opened beneath it —
  // including work shipped to another rank while it is live.
  if (context_armed()) {
    TraceContext& context = detail::thread_context();
    if (context.valid()) {
      trace_id_ = context.trace_id;
      parent_span_id_ = context.parent_span_id;
      span_id_ = next_span_id();
      context.parent_span_id = span_id_;
      restore_parent_ = true;
    }
  }
}

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    name_ = std::move(other.name_);
    category_ = std::move(other.category_);
    start_ = other.start_;
    depth_ = other.depth_;
    trace_id_ = other.trace_id_;
    span_id_ = other.span_id_;
    parent_span_id_ = other.parent_span_id_;
    restore_parent_ = other.restore_parent_;
    other.tracer_ = nullptr;
    other.restore_parent_ = false;
  }
  return *this;
}

void Tracer::Span::end() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  --t_span_depth;
  if (restore_parent_) {
    // Only undo our own adoption: if the context changed underneath us
    // (a ScopedTraceContext swap mid-span), leave it alone.
    TraceContext& context = detail::thread_context();
    if (context.parent_span_id == span_id_) {
      context.parent_span_id = parent_span_id_;
    }
    restore_parent_ = false;
  }
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.thread_id = thread_ordinal();
  event.depth = depth_;
  event.start_seconds = start_;
  event.duration_seconds = tracer->now() - start_;
  event.trace_id = trace_id_;
  event.span_id = span_id_;
  event.parent_span_id = parent_span_id_;
  event.rank = tracer->rank();
  tracer->record(std::move(event));
}

Tracer::Span Tracer::span(std::string name, std::string category) {
  if (!enabled()) return Span();
  return Span(this, std::move(name), std::move(category));
}

void Tracer::instant(std::string name, std::string category) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.thread_id = thread_ordinal();
  event.depth = t_span_depth;
  event.start_seconds = now();
  event.instant = true;
  if (const TraceContext context = current_context(); context.valid()) {
    event.trace_id = context.trace_id;
    event.parent_span_id = context.parent_span_id;
  }
  event.rank = rank();
  record(std::move(event));
}

void Tracer::record(TraceEvent event) {
  std::lock_guard lock(mutex_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_chrome_event(std::string& out, const TraceEvent& event, int pid,
                         bool& first) {
  char buf[192];
  out += first ? "\n" : ",\n";
  first = false;
  out += "  {\"name\": ";
  append_json_string(out, event.name);
  out += ", \"cat\": ";
  append_json_string(out, event.category);
  // Chrome trace timestamps are microseconds.
  std::snprintf(buf, sizeof(buf),
                ", \"ph\": \"%s\", \"ts\": %.3f, \"pid\": %d, \"tid\": %d",
                event.instant ? "i" : "X", event.start_seconds * 1e6, pid,
                event.thread_id);
  out += buf;
  if (event.instant) {
    out += ", \"s\": \"t\"";
  } else {
    std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f",
                  event.duration_seconds * 1e6);
    out += buf;
  }
  if (event.trace_id != 0) {
    // Cross-rank linkage: spans of one version share "trace", and
    // "parent" chains them causally (across pids in a merged file).
    std::snprintf(buf, sizeof(buf),
                  ", \"args\": {\"trace\": \"%llx\", \"span\": %llu, "
                  "\"parent\": %llu}",
                  static_cast<unsigned long long>(event.trace_id),
                  static_cast<unsigned long long>(event.span_id),
                  static_cast<unsigned long long>(event.parent_span_id));
    out += buf;
  }
  out += "}";
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  const auto snapshot = events();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& event : snapshot) {
    append_chrome_event(out, event, event.rank, first);
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string merge_chrome_traces(const std::vector<RankTrace>& ranks) {
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const RankTrace& rank_trace : ranks) {
    for (const TraceEvent& event : rank_trace.events) {
      append_chrome_event(out, event, rank_trace.rank, first);
    }
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string merge_chrome_trace_files(const std::vector<std::string>& jsons) {
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const std::string& json : jsons) {
    // Our own export shape: everything between the '[' after
    // "traceEvents" and the last ']' is the event list.
    const auto key = json.find("\"traceEvents\"");
    if (key == std::string::npos) continue;
    const auto open = json.find('[', key);
    const auto close = json.rfind(']');
    if (open == std::string::npos || close == std::string::npos || close <= open) {
      continue;
    }
    std::string body = json.substr(open + 1, close - open - 1);
    // Trim whitespace so empty arrays contribute nothing.
    const auto begin = body.find_first_not_of(" \n\r\t");
    if (begin == std::string::npos) continue;
    const auto end = body.find_last_not_of(" \n\r\t");
    body = body.substr(begin, end - begin + 1);
    out += first ? "\n" : ",\n";
    first = false;
    out += body;
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string Tracer::summary() const {
  struct Aggregate {
    std::uint64_t count = 0;
    double total = 0.0;
    double max = 0.0;
  };
  std::map<std::string, Aggregate> by_name;
  for (const TraceEvent& event : events()) {
    auto& agg = by_name[event.category + "/" + event.name];
    ++agg.count;
    agg.total += event.duration_seconds;
    agg.max = std::max(agg.max, event.duration_seconds);
  }
  std::string out;
  char buf[256];
  for (const auto& [name, agg] : by_name) {
    std::snprintf(buf, sizeof(buf),
                  "%-36s n=%-6llu total=%10.6fs mean=%10.6fs max=%10.6fs\n",
                  name.c_str(), static_cast<unsigned long long>(agg.count),
                  agg.total, agg.total / static_cast<double>(agg.count),
                  agg.max);
    out += buf;
  }
  const std::uint64_t lost = dropped();
  if (lost > 0) {
    std::snprintf(buf, sizeof(buf), "(%llu events dropped after buffer fill)\n",
                  static_cast<unsigned long long>(lost));
    out += buf;
  }
  return out;
}

}  // namespace viper::obs
