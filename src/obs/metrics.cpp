#include "viper/obs/metrics.hpp"

#include <cstdio>

namespace viper::obs {

double Histogram::percentile(double q) const noexcept {
  std::array<std::uint64_t, kNumBuckets> snapshot;
  std::uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    snapshot[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    total += snapshot[static_cast<std::size_t>(i)];
  }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the sample the quantile falls on (1-based, nearest-rank rule).
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.999999);
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += snapshot[static_cast<std::size_t>(i)];
    if (cumulative >= rank) {
      const double bound = bucket_upper_bound(i);
      const double observed_max = max();
      return observed_max > 0.0 && bound > observed_max ? observed_max : bound;
    }
  }
  return max();
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.push_back({name, counter->value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.push_back({name, gauge->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    out.histograms.push_back({name, hist->count(), hist->sum(), hist->mean(),
                              hist->percentile(0.50), hist->percentile(0.95),
                              hist->percentile(0.99), hist->max()});
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [_, counter] : counters_) counter->reset();
  for (auto& [_, gauge] : gauges_) gauge->reset();
  for (auto& [_, hist] : histograms_) hist->reset();
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& c : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, c.name);
    out += ": " + std::to_string(c.value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& g : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, g.name);
    out += ": ";
    append_double(out, g.value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& h : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, h.name);
    out += ": {\"count\": " + std::to_string(h.count) + ", \"sum\": ";
    append_double(out, h.sum);
    out += ", \"mean\": ";
    append_double(out, h.mean);
    out += ", \"p50\": ";
    append_double(out, h.p50);
    out += ", \"p95\": ";
    append_double(out, h.p95);
    out += ", \"p99\": ";
    append_double(out, h.p99);
    out += ", \"max\": ";
    append_double(out, h.max);
    out += "}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::to_text() const {
  std::string out;
  char buf[256];
  for (const auto& c : counters) {
    std::snprintf(buf, sizeof(buf), "%-44s %llu\n", c.name.c_str(),
                  static_cast<unsigned long long>(c.value));
    out += buf;
  }
  for (const auto& g : gauges) {
    std::snprintf(buf, sizeof(buf), "%-44s %.6g\n", g.name.c_str(), g.value);
    out += buf;
  }
  for (const auto& h : histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%-44s n=%llu mean=%.3gs p50=%.3gs p95=%.3gs p99=%.3gs "
                  "max=%.3gs\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean, h.p50, h.p95, h.p99, h.max);
    out += buf;
  }
  return out;
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const HistogramSample* MetricsSnapshot::histogram_sample(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map 1:1
/// by flattening the dots.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  char buf[256];
  for (const auto& c : counters) {
    const std::string name = prometheus_name(c.name);
    out += "# TYPE " + name + "_total counter\n";
    std::snprintf(buf, sizeof(buf), "%s_total %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c.value));
    out += buf;
  }
  for (const auto& g : gauges) {
    const std::string name = prometheus_name(g.name);
    out += "# TYPE " + name + " gauge\n";
    std::snprintf(buf, sizeof(buf), "%s %.9g\n", name.c_str(), g.value);
    out += buf;
  }
  for (const auto& h : histograms) {
    const std::string name = prometheus_name(h.name);
    out += "# TYPE " + name + " summary\n";
    std::snprintf(buf, sizeof(buf),
                  "%s{quantile=\"0.5\"} %.9g\n"
                  "%s{quantile=\"0.95\"} %.9g\n"
                  "%s{quantile=\"0.99\"} %.9g\n",
                  name.c_str(), h.p50, name.c_str(), h.p95, name.c_str(),
                  h.p99);
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_sum %.9g\n%s_count %llu\n",
                  name.c_str(), h.sum, name.c_str(),
                  static_cast<unsigned long long>(h.count));
    out += buf;
  }
  return out;
}

}  // namespace viper::obs
