#include "viper/obs/context.hpp"

#include <cstring>

namespace viper::obs {

namespace detail {

std::atomic<bool> context_armed{false};

TraceContext& thread_context() noexcept {
  thread_local TraceContext context;
  return context;
}

}  // namespace detail

void set_context_armed(bool armed) noexcept {
  detail::context_armed.store(armed, std::memory_order_relaxed);
}

std::uint64_t TraceContext::trace_id_for(std::string_view model_name,
                                         std::uint64_t version) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (char c : model_name) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 0x100000001b3ull;
  }
  for (int i = 0; i < 8; ++i) {
    hash ^= (version >> (8 * i)) & 0xff;
    hash *= 0x100000001b3ull;
  }
  return hash == 0 ? 1 : hash;
}

void TraceContext::encode(std::span<std::byte, kWireBytes> out) const noexcept {
  std::memcpy(out.data(), &trace_id, sizeof(trace_id));
  std::memcpy(out.data() + 8, &parent_span_id, sizeof(parent_span_id));
  std::memcpy(out.data() + 16, &origin_rank, sizeof(origin_rank));
}

TraceContext TraceContext::decode(std::span<const std::byte> in) noexcept {
  TraceContext context;
  if (in.size() < kWireBytes) return context;
  std::memcpy(&context.trace_id, in.data(), sizeof(context.trace_id));
  std::memcpy(&context.parent_span_id, in.data() + 8,
              sizeof(context.parent_span_id));
  std::memcpy(&context.origin_rank, in.data() + 16,
              sizeof(context.origin_rank));
  return context;
}

}  // namespace viper::obs
