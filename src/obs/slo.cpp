#include "viper/obs/slo.hpp"

#include <algorithm>
#include <cstdio>

namespace viper::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

SloCheck latency_check(double limit, double observed, std::uint64_t samples,
                       const char* source) {
  SloCheck check;
  check.name = "p99_update_latency";
  check.enabled = limit > 0.0;
  check.limit = limit;
  check.observed = observed;
  check.samples = samples;
  check.detail = source;
  if (check.enabled && samples > 0) check.pass = observed <= limit;
  if (check.enabled && samples == 0) check.detail = "no update samples";
  return check;
}

SloCheck corrupt_check(const SloSpec& spec, std::uint64_t corrupt_serves) {
  SloCheck check;
  check.name = "corrupt_serves";
  check.enabled = spec.check_corrupt_serves;
  check.limit = static_cast<double>(spec.max_corrupt_serves);
  check.observed = static_cast<double>(corrupt_serves);
  check.samples = corrupt_serves;
  if (check.enabled) check.pass = corrupt_serves <= spec.max_corrupt_serves;
  return check;
}

void finish(SloReport& report) {
  for (const SloCheck& check : report.checks) {
    if (check.enabled && !check.pass) report.pass = false;
  }
}

void append_check_json(std::string& out, const SloCheck& check) {
  out += "{\"name\": \"" + check.name + "\", \"enabled\": ";
  out += check.enabled ? "true" : "false";
  out += ", \"pass\": ";
  out += check.pass ? "true" : "false";
  out += ", \"observed\": ";
  append_double(out, check.observed);
  out += ", \"limit\": ";
  append_double(out, check.limit);
  out += ", \"samples\": " + std::to_string(check.samples);
  out += ", \"detail\": \"" + check.detail + "\"}";
}

void append_check_text(std::string& out, const SloCheck& check,
                       const char* indent) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s%-24s %s observed=%.6g limit=%.6g%s%s\n",
                indent, check.name.c_str(),
                !check.enabled ? "SKIP" : (check.pass ? "PASS" : "FAIL"),
                check.observed, check.limit, check.detail.empty() ? "" : "  ",
                check.detail.c_str());
  out += buf;
}

double p99_nearest_rank(std::vector<double>& values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  std::size_t rank = static_cast<std::size_t>(
      0.99 * static_cast<double>(values.size()) + 0.999999);
  if (rank == 0) rank = 1;
  if (rank > values.size()) rank = values.size();
  return values[rank - 1];
}

std::uint64_t counted_since(const MetricsSnapshot& snapshot, const char* name,
                            std::uint64_t baseline) {
  const std::uint64_t total = snapshot.counter_value(name);
  return total > baseline ? total - baseline : 0;
}

}  // namespace

SloReport evaluate_slo(const SloSpec& spec, const VersionLedger& ledger,
                       const MetricsSnapshot& snapshot) {
  SloReport report;

  // p99 update latency: windowed stats preferred; a run whose window
  // already rotated dry (short experiment, long window gap) falls back to
  // the lifetime histogram so a finished run still gets a verdict.
  const WindowedHistogram::Stats windowed = ledger.windowed_update_latency();
  if (windowed.count > 0) {
    report.checks.push_back(latency_check(spec.max_p99_update_latency_seconds,
                                          windowed.p99, windowed.count,
                                          "windowed"));
  } else {
    const Histogram& lifetime = ledger.update_latency_histogram();
    report.checks.push_back(latency_check(spec.max_p99_update_latency_seconds,
                                          lifetime.percentile(0.99),
                                          lifetime.count(), "lifetime"));
  }

  {
    SloCheck check;
    check.name = "rpo";
    check.enabled = spec.max_rpo_seconds > 0.0;
    check.limit = spec.max_rpo_seconds;
    check.observed = ledger.max_flush_gap_seconds(spec.model);
    if (check.enabled) check.pass = check.observed <= check.limit;
    check.detail = "max gap between durable flush commits";
    report.checks.push_back(check);
  }

  report.checks.push_back(corrupt_check(
      spec, snapshot.counter_value("viper.consumer.corrupt_serves")));

  {
    SloCheck check;
    check.name = "recovery_time";
    check.enabled = spec.max_recovery_seconds > 0.0;
    check.limit = spec.max_recovery_seconds;
    if (const HistogramSample* recovery =
            snapshot.histogram_sample("viper.durability.recovery_seconds")) {
      check.observed = recovery->max;
      check.samples = recovery->count;
    }
    if (check.enabled && check.samples > 0) {
      check.pass = check.observed <= check.limit;
    } else if (check.enabled) {
      check.detail = "no recoveries observed";
    }
    report.checks.push_back(check);
  }

  finish(report);
  return report;
}

SloReport evaluate_slo_from_latencies(const SloSpec& spec,
                                      std::span<const double> update_latencies,
                                      std::uint64_t corrupt_serves) {
  SloReport report;
  double p99 = 0.0;
  if (!update_latencies.empty()) {
    std::vector<double> sorted(update_latencies.begin(),
                               update_latencies.end());
    std::sort(sorted.begin(), sorted.end());
    // Nearest-rank: ceil(0.99 * n), 1-based.
    std::size_t rank = static_cast<std::size_t>(
        0.99 * static_cast<double>(sorted.size()) + 0.999999);
    if (rank == 0) rank = 1;
    if (rank > sorted.size()) rank = sorted.size();
    p99 = sorted[rank - 1];
  }
  report.checks.push_back(latency_check(spec.max_p99_update_latency_seconds,
                                        p99, update_latencies.size(),
                                        "experiment records"));
  report.checks.push_back(corrupt_check(spec, corrupt_serves));
  finish(report);
  return report;
}

const SloCheck* SloReport::check(std::string_view name) const {
  for (const SloCheck& check : checks) {
    if (check.name == name) return &check;
  }
  return nullptr;
}

std::string SloReport::to_json() const {
  std::string out = "{\n  \"pass\": ";
  out += pass ? "true" : "false";
  out += ",\n  \"checks\": [";
  bool first = true;
  for (const SloCheck& check : checks) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_check_json(out, check);
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string SloReport::to_text() const {
  std::string out = pass ? "SLO verdict: PASS\n" : "SLO verdict: FAIL\n";
  for (const SloCheck& check : checks) append_check_text(out, check, "  ");
  return out;
}

FleetSloReport evaluate_fleet_slo(const FleetSloSpec& spec,
                                  const VersionLedger& ledger,
                                  const MetricsSnapshot& snapshot) {
  FleetSloReport report;
  const std::vector<VersionTimeline> timelines = ledger.timelines();

  // Fleet membership: explicit list, else every model the ledger saw
  // (timelines() is (model, version)-sorted, so models come out sorted
  // and the report order is deterministic).
  std::vector<std::string> models = spec.models;
  if (models.empty()) {
    for (const VersionTimeline& timeline : timelines) {
      if (models.empty() || models.back() != timeline.model) {
        models.push_back(timeline.model);
      }
    }
  }

  // Per-model budgets: p99 update latency over that model's completed
  // timelines (the ledger's windowed/lifetime histograms merge all
  // models, which would let a fast model mask a slow one) plus RPO.
  for (const std::string& model : models) {
    SloReport model_report;
    std::vector<double> latencies;
    for (const VersionTimeline& timeline : timelines) {
      if (timeline.model != model) continue;
      const double latency = timeline.update_latency();
      if (latency >= 0.0) latencies.push_back(latency);
    }
    const std::uint64_t samples = latencies.size();
    model_report.checks.push_back(
        latency_check(spec.budgets.max_p99_update_latency_seconds,
                      p99_nearest_rank(latencies), samples, "ledger timelines"));
    {
      SloCheck check;
      check.name = "rpo";
      check.enabled = spec.budgets.max_rpo_seconds > 0.0;
      check.limit = spec.budgets.max_rpo_seconds;
      check.observed = ledger.max_flush_gap_seconds(model);
      if (check.enabled) check.pass = check.observed <= check.limit;
      check.detail = "max gap between durable flush commits";
      model_report.checks.push_back(check);
    }
    finish(model_report);
    if (!model_report.pass) report.pass = false;
    report.per_model.emplace_back(model, std::move(model_report));
  }

  report.fleet_checks.push_back(corrupt_check(
      spec.budgets, counted_since(snapshot, "viper.consumer.corrupt_serves",
                                  spec.corrupt_serves_baseline)));

  {
    SloCheck check;
    check.name = "torn_serves";
    check.enabled = true;
    check.limit = static_cast<double>(spec.max_torn_serves);
    const std::uint64_t torn = counted_since(
        snapshot, "viper.soak.torn_serves", spec.torn_serves_baseline);
    check.observed = static_cast<double>(torn);
    check.samples = torn;
    check.pass = torn <= spec.max_torn_serves;
    check.detail = "incomplete models observed by traffic";
    report.fleet_checks.push_back(check);
  }

  {
    // Recovery budget covers both restart paths: journal replay
    // (viper.durability.recovery_seconds) and the soak harness's
    // whole-rank kill/rebuild wall time (viper.soak.recovery_seconds).
    SloCheck check;
    check.name = "recovery_time";
    check.enabled = spec.budgets.max_recovery_seconds > 0.0;
    check.limit = spec.budgets.max_recovery_seconds;
    for (const char* name :
         {"viper.durability.recovery_seconds", "viper.soak.recovery_seconds"}) {
      if (const HistogramSample* sample = snapshot.histogram_sample(name)) {
        if (sample->count > 0 && sample->max > check.observed) {
          check.observed = sample->max;
        }
        check.samples += sample->count;
      }
    }
    if (check.enabled && check.samples > 0) {
      check.pass = check.observed <= check.limit;
    } else if (check.enabled) {
      check.detail = "no recoveries observed";
    }
    report.fleet_checks.push_back(check);
  }

  {
    // Every timeline must be closed: complete (swapped) or explicitly
    // interrupted (recovery replay closed it). An open timeline means a
    // crashed version's fate was never resolved — the soak's core
    // crash/recovery invariant.
    SloCheck check;
    check.name = "timelines_closed";
    check.enabled = spec.require_timelines_closed;
    check.limit = 0.0;
    std::uint64_t open = 0;
    std::string first_open;
    for (const VersionTimeline& timeline : timelines) {
      if (!spec.models.empty() &&
          std::find(spec.models.begin(), spec.models.end(), timeline.model) ==
              spec.models.end()) {
        continue;
      }
      ++check.samples;
      if (timeline.complete() || timeline.interrupted) continue;
      ++open;
      if (first_open.empty()) {
        first_open = timeline.model + "/v" + std::to_string(timeline.version);
      }
    }
    check.observed = static_cast<double>(open);
    if (check.enabled) check.pass = open == 0;
    check.detail = open == 0 ? "every timeline complete or closed-interrupted"
                             : "first open: " + first_open;
    report.fleet_checks.push_back(check);
  }

  for (const SloCheck& check : report.fleet_checks) {
    if (check.enabled && !check.pass) report.pass = false;
  }
  return report;
}

const SloCheck* FleetSloReport::fleet_check(std::string_view name) const {
  for (const SloCheck& check : fleet_checks) {
    if (check.name == name) return &check;
  }
  return nullptr;
}

std::string FleetSloReport::to_json() const {
  std::string out = "{\n  \"pass\": ";
  out += pass ? "true" : "false";
  out += ",\n  \"models\": {";
  bool first_model = true;
  for (const auto& [model, model_report] : per_model) {
    out += first_model ? "\n" : ",\n";
    first_model = false;
    out += "    \"" + model + "\": {\"pass\": ";
    out += model_report.pass ? "true" : "false";
    out += ", \"checks\": [";
    bool first = true;
    for (const SloCheck& check : model_report.checks) {
      out += first ? "\n      " : ",\n      ";
      first = false;
      append_check_json(out, check);
    }
    out += "\n    ]}";
  }
  out += "\n  },\n  \"fleet_checks\": [";
  bool first = true;
  for (const SloCheck& check : fleet_checks) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_check_json(out, check);
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string FleetSloReport::to_text() const {
  std::string out =
      pass ? "Fleet SLO verdict: PASS\n" : "Fleet SLO verdict: FAIL\n";
  for (const auto& [model, model_report] : per_model) {
    out += "  model " + model + ": ";
    out += model_report.pass ? "PASS\n" : "FAIL\n";
    for (const SloCheck& check : model_report.checks) {
      append_check_text(out, check, "    ");
    }
  }
  out += "  fleet:\n";
  for (const SloCheck& check : fleet_checks) {
    append_check_text(out, check, "    ");
  }
  return out;
}

}  // namespace viper::obs
