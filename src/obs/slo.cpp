#include "viper/obs/slo.hpp"

#include <algorithm>
#include <cstdio>

namespace viper::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

SloCheck latency_check(double limit, double observed, std::uint64_t samples,
                       const char* source) {
  SloCheck check;
  check.name = "p99_update_latency";
  check.enabled = limit > 0.0;
  check.limit = limit;
  check.observed = observed;
  check.samples = samples;
  check.detail = source;
  if (check.enabled && samples > 0) check.pass = observed <= limit;
  if (check.enabled && samples == 0) check.detail = "no update samples";
  return check;
}

SloCheck corrupt_check(const SloSpec& spec, std::uint64_t corrupt_serves) {
  SloCheck check;
  check.name = "corrupt_serves";
  check.enabled = spec.check_corrupt_serves;
  check.limit = static_cast<double>(spec.max_corrupt_serves);
  check.observed = static_cast<double>(corrupt_serves);
  check.samples = corrupt_serves;
  if (check.enabled) check.pass = corrupt_serves <= spec.max_corrupt_serves;
  return check;
}

void finish(SloReport& report) {
  for (const SloCheck& check : report.checks) {
    if (check.enabled && !check.pass) report.pass = false;
  }
}

}  // namespace

SloReport evaluate_slo(const SloSpec& spec, const VersionLedger& ledger,
                       const MetricsSnapshot& snapshot) {
  SloReport report;

  // p99 update latency: windowed stats preferred; a run whose window
  // already rotated dry (short experiment, long window gap) falls back to
  // the lifetime histogram so a finished run still gets a verdict.
  const WindowedHistogram::Stats windowed = ledger.windowed_update_latency();
  if (windowed.count > 0) {
    report.checks.push_back(latency_check(spec.max_p99_update_latency_seconds,
                                          windowed.p99, windowed.count,
                                          "windowed"));
  } else {
    const Histogram& lifetime = ledger.update_latency_histogram();
    report.checks.push_back(latency_check(spec.max_p99_update_latency_seconds,
                                          lifetime.percentile(0.99),
                                          lifetime.count(), "lifetime"));
  }

  {
    SloCheck check;
    check.name = "rpo";
    check.enabled = spec.max_rpo_seconds > 0.0;
    check.limit = spec.max_rpo_seconds;
    check.observed = ledger.max_flush_gap_seconds(spec.model);
    if (check.enabled) check.pass = check.observed <= check.limit;
    check.detail = "max gap between durable flush commits";
    report.checks.push_back(check);
  }

  report.checks.push_back(corrupt_check(
      spec, snapshot.counter_value("viper.consumer.corrupt_serves")));

  {
    SloCheck check;
    check.name = "recovery_time";
    check.enabled = spec.max_recovery_seconds > 0.0;
    check.limit = spec.max_recovery_seconds;
    if (const HistogramSample* recovery =
            snapshot.histogram_sample("viper.durability.recovery_seconds")) {
      check.observed = recovery->max;
      check.samples = recovery->count;
    }
    if (check.enabled && check.samples > 0) {
      check.pass = check.observed <= check.limit;
    } else if (check.enabled) {
      check.detail = "no recoveries observed";
    }
    report.checks.push_back(check);
  }

  finish(report);
  return report;
}

SloReport evaluate_slo_from_latencies(const SloSpec& spec,
                                      std::span<const double> update_latencies,
                                      std::uint64_t corrupt_serves) {
  SloReport report;
  double p99 = 0.0;
  if (!update_latencies.empty()) {
    std::vector<double> sorted(update_latencies.begin(),
                               update_latencies.end());
    std::sort(sorted.begin(), sorted.end());
    // Nearest-rank: ceil(0.99 * n), 1-based.
    std::size_t rank = static_cast<std::size_t>(
        0.99 * static_cast<double>(sorted.size()) + 0.999999);
    if (rank == 0) rank = 1;
    if (rank > sorted.size()) rank = sorted.size();
    p99 = sorted[rank - 1];
  }
  report.checks.push_back(latency_check(spec.max_p99_update_latency_seconds,
                                        p99, update_latencies.size(),
                                        "experiment records"));
  report.checks.push_back(corrupt_check(spec, corrupt_serves));
  finish(report);
  return report;
}

const SloCheck* SloReport::check(std::string_view name) const {
  for (const SloCheck& check : checks) {
    if (check.name == name) return &check;
  }
  return nullptr;
}

std::string SloReport::to_json() const {
  std::string out = "{\n  \"pass\": ";
  out += pass ? "true" : "false";
  out += ",\n  \"checks\": [";
  bool first = true;
  for (const SloCheck& check : checks) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + check.name + "\", \"enabled\": ";
    out += check.enabled ? "true" : "false";
    out += ", \"pass\": ";
    out += check.pass ? "true" : "false";
    out += ", \"observed\": ";
    append_double(out, check.observed);
    out += ", \"limit\": ";
    append_double(out, check.limit);
    out += ", \"samples\": " + std::to_string(check.samples);
    out += ", \"detail\": \"" + check.detail + "\"}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string SloReport::to_text() const {
  std::string out = pass ? "SLO verdict: PASS\n" : "SLO verdict: FAIL\n";
  char buf[256];
  for (const SloCheck& check : checks) {
    std::snprintf(buf, sizeof(buf), "  %-24s %s observed=%.6g limit=%.6g%s%s\n",
                  check.name.c_str(),
                  !check.enabled ? "SKIP" : (check.pass ? "PASS" : "FAIL"),
                  check.observed, check.limit,
                  check.detail.empty() ? "" : "  ", check.detail.c_str());
    out += buf;
  }
  return out;
}

}  // namespace viper::obs
