#include "viper/obs/window.hpp"

#include <algorithm>
#include <cmath>

namespace viper::obs {

namespace {

const Clock& default_clock() {
  static WallClock clock;
  return clock;
}

std::uint64_t to_ns(double seconds) noexcept {
  return seconds <= 0 ? 0 : static_cast<std::uint64_t>(seconds * 1e9);
}

}  // namespace

WindowedHistogram::WindowedHistogram() : WindowedHistogram(Options{}) {}

WindowedHistogram::WindowedHistogram(Options options) : options_(options) {
  if (options_.num_buckets < 1) options_.num_buckets = 1;
  if (options_.window_seconds <= 0.0) options_.window_seconds = 1.0;
  bucket_seconds_ =
      options_.window_seconds / static_cast<double>(options_.num_buckets);
  ring_.reserve(static_cast<std::size_t>(options_.num_buckets));
  for (int i = 0; i < options_.num_buckets; ++i) {
    ring_.push_back(std::make_unique<Bucket>());
  }
}

double WindowedHistogram::now() const noexcept {
  const Clock* clock = clock_.load(std::memory_order_acquire);
  return (clock != nullptr ? *clock : default_clock()).now();
}

std::int64_t WindowedHistogram::current_epoch() const noexcept {
  return static_cast<std::int64_t>(std::floor(now() / bucket_seconds_));
}

WindowedHistogram::Bucket& WindowedHistogram::bucket_for(
    std::int64_t epoch) noexcept {
  Bucket& bucket = *ring_[static_cast<std::size_t>(
      epoch % static_cast<std::int64_t>(ring_.size()))];
  std::int64_t tagged = bucket.epoch.load(std::memory_order_acquire);
  while (tagged < epoch) {
    // The slice wrapped around: the first recorder to notice claims it for
    // the new epoch and zeroes it. Losers of the CAS see the new tag and
    // record straight in. A reader racing the wipe can at worst attribute
    // a stale sample to the fresh slice — bounded by one bucket's width,
    // which is the resolution the window already has.
    if (bucket.epoch.compare_exchange_weak(tagged, epoch,
                                           std::memory_order_acq_rel)) {
      for (auto& count : bucket.counts) {
        count.store(0, std::memory_order_relaxed);
      }
      bucket.count.store(0, std::memory_order_relaxed);
      bucket.sum_ns.store(0, std::memory_order_relaxed);
      bucket.max_ns.store(0, std::memory_order_relaxed);
      break;
    }
  }
  return bucket;
}

void WindowedHistogram::record(double seconds) noexcept {
  Bucket& bucket = bucket_for(current_epoch());
  const std::uint64_t ns = to_ns(seconds);
  bucket.counts[static_cast<std::size_t>(Histogram::bucket_index(seconds))]
      .fetch_add(1, std::memory_order_relaxed);
  bucket.count.fetch_add(1, std::memory_order_relaxed);
  bucket.sum_ns.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t cur = bucket.max_ns.load(std::memory_order_relaxed);
  while (ns > cur && !bucket.max_ns.compare_exchange_weak(
                         cur, ns, std::memory_order_relaxed)) {
  }
}

WindowedHistogram::Stats WindowedHistogram::stats() const noexcept {
  const std::int64_t epoch = current_epoch();
  const std::int64_t oldest = epoch - static_cast<std::int64_t>(ring_.size()) + 1;

  std::array<std::uint64_t, Histogram::kNumBuckets> merged{};
  Stats out;
  out.window_seconds = options_.window_seconds;
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;
  for (const auto& bucket : ring_) {
    const std::int64_t tagged = bucket->epoch.load(std::memory_order_acquire);
    if (tagged < oldest || tagged > epoch) continue;  // expired slice
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      merged[static_cast<std::size_t>(i)] +=
          bucket->counts[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
    }
    out.count += bucket->count.load(std::memory_order_relaxed);
    sum_ns += bucket->sum_ns.load(std::memory_order_relaxed);
    max_ns = std::max(max_ns, bucket->max_ns.load(std::memory_order_relaxed));
  }
  out.sum = static_cast<double>(sum_ns) * 1e-9;
  out.max = static_cast<double>(max_ns) * 1e-9;
  out.mean = out.count == 0 ? 0.0 : out.sum / static_cast<double>(out.count);
  out.rate_per_second = out.count == 0
                            ? 0.0
                            : static_cast<double>(out.count) /
                                  options_.window_seconds;

  const auto quantile = [&](double q) -> double {
    if (out.count == 0) return 0.0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(out.count) + 0.999999);
    if (rank == 0) rank = 1;
    if (rank > out.count) rank = out.count;
    std::uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      cumulative += merged[static_cast<std::size_t>(i)];
      if (cumulative >= rank) {
        const double bound = Histogram::bucket_upper_bound(i);
        return out.max > 0.0 && bound > out.max ? out.max : bound;
      }
    }
    return out.max;
  };
  out.p50 = quantile(0.50);
  out.p95 = quantile(0.95);
  out.p99 = quantile(0.99);
  return out;
}

void WindowedHistogram::reset() noexcept {
  for (auto& bucket : ring_) {
    bucket->epoch.store(-1, std::memory_order_release);
    for (auto& count : bucket->counts) {
      count.store(0, std::memory_order_relaxed);
    }
    bucket->count.store(0, std::memory_order_relaxed);
    bucket->sum_ns.store(0, std::memory_order_relaxed);
    bucket->max_ns.store(0, std::memory_order_relaxed);
  }
}

WindowedRegistry& WindowedRegistry::global() {
  static WindowedRegistry* registry = new WindowedRegistry();  // never destroyed
  return *registry;
}

WindowedHistogram& WindowedRegistry::histogram(const std::string& name) {
  return histogram(name, WindowedHistogram::Options{});
}

WindowedHistogram& WindowedRegistry::histogram(
    const std::string& name, WindowedHistogram::Options options) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<WindowedHistogram>(options);
  return *slot;
}

std::vector<WindowedRegistry::Sample> WindowedRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<Sample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    out.push_back({name, hist->stats()});
  }
  return out;
}

void WindowedRegistry::set_clock(const Clock* clock) {
  std::lock_guard lock(mutex_);
  for (auto& [_, hist] : histograms_) hist->set_clock(clock);
}

void WindowedRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [_, hist] : histograms_) hist->reset();
}

}  // namespace viper::obs
