// Sliding-window metrics: a ring of sub-histograms rotated by time, so
// percentiles and rates answer "over the last N seconds" instead of
// "since the process started". Lifetime histograms make a good flight
// recorder but a useless control signal — a calibrator or SLO check needs
// the recent distribution, not one polluted by yesterday's warm-up.
//
// The ring advances lazily on record/read (no rotation thread): each
// bucket carries the epoch it belongs to, and a recorder that lands on a
// stale bucket resets it for the current epoch first. All state is
// relaxed atomics — recording is lock-free and a snapshot merges the
// buckets that still fall inside the window.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "viper/common/clock.hpp"
#include "viper/obs/metrics.hpp"

namespace viper::obs {

class WindowedHistogram {
 public:
  struct Options {
    double window_seconds = 60.0;  ///< how far back the stats look
    int num_buckets = 6;           ///< ring granularity (window / buckets)
  };

  WindowedHistogram();  ///< default Options
  explicit WindowedHistogram(Options options);

  /// Time source for bucket rotation; nullptr restores the default
  /// monotonic wall clock. The clock must outlive recording.
  void set_clock(const Clock* clock) noexcept {
    clock_.store(clock, std::memory_order_release);
  }

  void record(double seconds) noexcept;

  /// Merged view over the buckets currently inside the window.
  struct Stats {
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
    double rate_per_second = 0.0;  ///< count / window
    double window_seconds = 0.0;
  };
  [[nodiscard]] Stats stats() const noexcept;

  [[nodiscard]] double window_seconds() const noexcept {
    return options_.window_seconds;
  }

  void reset() noexcept;

 private:
  /// One time slice of the window.
  struct Bucket {
    std::atomic<std::int64_t> epoch{-1};
    std::array<std::atomic<std::uint64_t>, Histogram::kNumBuckets> counts{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_ns{0};
    std::atomic<std::uint64_t> max_ns{0};
  };

  [[nodiscard]] double now() const noexcept;
  [[nodiscard]] std::int64_t current_epoch() const noexcept;
  /// Bucket for `epoch`, reset for it if it still holds an older slice.
  Bucket& bucket_for(std::int64_t epoch) noexcept;

  Options options_;
  double bucket_seconds_;
  std::vector<std::unique_ptr<Bucket>> ring_;
  std::atomic<const Clock*> clock_{nullptr};
};

/// Windowed-metric registry keyed by name, mirroring MetricsRegistry:
/// created on first lookup, never destroyed. Kept separate from the
/// lifetime registry so the snapshot layer can report both side by side.
class WindowedRegistry {
 public:
  static WindowedRegistry& global();

  WindowedHistogram& histogram(const std::string& name);
  WindowedHistogram& histogram(const std::string& name,
                               WindowedHistogram::Options options);

  struct Sample {
    std::string name;
    WindowedHistogram::Stats stats;
  };
  /// Point-in-time stats of every windowed histogram, sorted by name.
  [[nodiscard]] std::vector<Sample> snapshot() const;

  /// Rotate every histogram onto `clock` (tests drive a VirtualClock).
  void set_clock(const Clock* clock);

  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>> histograms_;
};

}  // namespace viper::obs
