// Declarative SLOs over the observability plane: a spec states the
// budgets (p99 update latency, recovery-point exposure, corrupt serves,
// recovery time), the engine evaluates them against the version ledger
// and a metrics snapshot, and the result is a machine-checkable verdict —
// chaos runs end with PASS/FAIL, not a log dump to eyeball.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "viper/obs/ledger.hpp"
#include "viper/obs/metrics.hpp"

namespace viper::obs {

/// Objective budgets. A budget <= 0 (or max-valued counter budget)
/// disables that check.
struct SloSpec {
  /// p99 end-to-end update latency over the ledger's sliding window
  /// (falls back to the lifetime histogram when the window is empty —
  /// a finished run should still get a verdict).
  double max_p99_update_latency_seconds = 0.0;
  /// Max gap between consecutive durable flush commits (RPO exposure).
  double max_rpo_seconds = 0.0;
  /// Checkpoints served despite failing verification. The paper's
  /// integrity bar: zero, always.
  std::uint64_t max_corrupt_serves = 0;
  bool check_corrupt_serves = true;
  /// Max observed restart-recovery time (viper.durability.recovery_seconds).
  double max_recovery_seconds = 0.0;
  /// Model the latency/RPO checks evaluate (empty = every model merged).
  std::string model;
};

/// One objective's outcome.
struct SloCheck {
  std::string name;      ///< e.g. "p99_update_latency"
  bool enabled = false;
  bool pass = true;      ///< vacuously true when disabled or no samples
  double observed = 0.0;
  double limit = 0.0;
  std::uint64_t samples = 0;
  std::string detail;
};

/// The verdict: overall pass iff every enabled check passed.
struct SloReport {
  bool pass = true;
  std::vector<SloCheck> checks;

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] const SloCheck* check(std::string_view name) const;
};

/// Evaluate `spec` against the ledger and a registry snapshot (the live
/// path: viper_cli monitor/slo, stress soaks, obs_e2e).
[[nodiscard]] SloReport evaluate_slo(const SloSpec& spec,
                                     const VersionLedger& ledger,
                                     const MetricsSnapshot& snapshot);

/// Evaluate from raw per-update latencies (virtual-time experiments:
/// coupled_sim's ready_at - triggered_at records). Only the latency and
/// corrupt-serves checks apply.
[[nodiscard]] SloReport evaluate_slo_from_latencies(
    const SloSpec& spec, std::span<const double> update_latencies,
    std::uint64_t corrupt_serves = 0);

/// Fleet-level objectives: the same per-model budgets applied to every
/// model in a heterogeneous fleet, plus fleet-wide invariants that only
/// make sense over the aggregated per-rank timelines (no timeline left
/// open, zero torn serves, recovery within budget).
struct FleetSloSpec {
  /// Per-model budgets; `budgets.model` is ignored — each fleet model
  /// gets its own latency/RPO evaluation over its own timelines.
  SloSpec budgets;
  /// Fleet membership. Empty = every model present in the ledger.
  std::vector<std::string> models;
  /// Every timeline must end complete or closed-interrupted: a version
  /// still "open" after the run means a crash/restart failed to close
  /// its ledger entry.
  bool require_timelines_closed = true;
  /// Torn serves observed by the traffic plane (viper.soak.torn_serves);
  /// the integrity bar is zero, like corrupt serves.
  std::uint64_t max_torn_serves = 0;
  /// Counter values at run start, subtracted before comparing against
  /// the budgets — process-global counters accumulate across soaks in
  /// one test binary, and a verdict must only judge its own run.
  std::uint64_t corrupt_serves_baseline = 0;
  std::uint64_t torn_serves_baseline = 0;
};

/// Per-model verdicts plus the fleet-wide checks; pass iff everything
/// enabled passed.
struct FleetSloReport {
  bool pass = true;
  std::vector<std::pair<std::string, SloReport>> per_model;
  std::vector<SloCheck> fleet_checks;

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] const SloCheck* fleet_check(std::string_view name) const;
};

/// Aggregate the per-rank ledgers (one process-global ledger stamped by
/// every rank) into one fleet verdict: per-model p99 update latency and
/// RPO from that model's timelines, fleet-wide corrupt/torn serves,
/// recovery time (durability + soak recoveries), and the
/// all-timelines-closed invariant.
[[nodiscard]] FleetSloReport evaluate_fleet_slo(const FleetSloSpec& spec,
                                                const VersionLedger& ledger,
                                                const MetricsSnapshot& snapshot);

}  // namespace viper::obs
