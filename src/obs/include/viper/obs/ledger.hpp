// Per-version lifecycle ledger: one VersionTimeline per (model, version)
// recording when each update stage happened — producer capture, commit
// and durable flush; notification; consumer fetch, decode and hot swap —
// and deriving the paper's headline number, end-to-end update latency
// (consumer swap minus producer capture start), plus staleness and the
// per-stage breakdown, as first-class values rather than log archaeology.
//
// Producer and consumer stamp the same process-global ledger (in-process
// ranks share a clock domain, so the cross-rank subtraction is exact);
// the stamps carry the trace id of the version's TraceContext so a
// timeline and its trace spans cross-reference.
//
// Disarmed probes follow the fault-injection discipline: one relaxed
// atomic load, nothing else — see ledger_record() below.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "viper/common/clock.hpp"
#include "viper/obs/window.hpp"

namespace viper::obs {

/// Lifecycle stages in causal order. Producer stages first, then the
/// notification hop, then the consumer stages.
enum class Stage : std::uint8_t {
  kCaptureStart = 0,  ///< producer: save_weights entered (serialize begins)
  kSerializeDone,     ///< producer: capture blob encoded
  kCommitDone,        ///< producer: stored + metadata + notify published
  kFlushDone,         ///< producer: durable PFS flush committed
  kNotified,          ///< consumer: update notification parsed
  kFetchStart,        ///< consumer: transfer/fetch began
  kFetchDone,         ///< consumer: payload fully received + verified
  kDecodeDone,        ///< consumer: deserialize finished
  kSwapDone,          ///< consumer: double-buffer install completed
};
inline constexpr int kNumStages = 9;

[[nodiscard]] std::string_view to_string(Stage stage) noexcept;

/// Stage timestamps of one version. Unset stages are negative.
struct VersionTimeline {
  std::string model;
  std::uint64_t version = 0;
  std::uint64_t trace_id = 0;
  int origin_rank = -1;
  std::array<double, kNumStages> at{};
  bool interrupted = false;       ///< closed without reaching kSwapDone
  std::string interrupted_reason;

  VersionTimeline() { at.fill(-1.0); }

  [[nodiscard]] bool has(Stage stage) const noexcept {
    return at[static_cast<std::size_t>(stage)] >= 0.0;
  }
  [[nodiscard]] double stamp(Stage stage) const noexcept {
    return at[static_cast<std::size_t>(stage)];
  }
  /// Consumer swap minus producer capture start; negative when either
  /// end is missing (an open or interrupted timeline).
  [[nodiscard]] double update_latency() const noexcept {
    if (!has(Stage::kCaptureStart) || !has(Stage::kSwapDone)) return -1.0;
    return stamp(Stage::kSwapDone) - stamp(Stage::kCaptureStart);
  }
  [[nodiscard]] bool complete() const noexcept { return has(Stage::kSwapDone); }
};

namespace detail {
extern std::atomic<bool> ledger_armed;
}  // namespace detail

/// Process-global lifecycle ledger.
class VersionLedger {
 public:
  static VersionLedger& global();

  /// Arm/disarm recording. Disarmed stamps cost one relaxed atomic load.
  static void set_armed(bool armed) noexcept {
    detail::ledger_armed.store(armed, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool armed() noexcept {
    return detail::ledger_armed.load(std::memory_order_relaxed);
  }

  /// Time source for stamps AND the windowed latency rotation (tests
  /// drive a VirtualClock); nullptr restores the monotonic wall clock.
  void set_clock(const Clock* clock) noexcept;
  [[nodiscard]] double now() const noexcept;

  /// Stamp `stage` of (model, version) at the ledger clock's now().
  /// First stamp of a version creates its timeline. `trace_id` and
  /// `origin_rank` are recorded on first sight (later stamps may pass 0 /
  /// -1). A kSwapDone stamp derives the version's end-to-end update
  /// latency and feeds it to the lifetime + windowed latency histograms.
  void record(const std::string& model, std::uint64_t version, Stage stage,
              std::uint64_t trace_id = 0, int origin_rank = -1);
  /// Same, at an explicit timestamp (virtual-time experiments).
  void record_at(const std::string& model, std::uint64_t version, Stage stage,
                 double timestamp, std::uint64_t trace_id = 0,
                 int origin_rank = -1);

  /// Close every open (not swapped) timeline of `model` as interrupted —
  /// restart recovery calls this after replaying the journal, so versions
  /// that died mid-flight stop looking in-progress forever. Returns how
  /// many timelines were closed.
  std::size_t close_interrupted(const std::string& model,
                                const std::string& reason);

  /// Close every open timeline of `model` with version < `head` as
  /// interrupted. Once a later version has committed, no consumer will
  /// ever swap an older one (consumers only apply the newest), so a
  /// version that was superseded before any swap — dropped notification,
  /// burst coalescing, failed flush — is a closed chapter, not an
  /// accounting leak. Timelines at or above `head` are left alone: those
  /// still open at end of run are real leaks the fleet verdict must see.
  std::size_t close_superseded(const std::string& model, std::uint64_t head,
                               const std::string& reason);

  [[nodiscard]] std::optional<VersionTimeline> timeline(
      const std::string& model, std::uint64_t version) const;
  /// All timelines, ordered by (model, version).
  [[nodiscard]] std::vector<VersionTimeline> timelines() const;

  /// End-to-end update latency over the sliding window (feeds the SLO
  /// engine's p99 check).
  [[nodiscard]] WindowedHistogram::Stats windowed_update_latency() const;
  /// Lifetime update-latency histogram (also registered in the metrics
  /// registry as viper.obs.update_latency_seconds).
  [[nodiscard]] const Histogram& update_latency_histogram() const;

  /// Staleness of the model being served at `now`: now minus the capture
  /// start of the newest swapped version (negative when nothing swapped).
  [[nodiscard]] double staleness_seconds(const std::string& model,
                                         double now) const;

  /// Largest gap between consecutive durable-flush stamps of `model`
  /// (the observed recovery-point exposure); 0 with fewer than 2 flushes.
  [[nodiscard]] double max_flush_gap_seconds(const std::string& model) const;

  /// One JSON object per timeline: stages, latency, trace id.
  [[nodiscard]] std::string to_json() const;

  void clear();

 private:
  VersionLedger();

  mutable std::mutex mutex_;
  std::map<std::pair<std::string, std::uint64_t>, VersionTimeline> timelines_;
  Histogram update_latency_;
  WindowedHistogram windowed_latency_;
  std::atomic<const Clock*> clock_{nullptr};
};

/// One-line armed-guarded stamp for instrumented hot paths: disarmed cost
/// is a relaxed load and a branch, like fault::fail_point().
inline void ledger_record(const std::string& model, std::uint64_t version,
                          Stage stage, std::uint64_t trace_id = 0,
                          int origin_rank = -1) {
  if (!VersionLedger::armed()) return;
  VersionLedger::global().record(model, version, stage, trace_id, origin_rank);
}

}  // namespace viper::obs
