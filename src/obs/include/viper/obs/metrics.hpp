// Observability metrics (registry layer): named counters, gauges, and
// fixed-bucket latency histograms cheap enough for hot paths. Lookup by
// name takes a lock once; recording on a resolved handle is a relaxed
// atomic op, so instrumented code resolves handles at construction (or in
// a function-local static) and records lock-free afterwards.
//
// Naming convention: `viper.<subsystem>.<metric>`, e.g.
// `viper.core.serialize_seconds`, `viper.net.bytes_sent`. Histograms are
// second-denominated unless the name says otherwise.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace viper::obs {

/// Monotonic event count. Record path: one relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value metric (queue depths, accumulated modeled seconds).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency histogram with power-of-two bucket bounds:
/// bucket i holds samples in (2^(i-1), 2^i] nanoseconds (bucket 0: <= 1 ns),
/// covering 1 ns .. ~292 years in 64 buckets. Recording is a couple of
/// relaxed atomic ops; percentiles are exact to one bucket (<= 2x relative
/// error) and exact at the tail because they clamp to the observed max.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void record(double seconds) noexcept {
    const std::uint64_t ns = to_ns(seconds);
    buckets_[static_cast<std::size_t>(bucket_index_ns(ns))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t cur = max_ns_.load(std::memory_order_relaxed);
    while (ns > cur &&
           !max_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  /// Sum of recorded values in seconds (nanosecond-truncated).
  [[nodiscard]] double sum() const noexcept {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  [[nodiscard]] double max() const noexcept {
    return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// Value at quantile `q` in [0,1]: the upper bound of the bucket where
  /// the cumulative count crosses ceil(q * n), clamped to the observed
  /// max so tail quantiles of a bounded sample are exact.
  [[nodiscard]] double percentile(double q) const noexcept;

  /// Upper bound of bucket `index` in seconds: 2^index nanoseconds.
  [[nodiscard]] static double bucket_upper_bound(int index) noexcept {
    return static_cast<double>(std::uint64_t{1} << index) * 1e-9;
  }
  /// Bucket a value lands in (used by tests to compute expected bounds).
  [[nodiscard]] static int bucket_index(double seconds) noexcept {
    return bucket_index_ns(to_ns(seconds));
  }

  void reset() noexcept;

 private:
  [[nodiscard]] static std::uint64_t to_ns(double seconds) noexcept {
    return seconds <= 0 ? 0 : static_cast<std::uint64_t>(seconds * 1e9);
  }
  [[nodiscard]] static int bucket_index_ns(std::uint64_t ns) noexcept {
    if (ns <= 1) return 0;
    const int width = static_cast<int>(std::bit_width(ns - 1));
    return width >= kNumBuckets ? kNumBuckets - 1 : width;
  }

  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  [[nodiscard]] std::string to_json() const;
  /// One metric per line, for example epilogues and log dumps.
  [[nodiscard]] std::string to_text() const;
  /// Prometheus text exposition: dots become underscores, counters get a
  /// _total suffix, histograms export as summaries (quantile series plus
  /// _sum/_count). Scrapeable by anything that speaks the text format.
  [[nodiscard]] std::string to_prometheus() const;
  /// Value of the named counter at snapshot time, or 0 if absent.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  /// The named histogram's sample, or nullptr if absent.
  [[nodiscard]] const HistogramSample* histogram_sample(
      std::string_view name) const;
};

/// Thread-safe name -> metric registry. Metrics are created on first
/// lookup and never destroyed, so returned references stay valid for the
/// life of the process.
class MetricsRegistry {
 public:
  /// Process-wide registry all Viper subsystems report into.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every metric (instances stay registered). For tests/benches.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace viper::obs
