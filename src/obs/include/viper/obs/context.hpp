// Cross-process trace context (the W3C traceparent of the checkpoint
// world): identifies which version's update a piece of work belongs to,
// which span caused it, and which rank originated it. The producer opens
// a context when a save captures; the context rides the wire (stream
// headers, load requests, update notifications) so the consumer's fetch,
// decode, and swap spans join the same causal trace — one trace id per
// model version, linked across ranks.
//
// Propagation is thread-local: `ScopedTraceContext` installs a context
// for the current thread, Tracer::span() picks it up automatically, and
// the wire codecs (`encode`/`decode`) move it between processes. All of
// it is inert until `set_armed(true)`: a disarmed probe is one relaxed
// atomic load, the same zero-cost discipline as fault::armed().
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace viper::obs {

/// Identity of one causally-linked update trace. `trace_id` is derived
/// from (model, version) so every stage of one version's update — on any
/// rank — lands in the same trace; `parent_span_id` is the span that
/// handed the work off (0 = no parent yet); `origin_rank` is the rank
/// that started the trace (the producer).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  std::int32_t origin_rank = -1;

  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }

  friend bool operator==(const TraceContext&, const TraceContext&) = default;

  /// Stable trace id for (model, version): FNV-1a of the model name folded
  /// with the version. Never returns 0 (0 means "no context").
  [[nodiscard]] static std::uint64_t trace_id_for(std::string_view model_name,
                                                  std::uint64_t version) noexcept;

  /// Fixed-size wire encoding (little-endian, 20 bytes).
  static constexpr std::size_t kWireBytes = 20;
  void encode(std::span<std::byte, kWireBytes> out) const noexcept;
  /// Decode a context previously written by encode(). Returns an invalid
  /// (trace_id == 0) context when `in` is too small — callers treat that
  /// as "peer sent no context", never as an error.
  [[nodiscard]] static TraceContext decode(std::span<const std::byte> in) noexcept;
};

namespace detail {
extern std::atomic<bool> context_armed;
TraceContext& thread_context() noexcept;
}  // namespace detail

/// Zero-cost guard: propagation sites check this first, so with tracing
/// disarmed a probe costs one relaxed atomic load.
[[nodiscard]] inline bool context_armed() noexcept {
  return detail::context_armed.load(std::memory_order_relaxed);
}

/// Arm/disarm context propagation process-wide (tests and the CLI arm it
/// together with the tracer/ledger).
void set_context_armed(bool armed) noexcept;

/// The calling thread's current context (invalid when none installed or
/// propagation is disarmed).
[[nodiscard]] inline TraceContext current_context() noexcept {
  if (!context_armed()) return TraceContext{};
  return detail::thread_context();
}

/// Install `context` for the calling thread for the scope's lifetime,
/// restoring the previous context on exit. Used at both ends: the
/// producer installs the context it minted; a receiver installs the
/// context it decoded off the wire before running the downstream stages.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context) noexcept
      : previous_(detail::thread_context()) {
    detail::thread_context() = context;
  }
  ~ScopedTraceContext() { detail::thread_context() = previous_; }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext previous_;
};

}  // namespace viper::obs
