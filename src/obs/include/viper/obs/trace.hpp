// Checkpoint-lifecycle tracer: RAII spans recorded against a session
// Clock (WallClock for the live engine, VirtualClock for deterministic
// experiment runs), exported as Chrome trace-event JSON (load the file in
// chrome://tracing or https://ui.perfetto.dev) or a per-name summary.
//
// The global tracer is disabled by default; span() on a disabled tracer
// returns an inert Span whose whole cost is one relaxed atomic load, so
// instrumented hot paths stay cheap when nobody is tracing.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "viper/common/clock.hpp"

namespace viper::obs {

struct TraceEvent {
  std::string name;       ///< e.g. "capture", "serialize", "notify"
  std::string category;   ///< lifecycle stage group, e.g. "producer"
  int thread_id = 0;      ///< small per-thread ordinal (viper::thread_ordinal)
  int depth = 0;          ///< span nesting depth on its thread (0 = top)
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  bool instant = false;   ///< point event rather than a duration
  // Cross-rank identity (zero when recorded without an armed TraceContext):
  // events of one model version share a trace_id on every rank, and
  // parent_span_id chains them causally across the wire.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  int rank = 0;           ///< recording rank (Tracer::set_rank)
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-wide tracer the built-in instrumentation reports to.
  static Tracer& global();

  /// Time source for span boundaries; nullptr restores the default
  /// monotonic wall clock. The clock must outlive recording.
  void set_clock(const Clock* clock) noexcept {
    clock_.store(clock, std::memory_order_release);
  }

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_release);
  }

  /// Rank stamped on every recorded event (and used as the Chrome-trace
  /// pid, so a merged timeline shows one process lane per rank).
  void set_rank(int rank) noexcept {
    rank_.store(rank, std::memory_order_relaxed);
  }
  [[nodiscard]] int rank() const noexcept {
    return rank_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Move-only RAII handle: records a TraceEvent from construction to
  /// destruction (or end()). Inert when the tracer was disabled.
  class [[nodiscard]] Span {
   public:
    Span() = default;
    ~Span() { end(); }
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Close the span now (idempotent).
    void end();

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::string name, std::string category);

    Tracer* tracer_ = nullptr;
    std::string name_;
    std::string category_;
    double start_ = 0.0;
    int depth_ = 0;
    std::uint64_t trace_id_ = 0;
    std::uint64_t span_id_ = 0;
    std::uint64_t parent_span_id_ = 0;
    bool restore_parent_ = false;  ///< thread context adopted this span
  };

  /// Open a span; the returned handle must stay on the calling thread.
  Span span(std::string name, std::string category = "viper");

  /// Record a zero-duration point event.
  void instant(std::string name, std::string category = "viper");

  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const;
  /// Events discarded after the buffer filled (kMaxEvents).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  void clear();

  /// Chrome trace-event JSON ("traceEvents" array of complete events).
  [[nodiscard]] std::string to_chrome_json() const;

  /// Human-readable per-name aggregate: count, total, mean, max.
  [[nodiscard]] std::string summary() const;

  [[nodiscard]] double now() const;

  /// Fresh process-unique span id (used by the wire propagation sites to
  /// parent remote work on a local span without opening one).
  [[nodiscard]] static std::uint64_t next_span_id() noexcept;

  static constexpr std::size_t kMaxEvents = 1 << 20;

 private:
  void record(TraceEvent event);

  std::atomic<bool> enabled_{false};
  std::atomic<int> rank_{0};
  std::atomic<const Clock*> clock_{nullptr};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// One rank's contribution to a merged timeline.
struct RankTrace {
  int rank = 0;
  std::vector<TraceEvent> events;
};

/// Join per-rank event sets into one Chrome trace: each rank becomes a
/// pid lane, events keep their own timestamps (the ranks are expected to
/// share a clock domain — in-process ranks always do), and spans carrying
/// the same trace_id remain linkable across lanes via their args.
[[nodiscard]] std::string merge_chrome_traces(const std::vector<RankTrace>& ranks);

/// Join already-exported Chrome trace JSON files (the format written by
/// Tracer::to_chrome_json / merge_chrome_traces): splices every file's
/// "traceEvents" array into one. Inputs that do not look like our own
/// export are skipped.
[[nodiscard]] std::string merge_chrome_trace_files(
    const std::vector<std::string>& jsons);

}  // namespace viper::obs
