// Checkpoint-lifecycle tracer: RAII spans recorded against a session
// Clock (WallClock for the live engine, VirtualClock for deterministic
// experiment runs), exported as Chrome trace-event JSON (load the file in
// chrome://tracing or https://ui.perfetto.dev) or a per-name summary.
//
// The global tracer is disabled by default; span() on a disabled tracer
// returns an inert Span whose whole cost is one relaxed atomic load, so
// instrumented hot paths stay cheap when nobody is tracing.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "viper/common/clock.hpp"

namespace viper::obs {

struct TraceEvent {
  std::string name;       ///< e.g. "capture", "serialize", "notify"
  std::string category;   ///< lifecycle stage group, e.g. "producer"
  int thread_id = 0;      ///< small per-thread ordinal (viper::thread_ordinal)
  int depth = 0;          ///< span nesting depth on its thread (0 = top)
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  bool instant = false;   ///< point event rather than a duration
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-wide tracer the built-in instrumentation reports to.
  static Tracer& global();

  /// Time source for span boundaries; nullptr restores the default
  /// monotonic wall clock. The clock must outlive recording.
  void set_clock(const Clock* clock) noexcept {
    clock_.store(clock, std::memory_order_release);
  }

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_release);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Move-only RAII handle: records a TraceEvent from construction to
  /// destruction (or end()). Inert when the tracer was disabled.
  class [[nodiscard]] Span {
   public:
    Span() = default;
    ~Span() { end(); }
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Close the span now (idempotent).
    void end();

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::string name, std::string category);

    Tracer* tracer_ = nullptr;
    std::string name_;
    std::string category_;
    double start_ = 0.0;
    int depth_ = 0;
  };

  /// Open a span; the returned handle must stay on the calling thread.
  Span span(std::string name, std::string category = "viper");

  /// Record a zero-duration point event.
  void instant(std::string name, std::string category = "viper");

  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const;
  /// Events discarded after the buffer filled (kMaxEvents).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  void clear();

  /// Chrome trace-event JSON ("traceEvents" array of complete events).
  [[nodiscard]] std::string to_chrome_json() const;

  /// Human-readable per-name aggregate: count, total, mean, max.
  [[nodiscard]] std::string summary() const;

  [[nodiscard]] double now() const;

  static constexpr std::size_t kMaxEvents = 1 << 20;

 private:
  void record(TraceEvent event);

  std::atomic<bool> enabled_{false};
  std::atomic<const Clock*> clock_{nullptr};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

}  // namespace viper::obs
