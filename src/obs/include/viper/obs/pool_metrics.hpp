// Bridge between the shared ThreadPool (src/common, which cannot link
// the obs layer) and the metrics registry: installs the pool's task
// observer and republishes its counters as gauges.
#pragma once

#include "viper/common/thread_pool.hpp"

namespace viper::obs {

/// Attach metrics to `pool` (defaults to ThreadPool::global()):
///  - viper.common.pool_tasks                (counter)
///  - viper.common.pool_task_seconds         (histogram, run time)
///  - viper.common.pool_queue_wait_seconds   (histogram, time queued)
/// First caller wins (the pool accepts a single observer); repeat calls
/// are no-ops, so any obs-linked subsystem may call this idempotently.
void instrument_thread_pool(ThreadPool& pool = ThreadPool::global());

/// Copy the pool's internal stats into gauges
/// (viper.common.pool_threads / pool_queue_depth / pool_peak_queue_depth
/// / pool_tasks_rejected). Call before snapshotting.
void publish_thread_pool_gauges(const ThreadPool& pool = ThreadPool::global());

}  // namespace viper::obs
