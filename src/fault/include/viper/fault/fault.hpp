// Deterministic fault-injection framework. Subsystems declare named
// *injection sites* ("net.send", "kvstore.get", "memsys.lustre-pfs.put",
// "kvstore.pubsub.deliver", ...) that are compiled in always; with no
// plan armed a site costs one relaxed atomic load. Tests arm a seeded
// `FaultPlan` — an ordered set of `FaultRule`s (drop / corrupt / delay /
// fail, windowed by hit count, bounded by injection budget, optionally
// scoped to (src, dst) ranks) — and the process-wide `FaultInjector`
// evaluates rules with a seeded Rng so every chaos run is reproducible
// from its seed alone.
//
// Every injected fault is tallied twice: in the injector's
// `InjectionReport` and in the `viper.fault.*` metrics counters, so a
// test can assert that retry/degradation counters account for every
// fault it injected.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "viper/common/rng.hpp"
#include "viper/common/status.hpp"

namespace viper::fault {

/// Matches any rank in a rule's src/dst filter.
inline constexpr int kAnyRank = -1;

enum class FaultKind : std::uint8_t {
  kDrop,     ///< message vanishes on the wire (or delivery is skipped)
  kCorrupt,  ///< payload bytes are scrambled before delivery
  kDelay,    ///< operation sleeps `delay_seconds` before proceeding
  kFail,     ///< operation returns `Status{fail_code, fail_message}`
  kCrash,    ///< operation aborts as if the process died at this point:
             ///< no cleanup runs, partial state is left exactly as-is
             ///< (only honored by sites that probe crash_point())
};

[[nodiscard]] std::string_view to_string(FaultKind kind) noexcept;

/// One injection rule. A rule matches a site when `site` is a substring
/// of the probed site name (so "net.send" matches exactly, ".put"
/// matches every tier's put) and the src/dst filters accept the probe's
/// ranks. Matching probes count as *hits*; the rule starts firing after
/// `after_hits` hits, fires with `probability`, and stops after
/// `max_injections` injections — which is how windowed partitions and
/// one-shot losses are expressed.
struct FaultRule {
  std::string site;
  FaultKind kind = FaultKind::kFail;
  double probability = 1.0;
  std::uint64_t after_hits = 0;
  std::uint64_t max_injections = std::numeric_limits<std::uint64_t>::max();
  double delay_seconds = 0.0;
  StatusCode fail_code = StatusCode::kUnavailable;
  std::string fail_message = "injected fault";
  int src = kAnyRank;
  int dst = kAnyRank;
  /// Timed expiry: when > 0, the rule stops firing once this many
  /// wall-clock seconds have elapsed since the plan was armed (or the
  /// rule was appended). The expiry is accounted as a heal — a
  /// partition that ages out and a partition healed by a schedule look
  /// the same in `viper.fault.heals`. Hit-count windows (`after_hits` +
  /// `max_injections`) stay the deterministic alternative.
  double expire_after_seconds = 0.0;

  // Convenience constructors for the common shapes.
  [[nodiscard]] static FaultRule drop(std::string site, double probability = 1.0);
  /// Drop exactly the `nth` matching probe (1-based), nothing else.
  [[nodiscard]] static FaultRule drop_nth(std::string site, std::uint64_t nth);
  [[nodiscard]] static FaultRule corrupt(std::string site, double probability = 1.0);
  [[nodiscard]] static FaultRule delay(std::string site, double seconds,
                                       double probability = 1.0);
  [[nodiscard]] static FaultRule fail(std::string site,
                                      StatusCode code = StatusCode::kUnavailable,
                                      double probability = 1.0);
  /// Fail exactly the `nth` matching probe (1-based).
  [[nodiscard]] static FaultRule fail_nth(std::string site, std::uint64_t nth,
                                          StatusCode code = StatusCode::kUnavailable);
  /// Drop all traffic between `src` and `dst` for a hit-count window —
  /// a network partition in hit-space (deterministic, unlike wall time).
  [[nodiscard]] static FaultRule partition(
      int src, int dst, std::uint64_t after_hits = 0,
      std::uint64_t length_hits = std::numeric_limits<std::uint64_t>::max());
  /// Permanent hard failure of a site after `after_hits` probes — models
  /// a component crash (every later operation fails with kUnavailable).
  [[nodiscard]] static FaultRule crash(std::string site, std::uint64_t after_hits = 0);
  /// Simulate process death at exactly the `nth` (1-based) probe of a
  /// crash-point site: the operation aborts mid-flight and leaves any
  /// partial state (torn temp files, journal records not yet appended)
  /// for restart recovery to deal with. This is how the crash-matrix
  /// tests enumerate "crash before INTENT / mid-blob / after COMMIT".
  [[nodiscard]] static FaultRule crash_point(std::string site,
                                             std::uint64_t nth = 1);
};

/// What a probe should do, decided by the first matching rule that fires.
struct Action {
  bool drop = false;
  bool crash = false;  ///< abort here simulating process death (no cleanup)
  double delay_seconds = 0.0;
  std::uint64_t corrupt_seed = 0;  ///< non-zero => scramble the payload
  std::optional<Status> fail;

  [[nodiscard]] bool any() const noexcept {
    return drop || crash || delay_seconds > 0.0 || corrupt_seed != 0 ||
           fail.has_value();
  }
};

/// A seeded schedule of fault rules. Value type; arm via FaultInjector.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0x5eed) : seed_(seed) {}

  FaultPlan& add(FaultRule rule) {
    rules_.push_back(std::move(rule));
    return *this;
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::size_t num_rules() const noexcept { return rules_.size(); }
  [[nodiscard]] std::span<const FaultRule> rules() const noexcept {
    return rules_;
  }

 private:
  friend class FaultInjector;
  std::uint64_t seed_;
  std::vector<FaultRule> rules_;
};

/// Tally of injected faults since the current plan was armed.
struct InjectionReport {
  std::uint64_t drops = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t delays = 0;
  std::uint64_t failures = 0;
  std::uint64_t crashes = 0;
  /// Rules disabled by heal() or timed expiry (not faults, so not part
  /// of total()).
  std::uint64_t heals = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return drops + corruptions + delays + failures + crashes;
  }
};

/// Process-wide injector. `armed()` is the zero-cost fast path every
/// injection site checks first; probing a site with a plan armed takes a
/// mutex (fault injection is a test-only mode, so the slow path favors
/// determinism over throughput).
class FaultInjector {
 public:
  static FaultInjector& global();

  /// Arm `plan`, replacing any previous one and resetting rule state,
  /// the report, and the decision Rng (reseeded from the plan).
  void arm(FaultPlan plan);
  void disarm();

  [[nodiscard]] static bool armed() noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Evaluate the site against the armed plan. Hit counters advance for
  /// every matching rule; the first rule that fires decides the Action.
  [[nodiscard]] Action on_site(std::string_view site, int src = kAnyRank,
                               int dst = kAnyRank);

  /// Append a rule to the armed plan without resetting rule state, the
  /// report, or the decision Rng — how a running scenario injects a
  /// partition at a schedule point without re-seeding the injector.
  /// Returns false when no plan is armed.
  bool append_rule(FaultRule rule);

  /// Heal (permanently disable) every still-active rule whose site
  /// pattern matches `site` (substring in either direction) and whose
  /// src/dst filters equal the given ranks (kAnyRank matches any
  /// filter). The heal path for scheduled partitions: the partition
  /// rules stay in the plan — and in the rendered schedule — but stop
  /// firing. Each healed rule is tallied in the report and under
  /// `viper.fault.heals`. Returns how many rules were healed.
  std::size_t heal(std::string_view site, int src = kAnyRank,
                   int dst = kAnyRank);

  /// Status-only probe: applies any injected delay inline, then returns
  /// the injected failure (drop/corrupt at a non-message site also
  /// surface as failures — there is no payload to lose). OK when
  /// disarmed or no rule fires.
  [[nodiscard]] Status fail_point(std::string_view site);

  /// Payload-aware probe for storage sites: a kCorrupt action scrambles
  /// `payload` in place (the silent-media-corruption model — the write
  /// then proceeds with bad bytes) and returns OK; drop/fail/crash
  /// surface as the injected Status; delays sleep inline.
  [[nodiscard]] Status mutate_point(std::string_view site,
                                    std::span<std::byte> payload);

  /// Crash probe: true when a kCrash rule fires here — the caller must
  /// abort immediately WITHOUT cleanup, leaving partial state exactly as
  /// a dying process would.
  [[nodiscard]] bool crash_point(std::string_view site);

  [[nodiscard]] InjectionReport report() const;

 private:
  FaultInjector() = default;

  struct RuleState {
    std::uint64_t hits = 0;
    std::uint64_t injections = 0;
    bool healed = false;          ///< disabled by heal() or timed expiry
    double expires_at = 0.0;      ///< armed-clock deadline; 0 = never
  };

  /// Seconds since an arbitrary epoch on the steady clock (timed expiry).
  [[nodiscard]] static double steady_seconds() noexcept;

  static std::atomic<bool> armed_;

  mutable std::mutex mutex_;
  std::optional<FaultPlan> plan_;
  std::vector<RuleState> states_;
  Rng rng_{0};
  InjectionReport report_;
};

/// Fast-path helpers so call sites read as one line.
[[nodiscard]] inline bool armed() noexcept { return FaultInjector::armed(); }

inline Status fail_point(std::string_view site) {
  if (!FaultInjector::armed()) return Status::ok();
  return FaultInjector::global().fail_point(site);
}

inline Status mutate_point(std::string_view site, std::span<std::byte> payload) {
  if (!FaultInjector::armed()) return Status::ok();
  return FaultInjector::global().mutate_point(site, payload);
}

inline bool crash_point(std::string_view site) {
  if (!FaultInjector::armed()) return false;
  return FaultInjector::global().crash_point(site);
}

/// The status a crash-point abort surfaces as (callers that cannot
/// distinguish "crashed" from "failed" still propagate a real Status).
[[nodiscard]] Status crash_status(std::string_view site);

/// True when `status` is a crash-point abort. Cleanup and rollback paths
/// check this: a dying process would not have rolled anything back, so
/// neither may the code simulating it.
[[nodiscard]] bool is_crash_status(const Status& status) noexcept;

/// Deterministically flip bytes of `payload` (≥1 flip, ~1 per 64 bytes)
/// using `seed` — the corruption applied by kCorrupt actions.
void scramble(std::span<std::byte> payload, std::uint64_t seed);

/// RAII arm/disarm for tests: plan is armed for the scope's lifetime.
class ScopedPlan {
 public:
  explicit ScopedPlan(FaultPlan plan) {
    FaultInjector::global().arm(std::move(plan));
  }
  ~ScopedPlan() { FaultInjector::global().disarm(); }

  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

}  // namespace viper::fault
