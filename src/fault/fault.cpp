#include "viper/fault/fault.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "viper/obs/metrics.hpp"

namespace viper::fault {
namespace {

struct FaultMetrics {
  obs::Counter& drops;
  obs::Counter& corruptions;
  obs::Counter& delays;
  obs::Counter& failures;
  obs::Counter& crashes;
  obs::Counter& injections;
  obs::Counter& heals;
};

FaultMetrics& fault_metrics() {
  static FaultMetrics metrics{
      obs::MetricsRegistry::global().counter("viper.fault.drops"),
      obs::MetricsRegistry::global().counter("viper.fault.corruptions"),
      obs::MetricsRegistry::global().counter("viper.fault.delays"),
      obs::MetricsRegistry::global().counter("viper.fault.failures"),
      obs::MetricsRegistry::global().counter("viper.fault.crashes"),
      obs::MetricsRegistry::global().counter("viper.fault.injections"),
      obs::MetricsRegistry::global().counter("viper.fault.heals"),
  };
  return metrics;
}

}  // namespace

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kFail:
      return "fail";
    case FaultKind::kCrash:
      return "crash";
  }
  return "unknown";
}

FaultRule FaultRule::drop(std::string site, double probability) {
  FaultRule rule;
  rule.site = std::move(site);
  rule.kind = FaultKind::kDrop;
  rule.probability = probability;
  return rule;
}

FaultRule FaultRule::drop_nth(std::string site, std::uint64_t nth) {
  FaultRule rule = drop(std::move(site), 1.0);
  rule.after_hits = nth == 0 ? 0 : nth - 1;
  rule.max_injections = 1;
  return rule;
}

FaultRule FaultRule::corrupt(std::string site, double probability) {
  FaultRule rule;
  rule.site = std::move(site);
  rule.kind = FaultKind::kCorrupt;
  rule.probability = probability;
  return rule;
}

FaultRule FaultRule::delay(std::string site, double seconds, double probability) {
  FaultRule rule;
  rule.site = std::move(site);
  rule.kind = FaultKind::kDelay;
  rule.delay_seconds = seconds;
  rule.probability = probability;
  return rule;
}

FaultRule FaultRule::fail(std::string site, StatusCode code, double probability) {
  FaultRule rule;
  rule.site = std::move(site);
  rule.kind = FaultKind::kFail;
  rule.fail_code = code;
  rule.probability = probability;
  return rule;
}

FaultRule FaultRule::fail_nth(std::string site, std::uint64_t nth, StatusCode code) {
  FaultRule rule = fail(std::move(site), code, 1.0);
  rule.after_hits = nth == 0 ? 0 : nth - 1;
  rule.max_injections = 1;
  return rule;
}

FaultRule FaultRule::partition(int src, int dst, std::uint64_t after_hits,
                               std::uint64_t length_hits) {
  FaultRule rule = drop("net.send", 1.0);
  rule.src = src;
  rule.dst = dst;
  rule.after_hits = after_hits;
  rule.max_injections = length_hits;
  rule.fail_message = "network partition";
  return rule;
}

FaultRule FaultRule::crash(std::string site, std::uint64_t after_hits) {
  FaultRule rule = fail(std::move(site), StatusCode::kUnavailable, 1.0);
  rule.after_hits = after_hits;
  rule.fail_message = "injected crash";
  return rule;
}

FaultRule FaultRule::crash_point(std::string site, std::uint64_t nth) {
  FaultRule rule;
  rule.site = std::move(site);
  rule.kind = FaultKind::kCrash;
  rule.after_hits = nth == 0 ? 0 : nth - 1;
  rule.max_injections = 1;
  rule.fail_code = StatusCode::kUnavailable;
  rule.fail_message = "simulated process crash";
  return rule;
}

std::atomic<bool> FaultInjector::armed_{false};

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  return injector;
}

double FaultInjector::steady_seconds() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void FaultInjector::arm(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  const double now = steady_seconds();
  states_.assign(plan.rules_.size(), RuleState{});
  for (std::size_t i = 0; i < plan.rules_.size(); ++i) {
    if (plan.rules_[i].expire_after_seconds > 0.0) {
      states_[i].expires_at = now + plan.rules_[i].expire_after_seconds;
    }
  }
  rng_ = Rng(plan.seed());
  report_ = InjectionReport{};
  plan_ = std::move(plan);
  armed_.store(true, std::memory_order_relaxed);
}

bool FaultInjector::append_rule(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!plan_.has_value()) return false;
  RuleState state;
  if (rule.expire_after_seconds > 0.0) {
    state.expires_at = steady_seconds() + rule.expire_after_seconds;
  }
  plan_->rules_.push_back(std::move(rule));
  states_.push_back(state);
  return true;
}

std::size_t FaultInjector::heal(std::string_view site, int src, int dst) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!plan_.has_value()) return 0;
  std::size_t healed = 0;
  for (std::size_t i = 0; i < plan_->rules_.size(); ++i) {
    const FaultRule& rule = plan_->rules_[i];
    RuleState& state = states_[i];
    if (state.healed) continue;
    // Substring match in either direction: heal("net.send") heals a
    // partition rule (site "net.send"), and heal("durability.flush")
    // heals a rule scoped to a longer probe name.
    const bool site_match = rule.site.find(site) != std::string::npos ||
                            site.find(rule.site) != std::string_view::npos;
    if (!site_match) continue;
    if (src != kAnyRank && rule.src != src) continue;
    if (dst != kAnyRank && rule.dst != dst) continue;
    state.healed = true;
    ++healed;
    ++report_.heals;
    fault_metrics().heals.add();
  }
  return healed;
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
  plan_.reset();
  states_.clear();
}

Action FaultInjector::on_site(std::string_view site, int src, int dst) {
  Action action;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!plan_.has_value()) return action;
  bool fired = false;
  double now = -1.0;  // resolved lazily, once, when an expiring rule matches
  for (std::size_t i = 0; i < plan_->rules_.size(); ++i) {
    const FaultRule& rule = plan_->rules_[i];
    RuleState& state = states_[i];
    if (site.find(rule.site) == std::string_view::npos) continue;
    if (rule.src != kAnyRank && rule.src != src) continue;
    if (rule.dst != kAnyRank && rule.dst != dst) continue;
    ++state.hits;
    if (state.healed) continue;  // healed rules still count hits, never fire
    if (state.expires_at > 0.0) {
      if (now < 0.0) now = steady_seconds();
      if (now >= state.expires_at) {
        // Timed expiry is a self-heal: disable the rule and account it
        // exactly like an explicit heal().
        state.healed = true;
        ++report_.heals;
        fault_metrics().heals.add();
        continue;
      }
    }
    if (fired) continue;  // hits still advance for later windowed rules
    if (state.hits <= rule.after_hits) continue;
    if (state.injections >= rule.max_injections) continue;
    if (rule.probability < 1.0 && !rng_.chance(rule.probability)) continue;
    ++state.injections;
    fired = true;
    fault_metrics().injections.add();
    switch (rule.kind) {
      case FaultKind::kDrop:
        action.drop = true;
        ++report_.drops;
        fault_metrics().drops.add();
        break;
      case FaultKind::kCorrupt:
        action.corrupt_seed = rng_.engine()() | 1;  // never zero
        ++report_.corruptions;
        fault_metrics().corruptions.add();
        break;
      case FaultKind::kDelay:
        action.delay_seconds = rule.delay_seconds;
        ++report_.delays;
        fault_metrics().delays.add();
        break;
      case FaultKind::kFail:
        action.fail = Status(rule.fail_code, rule.fail_message);
        ++report_.failures;
        fault_metrics().failures.add();
        break;
      case FaultKind::kCrash:
        action.crash = true;
        ++report_.crashes;
        fault_metrics().crashes.add();
        break;
    }
  }
  return action;
}

Status FaultInjector::fail_point(std::string_view site) {
  Action action = on_site(site);
  if (action.delay_seconds > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(action.delay_seconds));
  }
  if (action.fail.has_value()) return *action.fail;
  if (action.crash) return crash_status(site);
  if (action.drop || action.corrupt_seed != 0) {
    // No payload to lose at a status-only site; surface as unavailability
    // so the operation still observably fails.
    return unavailable("injected fault (non-message site)");
  }
  return Status::ok();
}

Status FaultInjector::mutate_point(std::string_view site,
                                   std::span<std::byte> payload) {
  Action action = on_site(site);
  if (action.delay_seconds > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(action.delay_seconds));
  }
  if (action.fail.has_value()) return *action.fail;
  if (action.crash) return crash_status(site);
  if (action.drop) return unavailable("injected fault (write dropped)");
  if (action.corrupt_seed != 0) scramble(payload, action.corrupt_seed);
  return Status::ok();
}

bool FaultInjector::crash_point(std::string_view site) {
  return on_site(site).crash;
}

InjectionReport FaultInjector::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return report_;
}

Status crash_status(std::string_view site) {
  return unavailable("simulated process crash at " + std::string(site));
}

bool is_crash_status(const Status& status) noexcept {
  return status.code() == StatusCode::kUnavailable &&
         status.message().starts_with("simulated process crash");
}

void scramble(std::span<std::byte> payload, std::uint64_t seed) {
  if (payload.empty()) return;
  Rng rng(seed);
  const std::size_t flips = 1 + payload.size() / 64;
  for (std::size_t i = 0; i < flips; ++i) {
    const auto index = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(payload.size()) - 1));
    const auto bit = static_cast<unsigned>(rng.uniform_int(0, 7));
    payload[index] ^= static_cast<std::byte>(1u << bit);
  }
}

}  // namespace viper::fault
