# Empty dependencies file for viper_cli.
# This may be replaced when dependencies are built.
