file(REMOVE_RECURSE
  "CMakeFiles/viper_cli.dir/viper_cli.cpp.o"
  "CMakeFiles/viper_cli.dir/viper_cli.cpp.o.d"
  "viper_cli"
  "viper_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viper_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
