# Empty compiler generated dependencies file for nonstationary_test.
# This may be replaced when dependencies are built.
