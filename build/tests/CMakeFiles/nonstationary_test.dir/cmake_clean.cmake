file(REMOVE_RECURSE
  "CMakeFiles/nonstationary_test.dir/nonstationary_test.cpp.o"
  "CMakeFiles/nonstationary_test.dir/nonstationary_test.cpp.o.d"
  "nonstationary_test"
  "nonstationary_test.pdb"
  "nonstationary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonstationary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
