file(REMOVE_RECURSE
  "CMakeFiles/handler_consumer_test.dir/handler_consumer_test.cpp.o"
  "CMakeFiles/handler_consumer_test.dir/handler_consumer_test.cpp.o.d"
  "handler_consumer_test"
  "handler_consumer_test.pdb"
  "handler_consumer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handler_consumer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
