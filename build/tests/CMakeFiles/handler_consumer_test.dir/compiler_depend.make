# Empty compiler generated dependencies file for handler_consumer_test.
# This may be replaced when dependencies are built.
