# Empty dependencies file for cilp_scheduler_test.
# This may be replaced when dependencies are built.
