file(REMOVE_RECURSE
  "CMakeFiles/cilp_scheduler_test.dir/cilp_scheduler_test.cpp.o"
  "CMakeFiles/cilp_scheduler_test.dir/cilp_scheduler_test.cpp.o.d"
  "cilp_scheduler_test"
  "cilp_scheduler_test.pdb"
  "cilp_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cilp_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
