file(REMOVE_RECURSE
  "CMakeFiles/serial_robustness_test.dir/serial_robustness_test.cpp.o"
  "CMakeFiles/serial_robustness_test.dir/serial_robustness_test.cpp.o.d"
  "serial_robustness_test"
  "serial_robustness_test.pdb"
  "serial_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serial_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
