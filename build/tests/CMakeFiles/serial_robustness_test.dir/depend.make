# Empty dependencies file for serial_robustness_test.
# This may be replaced when dependencies are built.
