file(REMOVE_RECURSE
  "CMakeFiles/tensor_store_test.dir/tensor_store_test.cpp.o"
  "CMakeFiles/tensor_store_test.dir/tensor_store_test.cpp.o.d"
  "tensor_store_test"
  "tensor_store_test.pdb"
  "tensor_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
