# Empty dependencies file for tensor_store_test.
# This may be replaced when dependencies are built.
