# Empty dependencies file for frequency_adapter_test.
# This may be replaced when dependencies are built.
