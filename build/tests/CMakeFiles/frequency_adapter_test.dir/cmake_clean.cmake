file(REMOVE_RECURSE
  "CMakeFiles/frequency_adapter_test.dir/frequency_adapter_test.cpp.o"
  "CMakeFiles/frequency_adapter_test.dir/frequency_adapter_test.cpp.o.d"
  "frequency_adapter_test"
  "frequency_adapter_test.pdb"
  "frequency_adapter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_adapter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
