file(REMOVE_RECURSE
  "CMakeFiles/tlp_test.dir/tlp_test.cpp.o"
  "CMakeFiles/tlp_test.dir/tlp_test.cpp.o.d"
  "tlp_test"
  "tlp_test.pdb"
  "tlp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
