# Empty compiler generated dependencies file for tlp_test.
# This may be replaced when dependencies are built.
