# Empty compiler generated dependencies file for stats_manager_test.
# This may be replaced when dependencies are built.
