file(REMOVE_RECURSE
  "CMakeFiles/stats_manager_test.dir/stats_manager_test.cpp.o"
  "CMakeFiles/stats_manager_test.dir/stats_manager_test.cpp.o.d"
  "stats_manager_test"
  "stats_manager_test.pdb"
  "stats_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
