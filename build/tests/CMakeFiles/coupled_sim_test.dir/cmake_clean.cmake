file(REMOVE_RECURSE
  "CMakeFiles/coupled_sim_test.dir/coupled_sim_test.cpp.o"
  "CMakeFiles/coupled_sim_test.dir/coupled_sim_test.cpp.o.d"
  "coupled_sim_test"
  "coupled_sim_test.pdb"
  "coupled_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupled_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
