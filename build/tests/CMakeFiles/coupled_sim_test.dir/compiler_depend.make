# Empty compiler generated dependencies file for coupled_sim_test.
# This may be replaced when dependencies are built.
