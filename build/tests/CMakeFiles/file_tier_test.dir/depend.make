# Empty dependencies file for file_tier_test.
# This may be replaced when dependencies are built.
