file(REMOVE_RECURSE
  "CMakeFiles/file_tier_test.dir/file_tier_test.cpp.o"
  "CMakeFiles/file_tier_test.dir/file_tier_test.cpp.o.d"
  "file_tier_test"
  "file_tier_test.pdb"
  "file_tier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_tier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
