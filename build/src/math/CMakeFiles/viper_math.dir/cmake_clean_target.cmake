file(REMOVE_RECURSE
  "libviper_math.a"
)
