file(REMOVE_RECURSE
  "CMakeFiles/viper_math.dir/curve_models.cpp.o"
  "CMakeFiles/viper_math.dir/curve_models.cpp.o.d"
  "CMakeFiles/viper_math.dir/least_squares.cpp.o"
  "CMakeFiles/viper_math.dir/least_squares.cpp.o.d"
  "CMakeFiles/viper_math.dir/stats.cpp.o"
  "CMakeFiles/viper_math.dir/stats.cpp.o.d"
  "libviper_math.a"
  "libviper_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viper_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
