# Empty compiler generated dependencies file for viper_math.
# This may be replaced when dependencies are built.
