file(REMOVE_RECURSE
  "libviper_serial.a"
)
