
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serial/byte_io.cpp" "src/serial/CMakeFiles/viper_serial.dir/byte_io.cpp.o" "gcc" "src/serial/CMakeFiles/viper_serial.dir/byte_io.cpp.o.d"
  "/root/repo/src/serial/compress.cpp" "src/serial/CMakeFiles/viper_serial.dir/compress.cpp.o" "gcc" "src/serial/CMakeFiles/viper_serial.dir/compress.cpp.o.d"
  "/root/repo/src/serial/crc32.cpp" "src/serial/CMakeFiles/viper_serial.dir/crc32.cpp.o" "gcc" "src/serial/CMakeFiles/viper_serial.dir/crc32.cpp.o.d"
  "/root/repo/src/serial/delta.cpp" "src/serial/CMakeFiles/viper_serial.dir/delta.cpp.o" "gcc" "src/serial/CMakeFiles/viper_serial.dir/delta.cpp.o.d"
  "/root/repo/src/serial/h5like_format.cpp" "src/serial/CMakeFiles/viper_serial.dir/h5like_format.cpp.o" "gcc" "src/serial/CMakeFiles/viper_serial.dir/h5like_format.cpp.o.d"
  "/root/repo/src/serial/viper_format.cpp" "src/serial/CMakeFiles/viper_serial.dir/viper_format.cpp.o" "gcc" "src/serial/CMakeFiles/viper_serial.dir/viper_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/viper_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/viper_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
