file(REMOVE_RECURSE
  "CMakeFiles/viper_serial.dir/byte_io.cpp.o"
  "CMakeFiles/viper_serial.dir/byte_io.cpp.o.d"
  "CMakeFiles/viper_serial.dir/compress.cpp.o"
  "CMakeFiles/viper_serial.dir/compress.cpp.o.d"
  "CMakeFiles/viper_serial.dir/crc32.cpp.o"
  "CMakeFiles/viper_serial.dir/crc32.cpp.o.d"
  "CMakeFiles/viper_serial.dir/delta.cpp.o"
  "CMakeFiles/viper_serial.dir/delta.cpp.o.d"
  "CMakeFiles/viper_serial.dir/h5like_format.cpp.o"
  "CMakeFiles/viper_serial.dir/h5like_format.cpp.o.d"
  "CMakeFiles/viper_serial.dir/viper_format.cpp.o"
  "CMakeFiles/viper_serial.dir/viper_format.cpp.o.d"
  "libviper_serial.a"
  "libviper_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viper_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
