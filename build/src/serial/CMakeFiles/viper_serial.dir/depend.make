# Empty dependencies file for viper_serial.
# This may be replaced when dependencies are built.
