
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/app_profile.cpp" "src/sim/CMakeFiles/viper_sim.dir/app_profile.cpp.o" "gcc" "src/sim/CMakeFiles/viper_sim.dir/app_profile.cpp.o.d"
  "/root/repo/src/sim/nonstationary.cpp" "src/sim/CMakeFiles/viper_sim.dir/nonstationary.cpp.o" "gcc" "src/sim/CMakeFiles/viper_sim.dir/nonstationary.cpp.o.d"
  "/root/repo/src/sim/trajectory.cpp" "src/sim/CMakeFiles/viper_sim.dir/trajectory.cpp.o" "gcc" "src/sim/CMakeFiles/viper_sim.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/viper_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/viper_math.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/viper_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
