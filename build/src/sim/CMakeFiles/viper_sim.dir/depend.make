# Empty dependencies file for viper_sim.
# This may be replaced when dependencies are built.
