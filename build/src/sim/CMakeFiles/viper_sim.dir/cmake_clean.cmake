file(REMOVE_RECURSE
  "CMakeFiles/viper_sim.dir/app_profile.cpp.o"
  "CMakeFiles/viper_sim.dir/app_profile.cpp.o.d"
  "CMakeFiles/viper_sim.dir/nonstationary.cpp.o"
  "CMakeFiles/viper_sim.dir/nonstationary.cpp.o.d"
  "CMakeFiles/viper_sim.dir/trajectory.cpp.o"
  "CMakeFiles/viper_sim.dir/trajectory.cpp.o.d"
  "libviper_sim.a"
  "libviper_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viper_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
