file(REMOVE_RECURSE
  "libviper_sim.a"
)
