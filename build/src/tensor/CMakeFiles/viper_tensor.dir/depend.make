# Empty dependencies file for viper_tensor.
# This may be replaced when dependencies are built.
