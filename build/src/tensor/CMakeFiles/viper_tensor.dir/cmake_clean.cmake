file(REMOVE_RECURSE
  "CMakeFiles/viper_tensor.dir/architectures.cpp.o"
  "CMakeFiles/viper_tensor.dir/architectures.cpp.o.d"
  "CMakeFiles/viper_tensor.dir/dtype.cpp.o"
  "CMakeFiles/viper_tensor.dir/dtype.cpp.o.d"
  "CMakeFiles/viper_tensor.dir/model.cpp.o"
  "CMakeFiles/viper_tensor.dir/model.cpp.o.d"
  "CMakeFiles/viper_tensor.dir/tensor.cpp.o"
  "CMakeFiles/viper_tensor.dir/tensor.cpp.o.d"
  "libviper_tensor.a"
  "libviper_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viper_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
