file(REMOVE_RECURSE
  "libviper_tensor.a"
)
