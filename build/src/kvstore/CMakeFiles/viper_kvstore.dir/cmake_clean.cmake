file(REMOVE_RECURSE
  "CMakeFiles/viper_kvstore.dir/kvstore.cpp.o"
  "CMakeFiles/viper_kvstore.dir/kvstore.cpp.o.d"
  "CMakeFiles/viper_kvstore.dir/pubsub.cpp.o"
  "CMakeFiles/viper_kvstore.dir/pubsub.cpp.o.d"
  "libviper_kvstore.a"
  "libviper_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viper_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
