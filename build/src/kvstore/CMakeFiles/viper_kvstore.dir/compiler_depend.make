# Empty compiler generated dependencies file for viper_kvstore.
# This may be replaced when dependencies are built.
