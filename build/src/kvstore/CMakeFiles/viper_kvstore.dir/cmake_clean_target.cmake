file(REMOVE_RECURSE
  "libviper_kvstore.a"
)
