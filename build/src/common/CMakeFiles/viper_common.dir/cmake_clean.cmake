file(REMOVE_RECURSE
  "CMakeFiles/viper_common.dir/clock.cpp.o"
  "CMakeFiles/viper_common.dir/clock.cpp.o.d"
  "CMakeFiles/viper_common.dir/log.cpp.o"
  "CMakeFiles/viper_common.dir/log.cpp.o.d"
  "CMakeFiles/viper_common.dir/status.cpp.o"
  "CMakeFiles/viper_common.dir/status.cpp.o.d"
  "CMakeFiles/viper_common.dir/thread_util.cpp.o"
  "CMakeFiles/viper_common.dir/thread_util.cpp.o.d"
  "libviper_common.a"
  "libviper_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viper_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
