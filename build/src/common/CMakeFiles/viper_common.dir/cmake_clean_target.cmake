file(REMOVE_RECURSE
  "libviper_common.a"
)
