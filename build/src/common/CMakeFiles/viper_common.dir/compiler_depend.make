# Empty compiler generated dependencies file for viper_common.
# This may be replaced when dependencies are built.
