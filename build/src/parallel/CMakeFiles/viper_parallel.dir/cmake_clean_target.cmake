file(REMOVE_RECURSE
  "libviper_parallel.a"
)
