file(REMOVE_RECURSE
  "CMakeFiles/viper_parallel.dir/broadcast.cpp.o"
  "CMakeFiles/viper_parallel.dir/broadcast.cpp.o.d"
  "CMakeFiles/viper_parallel.dir/multi_node.cpp.o"
  "CMakeFiles/viper_parallel.dir/multi_node.cpp.o.d"
  "CMakeFiles/viper_parallel.dir/replicated.cpp.o"
  "CMakeFiles/viper_parallel.dir/replicated.cpp.o.d"
  "CMakeFiles/viper_parallel.dir/sharding.cpp.o"
  "CMakeFiles/viper_parallel.dir/sharding.cpp.o.d"
  "libviper_parallel.a"
  "libviper_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viper_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
