# Empty compiler generated dependencies file for viper_parallel.
# This may be replaced when dependencies are built.
