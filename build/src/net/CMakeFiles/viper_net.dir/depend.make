# Empty dependencies file for viper_net.
# This may be replaced when dependencies are built.
