file(REMOVE_RECURSE
  "libviper_net.a"
)
