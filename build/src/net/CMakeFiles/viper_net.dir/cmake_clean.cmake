file(REMOVE_RECURSE
  "CMakeFiles/viper_net.dir/channel.cpp.o"
  "CMakeFiles/viper_net.dir/channel.cpp.o.d"
  "CMakeFiles/viper_net.dir/comm.cpp.o"
  "CMakeFiles/viper_net.dir/comm.cpp.o.d"
  "CMakeFiles/viper_net.dir/fabric.cpp.o"
  "CMakeFiles/viper_net.dir/fabric.cpp.o.d"
  "CMakeFiles/viper_net.dir/link_model.cpp.o"
  "CMakeFiles/viper_net.dir/link_model.cpp.o.d"
  "CMakeFiles/viper_net.dir/stream.cpp.o"
  "CMakeFiles/viper_net.dir/stream.cpp.o.d"
  "libviper_net.a"
  "libviper_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viper_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
