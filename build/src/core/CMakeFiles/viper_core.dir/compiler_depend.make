# Empty compiler generated dependencies file for viper_core.
# This may be replaced when dependencies are built.
