file(REMOVE_RECURSE
  "libviper_core.a"
)
