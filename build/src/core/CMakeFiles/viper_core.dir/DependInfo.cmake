
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/api.cpp" "src/core/CMakeFiles/viper_core.dir/api.cpp.o" "gcc" "src/core/CMakeFiles/viper_core.dir/api.cpp.o.d"
  "/root/repo/src/core/checkpoint_callback.cpp" "src/core/CMakeFiles/viper_core.dir/checkpoint_callback.cpp.o" "gcc" "src/core/CMakeFiles/viper_core.dir/checkpoint_callback.cpp.o.d"
  "/root/repo/src/core/cilp.cpp" "src/core/CMakeFiles/viper_core.dir/cilp.cpp.o" "gcc" "src/core/CMakeFiles/viper_core.dir/cilp.cpp.o.d"
  "/root/repo/src/core/consumer.cpp" "src/core/CMakeFiles/viper_core.dir/consumer.cpp.o" "gcc" "src/core/CMakeFiles/viper_core.dir/consumer.cpp.o.d"
  "/root/repo/src/core/coupled_sim.cpp" "src/core/CMakeFiles/viper_core.dir/coupled_sim.cpp.o" "gcc" "src/core/CMakeFiles/viper_core.dir/coupled_sim.cpp.o.d"
  "/root/repo/src/core/frequency_adapter.cpp" "src/core/CMakeFiles/viper_core.dir/frequency_adapter.cpp.o" "gcc" "src/core/CMakeFiles/viper_core.dir/frequency_adapter.cpp.o.d"
  "/root/repo/src/core/handler.cpp" "src/core/CMakeFiles/viper_core.dir/handler.cpp.o" "gcc" "src/core/CMakeFiles/viper_core.dir/handler.cpp.o.d"
  "/root/repo/src/core/metadata.cpp" "src/core/CMakeFiles/viper_core.dir/metadata.cpp.o" "gcc" "src/core/CMakeFiles/viper_core.dir/metadata.cpp.o.d"
  "/root/repo/src/core/notification.cpp" "src/core/CMakeFiles/viper_core.dir/notification.cpp.o" "gcc" "src/core/CMakeFiles/viper_core.dir/notification.cpp.o.d"
  "/root/repo/src/core/platform.cpp" "src/core/CMakeFiles/viper_core.dir/platform.cpp.o" "gcc" "src/core/CMakeFiles/viper_core.dir/platform.cpp.o.d"
  "/root/repo/src/core/recovery.cpp" "src/core/CMakeFiles/viper_core.dir/recovery.cpp.o" "gcc" "src/core/CMakeFiles/viper_core.dir/recovery.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/viper_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/viper_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/selector.cpp" "src/core/CMakeFiles/viper_core.dir/selector.cpp.o" "gcc" "src/core/CMakeFiles/viper_core.dir/selector.cpp.o.d"
  "/root/repo/src/core/stats_manager.cpp" "src/core/CMakeFiles/viper_core.dir/stats_manager.cpp.o" "gcc" "src/core/CMakeFiles/viper_core.dir/stats_manager.cpp.o.d"
  "/root/repo/src/core/tlp.cpp" "src/core/CMakeFiles/viper_core.dir/tlp.cpp.o" "gcc" "src/core/CMakeFiles/viper_core.dir/tlp.cpp.o.d"
  "/root/repo/src/core/workflow.cpp" "src/core/CMakeFiles/viper_core.dir/workflow.cpp.o" "gcc" "src/core/CMakeFiles/viper_core.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/viper_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/viper_math.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/viper_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/viper_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/viper_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/viper_net.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/viper_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/viper_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/viper_train.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
