file(REMOVE_RECURSE
  "libviper_repo.a"
)
