# Empty compiler generated dependencies file for viper_repo.
# This may be replaced when dependencies are built.
