file(REMOVE_RECURSE
  "CMakeFiles/viper_repo.dir/delta_store.cpp.o"
  "CMakeFiles/viper_repo.dir/delta_store.cpp.o.d"
  "CMakeFiles/viper_repo.dir/tensor_store.cpp.o"
  "CMakeFiles/viper_repo.dir/tensor_store.cpp.o.d"
  "libviper_repo.a"
  "libviper_repo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viper_repo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
