
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/repo/delta_store.cpp" "src/repo/CMakeFiles/viper_repo.dir/delta_store.cpp.o" "gcc" "src/repo/CMakeFiles/viper_repo.dir/delta_store.cpp.o.d"
  "/root/repo/src/repo/tensor_store.cpp" "src/repo/CMakeFiles/viper_repo.dir/tensor_store.cpp.o" "gcc" "src/repo/CMakeFiles/viper_repo.dir/tensor_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/viper_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/viper_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/viper_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/viper_memsys.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
