file(REMOVE_RECURSE
  "CMakeFiles/viper_train.dir/inference_sim.cpp.o"
  "CMakeFiles/viper_train.dir/inference_sim.cpp.o.d"
  "CMakeFiles/viper_train.dir/trainer_sim.cpp.o"
  "CMakeFiles/viper_train.dir/trainer_sim.cpp.o.d"
  "libviper_train.a"
  "libviper_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viper_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
