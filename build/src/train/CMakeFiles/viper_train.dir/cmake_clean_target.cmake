file(REMOVE_RECURSE
  "libviper_train.a"
)
