# Empty dependencies file for viper_train.
# This may be replaced when dependencies are built.
