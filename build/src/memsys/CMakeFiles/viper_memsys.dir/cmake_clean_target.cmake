file(REMOVE_RECURSE
  "libviper_memsys.a"
)
