
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsys/device_model.cpp" "src/memsys/CMakeFiles/viper_memsys.dir/device_model.cpp.o" "gcc" "src/memsys/CMakeFiles/viper_memsys.dir/device_model.cpp.o.d"
  "/root/repo/src/memsys/file_tier.cpp" "src/memsys/CMakeFiles/viper_memsys.dir/file_tier.cpp.o" "gcc" "src/memsys/CMakeFiles/viper_memsys.dir/file_tier.cpp.o.d"
  "/root/repo/src/memsys/presets.cpp" "src/memsys/CMakeFiles/viper_memsys.dir/presets.cpp.o" "gcc" "src/memsys/CMakeFiles/viper_memsys.dir/presets.cpp.o.d"
  "/root/repo/src/memsys/storage_tier.cpp" "src/memsys/CMakeFiles/viper_memsys.dir/storage_tier.cpp.o" "gcc" "src/memsys/CMakeFiles/viper_memsys.dir/storage_tier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/viper_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
