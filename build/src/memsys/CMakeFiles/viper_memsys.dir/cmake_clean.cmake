file(REMOVE_RECURSE
  "CMakeFiles/viper_memsys.dir/device_model.cpp.o"
  "CMakeFiles/viper_memsys.dir/device_model.cpp.o.d"
  "CMakeFiles/viper_memsys.dir/file_tier.cpp.o"
  "CMakeFiles/viper_memsys.dir/file_tier.cpp.o.d"
  "CMakeFiles/viper_memsys.dir/presets.cpp.o"
  "CMakeFiles/viper_memsys.dir/presets.cpp.o.d"
  "CMakeFiles/viper_memsys.dir/storage_tier.cpp.o"
  "CMakeFiles/viper_memsys.dir/storage_tier.cpp.o.d"
  "libviper_memsys.a"
  "libviper_memsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viper_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
