# Empty compiler generated dependencies file for viper_memsys.
# This may be replaced when dependencies are built.
