file(REMOVE_RECURSE
  "CMakeFiles/table1_ckpt_overhead.dir/table1_ckpt_overhead.cpp.o"
  "CMakeFiles/table1_ckpt_overhead.dir/table1_ckpt_overhead.cpp.o.d"
  "table1_ckpt_overhead"
  "table1_ckpt_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ckpt_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
