file(REMOVE_RECURSE
  "CMakeFiles/ablation_notification.dir/ablation_notification.cpp.o"
  "CMakeFiles/ablation_notification.dir/ablation_notification.cpp.o.d"
  "ablation_notification"
  "ablation_notification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_notification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
