# Empty compiler generated dependencies file for fig10_cil_schedules.
# This may be replaced when dependencies are built.
