file(REMOVE_RECURSE
  "CMakeFiles/fig10_cil_schedules.dir/fig10_cil_schedules.cpp.o"
  "CMakeFiles/fig10_cil_schedules.dir/fig10_cil_schedules.cpp.o.d"
  "fig10_cil_schedules"
  "fig10_cil_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cil_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
