file(REMOVE_RECURSE
  "CMakeFiles/micro_curve_fit.dir/micro_curve_fit.cpp.o"
  "CMakeFiles/micro_curve_fit.dir/micro_curve_fit.cpp.o.d"
  "micro_curve_fit"
  "micro_curve_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_curve_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
