# Empty dependencies file for micro_curve_fit.
# This may be replaced when dependencies are built.
