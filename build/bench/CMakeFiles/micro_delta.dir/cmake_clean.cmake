file(REMOVE_RECURSE
  "CMakeFiles/micro_delta.dir/micro_delta.cpp.o"
  "CMakeFiles/micro_delta.dir/micro_delta.cpp.o.d"
  "micro_delta"
  "micro_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
