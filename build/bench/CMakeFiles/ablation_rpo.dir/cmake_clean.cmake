file(REMOVE_RECURSE
  "CMakeFiles/ablation_rpo.dir/ablation_rpo.cpp.o"
  "CMakeFiles/ablation_rpo.dir/ablation_rpo.cpp.o.d"
  "ablation_rpo"
  "ablation_rpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
