# Empty compiler generated dependencies file for ablation_rpo.
# This may be replaced when dependencies are built.
