# Empty dependencies file for micro_pubsub.
# This may be replaced when dependencies are built.
