# Empty compiler generated dependencies file for ablation_poll_burden.
# This may be replaced when dependencies are built.
