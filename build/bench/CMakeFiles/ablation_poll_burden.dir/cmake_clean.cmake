file(REMOVE_RECURSE
  "CMakeFiles/ablation_poll_burden.dir/ablation_poll_burden.cpp.o"
  "CMakeFiles/ablation_poll_burden.dir/ablation_poll_burden.cpp.o.d"
  "ablation_poll_burden"
  "ablation_poll_burden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_poll_burden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
