# Empty dependencies file for ablation_tensor_repo.
# This may be replaced when dependencies are built.
