file(REMOVE_RECURSE
  "CMakeFiles/ablation_tensor_repo.dir/ablation_tensor_repo.cpp.o"
  "CMakeFiles/ablation_tensor_repo.dir/ablation_tensor_repo.cpp.o.d"
  "ablation_tensor_repo"
  "ablation_tensor_repo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tensor_repo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
