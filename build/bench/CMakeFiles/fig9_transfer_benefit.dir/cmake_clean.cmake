file(REMOVE_RECURSE
  "CMakeFiles/fig9_transfer_benefit.dir/fig9_transfer_benefit.cpp.o"
  "CMakeFiles/fig9_transfer_benefit.dir/fig9_transfer_benefit.cpp.o.d"
  "fig9_transfer_benefit"
  "fig9_transfer_benefit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_transfer_benefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
