file(REMOVE_RECURSE
  "CMakeFiles/micro_transfer_engine.dir/micro_transfer_engine.cpp.o"
  "CMakeFiles/micro_transfer_engine.dir/micro_transfer_engine.cpp.o.d"
  "micro_transfer_engine"
  "micro_transfer_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_transfer_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
