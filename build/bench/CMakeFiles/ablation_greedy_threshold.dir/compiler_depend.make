# Empty compiler generated dependencies file for ablation_greedy_threshold.
# This may be replaced when dependencies are built.
