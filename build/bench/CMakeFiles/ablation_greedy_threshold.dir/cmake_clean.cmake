file(REMOVE_RECURSE
  "CMakeFiles/ablation_greedy_threshold.dir/ablation_greedy_threshold.cpp.o"
  "CMakeFiles/ablation_greedy_threshold.dir/ablation_greedy_threshold.cpp.o.d"
  "ablation_greedy_threshold"
  "ablation_greedy_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_greedy_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
