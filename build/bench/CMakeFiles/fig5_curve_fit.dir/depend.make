# Empty dependencies file for fig5_curve_fit.
# This may be replaced when dependencies are built.
