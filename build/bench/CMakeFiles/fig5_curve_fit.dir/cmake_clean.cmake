file(REMOVE_RECURSE
  "CMakeFiles/fig5_curve_fit.dir/fig5_curve_fit.cpp.o"
  "CMakeFiles/fig5_curve_fit.dir/fig5_curve_fit.cpp.o.d"
  "fig5_curve_fit"
  "fig5_curve_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_curve_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
