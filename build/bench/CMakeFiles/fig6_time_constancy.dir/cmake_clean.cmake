file(REMOVE_RECURSE
  "CMakeFiles/fig6_time_constancy.dir/fig6_time_constancy.cpp.o"
  "CMakeFiles/fig6_time_constancy.dir/fig6_time_constancy.cpp.o.d"
  "fig6_time_constancy"
  "fig6_time_constancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_time_constancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
