file(REMOVE_RECURSE
  "CMakeFiles/scale_consumers.dir/scale_consumers.cpp.o"
  "CMakeFiles/scale_consumers.dir/scale_consumers.cpp.o.d"
  "scale_consumers"
  "scale_consumers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_consumers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
