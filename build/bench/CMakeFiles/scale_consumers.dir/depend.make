# Empty dependencies file for scale_consumers.
# This may be replaced when dependencies are built.
