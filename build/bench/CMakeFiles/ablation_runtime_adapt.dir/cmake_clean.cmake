file(REMOVE_RECURSE
  "CMakeFiles/ablation_runtime_adapt.dir/ablation_runtime_adapt.cpp.o"
  "CMakeFiles/ablation_runtime_adapt.dir/ablation_runtime_adapt.cpp.o.d"
  "ablation_runtime_adapt"
  "ablation_runtime_adapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_runtime_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
