# Empty compiler generated dependencies file for ablation_runtime_adapt.
# This may be replaced when dependencies are built.
