# Empty compiler generated dependencies file for sharded_serving.
# This may be replaced when dependencies are built.
