file(REMOVE_RECURSE
  "CMakeFiles/sharded_serving.dir/sharded_serving.cpp.o"
  "CMakeFiles/sharded_serving.dir/sharded_serving.cpp.o.d"
  "sharded_serving"
  "sharded_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
