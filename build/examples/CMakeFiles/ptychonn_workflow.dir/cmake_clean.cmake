file(REMOVE_RECURSE
  "CMakeFiles/ptychonn_workflow.dir/ptychonn_workflow.cpp.o"
  "CMakeFiles/ptychonn_workflow.dir/ptychonn_workflow.cpp.o.d"
  "ptychonn_workflow"
  "ptychonn_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptychonn_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
