# Empty dependencies file for ptychonn_workflow.
# This may be replaced when dependencies are built.
