
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/ptychonn_workflow.cpp" "examples/CMakeFiles/ptychonn_workflow.dir/ptychonn_workflow.cpp.o" "gcc" "examples/CMakeFiles/ptychonn_workflow.dir/ptychonn_workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/viper_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/viper_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/viper_net.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/viper_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/viper_train.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/viper_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/viper_math.dir/DependInfo.cmake"
  "/root/repo/build/src/repo/CMakeFiles/viper_repo.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/viper_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/viper_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/viper_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/viper_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
