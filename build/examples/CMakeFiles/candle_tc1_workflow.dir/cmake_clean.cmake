file(REMOVE_RECURSE
  "CMakeFiles/candle_tc1_workflow.dir/candle_tc1_workflow.cpp.o"
  "CMakeFiles/candle_tc1_workflow.dir/candle_tc1_workflow.cpp.o.d"
  "candle_tc1_workflow"
  "candle_tc1_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_tc1_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
