# Empty dependencies file for candle_tc1_workflow.
# This may be replaced when dependencies are built.
