// Unit tests for viper_common: status/result, clocks, queue, executor.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "viper/common/clock.hpp"
#include "viper/common/queue.hpp"
#include "viper/common/rng.hpp"
#include "viper/common/status.hpp"
#include "viper/common/thread_util.hpp"
#include "viper/common/units.hpp"

namespace viper {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = not_found("missing thing");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.to_string(), "NOT_FOUND: missing thing");
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    EXPECT_NE(to_string(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = invalid_argument("nope");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.is_ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

TEST(VirtualClock, AdvancesDeterministically) {
  VirtualClock clock(10.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
  clock.advance(2.5);
  EXPECT_DOUBLE_EQ(clock.now(), 12.5);
  clock.advance(-1.0);  // no-op
  EXPECT_DOUBLE_EQ(clock.now(), 12.5);
}

TEST(VirtualClock, AdvanceToNeverMovesBackwards) {
  VirtualClock clock;
  clock.advance_to(5.0);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
  clock.advance_to(3.0);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
}

TEST(VirtualClock, ConcurrentAdvancesAccumulate) {
  VirtualClock clock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < 1000; ++i) clock.advance(0.001);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_NEAR(clock.now(), 4.0, 1e-6);
}

TEST(WallClock, NowIsMonotonic) {
  WallClock clock;
  const double a = clock.now();
  const double b = clock.now();
  EXPECT_GE(b, a);
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(watch.elapsed(), 0.004);
  watch.reset();
  EXPECT_LT(watch.elapsed(), 0.005);
}

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BlockingQueue, BoundedTryPushFailsWhenFull) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(BlockingQueue, CloseDrainsThenSignals) {
  BlockingQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));  // closed to producers
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, PopForTimesOut) {
  BlockingQueue<int> q;
  const auto got = q.pop_for(std::chrono::duration<double>(0.01));
  EXPECT_FALSE(got.has_value());
}

TEST(BlockingQueue, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::thread consumer([&q] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(BlockingQueue, ManyProducersManyConsumers) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.push(i);
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&q, &sum] {
      while (auto v = q.pop()) sum += *v;
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  threads[kProducers].join();
  threads[kProducers + 1].join();
  EXPECT_EQ(sum.load(), kProducers * kPerProducer * (kPerProducer + 1) / 2);
}

TEST(SerialExecutor, RunsTasksInOrder) {
  SerialExecutor executor;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    executor.submit([&order, i] { order.push_back(i); });
  }
  executor.drain();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SerialExecutor, ShutdownRunsBacklog) {
  std::atomic<int> ran{0};
  {
    SerialExecutor executor;
    for (int i = 0; i < 100; ++i) {
      executor.submit([&ran] { ++ran; });
    }
    executor.shutdown();
    EXPECT_FALSE(executor.submit([&ran] { ++ran; }));
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(SerialExecutor, DrainIsABarrier) {
  SerialExecutor executor;
  std::atomic<bool> done{false};
  executor.submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    done = true;
  });
  executor.drain();
  EXPECT_TRUE(done.load());
}

TEST(WorkerThread, StopFlagTerminatesLoop) {
  WorkerThread worker;
  std::atomic<int> ticks{0};
  worker.start([&ticks](const std::atomic<bool>& stop) {
    while (!stop.load()) {
      ++ticks;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  worker.stop_and_join();
  EXPECT_GT(ticks.load(), 0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, ClampedNormalRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.clamped_normal(1.0, 10.0, 0.5, 1.5);
    EXPECT_GE(v, 0.5);
    EXPECT_LE(v, 1.5);
  }
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(4'700'000'000ULL), "4.70 GB");
  EXPECT_EQ(format_bytes(600'000'000ULL), "600.0 MB");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(format_seconds(1.5), "1.500 s");
  EXPECT_EQ(format_seconds(0.0025), "2.500 ms");
  EXPECT_EQ(format_seconds(5e-6), "5.0 us");
}

TEST(Units, Literals) {
  using namespace viper::literals;
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(4700_MB, 4'700'000'000ULL);
  EXPECT_EQ(1_GiB, 1073741824u);
}

}  // namespace
}  // namespace viper
