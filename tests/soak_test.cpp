// Soak-harness tests: scenario config round-trips and rejection of
// malformed specs, version-scoped crash-rule compilation, the
// replay-equivalence contract (same seed => byte-identical fault
// schedule, executed event log, and — under lockstep pacing with chaos
// off — ledger stage signature), and a chaos smoke soak that must end in
// a PASS fleet verdict with zero torn serves.
#include <gtest/gtest.h>

#include <string>

#include "viper/sim/scenario.hpp"
#include "viper/sim/soak.hpp"

namespace viper::sim {
namespace {

// ---------------------------------------------------------------------------
// Scenario config
// ---------------------------------------------------------------------------

TEST(Scenario, ParseRenderRoundTrip) {
  const std::string config = R"(# demo scenario
name = demo
seed = 99
chaos = true
lockstep = true
convergence_timeout = 5
width_scale = 0.03125
traffic.think_ms = 0.1
traffic.poisson = true
chaos.drop_p = 0.03
producers = 2
producer.0.model = alpha
producer.0.app = nt3a
producer.0.strategy = viper-pfs
producer.0.versions = 4
producer.1.save_gap_ms = 1.5
consumers = 3
consumer.2.producer = 0
consumer.2.prefetch = false
event.crash_producer = 0@2:durability.flush.begin
event.partition = 1@2:1
event.heal = 1@3:1
event.restart_consumer = 0@3:2
)";
  auto parsed = parse_scenario(config);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const ScenarioSpec& spec = parsed.value();
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_TRUE(spec.chaos);
  EXPECT_TRUE(spec.lockstep);
  EXPECT_DOUBLE_EQ(spec.chaos_options.message_drop_p, 0.03);
  ASSERT_EQ(spec.producers.size(), 2u);
  EXPECT_EQ(spec.model_name(0), "alpha");
  EXPECT_EQ(spec.model_name(1), "m1");  // unnamed producers get defaults
  EXPECT_EQ(spec.producers[0].app, AppModel::kNt3A);
  EXPECT_EQ(spec.producers[0].strategy, core::Strategy::kViperPfs);
  EXPECT_EQ(spec.producers[0].versions, 4u);
  EXPECT_DOUBLE_EQ(spec.producers[1].save_gap_ms, 1.5);
  ASSERT_EQ(spec.consumers.size(), 3u);
  EXPECT_EQ(spec.producer_of(0), 0);  // round-robin
  EXPECT_EQ(spec.producer_of(1), 1);
  EXPECT_EQ(spec.producer_of(2), 0);  // pinned
  EXPECT_FALSE(spec.consumers[2].prefetch);
  ASSERT_EQ(spec.events.size(), 4u);
  EXPECT_EQ(spec.events[0].kind, SoakEventKind::kCrashProducer);
  EXPECT_EQ(spec.events[0].crash_site, "durability.flush.begin");
  EXPECT_EQ(spec.events[1].kind, SoakEventKind::kPartition);
  EXPECT_EQ(spec.events[1].consumer, 1);

  // Canonical rendering is a fixed point: parse(render(spec)) renders
  // identically.
  const std::string rendered = render_scenario(spec);
  auto reparsed = parse_scenario(rendered);
  ASSERT_TRUE(reparsed.is_ok()) << reparsed.status().to_string();
  EXPECT_EQ(render_scenario(reparsed.value()), rendered);
}

TEST(Scenario, RejectsUnknownKeysAndMalformedValues) {
  const std::string base = "producers=1\nconsumers=1\n";
  // Unknown keys are hard errors — a misspelled chaos knob silently
  // ignored would be a debugging trap.
  EXPECT_FALSE(parse_scenario(base + "sede=7\n").is_ok());
  EXPECT_FALSE(parse_scenario(base + "producer.0.modle=x\n").is_ok());
  EXPECT_FALSE(parse_scenario(base + "event.reboot=0@1:0\n").is_ok());
  // Malformed values.
  EXPECT_FALSE(parse_scenario(base + "seed=banana\n").is_ok());
  EXPECT_FALSE(parse_scenario(base + "event.partition=0@1\n").is_ok());
  EXPECT_FALSE(parse_scenario(base + "event.crash_producer=nope\n").is_ok());
  // Cross-field invariants.
  EXPECT_FALSE(parse_scenario(base + "event.partition=0@9:0\n").is_ok());
  EXPECT_FALSE(parse_scenario(base + "event.partition=3@1:0\n").is_ok());
  EXPECT_FALSE(parse_scenario(base + "consumer.0.producer=5\n").is_ok());
  EXPECT_FALSE(parse_scenario(base + "width_scale=0\n").is_ok());
  EXPECT_FALSE(parse_scenario("producers=2\nconsumers=1\n"
                              "producer.0.model=dup\nproducer.1.model=dup\n")
                   .is_ok());
  EXPECT_FALSE(parse_scenario("consumers=1\n").is_ok());  // no producers
}

TEST(Scenario, TopologyKeyParsesRendersAndValidates) {
  const std::string base = "producers=1\nconsumers=2\n";
  for (const auto& [text, mode] :
       {std::pair<std::string, FanoutMode>{"sequential", FanoutMode::kSequential},
        {"tree", FanoutMode::kTree},
        {"chain", FanoutMode::kChain},
        {"pull", FanoutMode::kPull}}) {
    auto parsed = parse_scenario(base + "topology=" + text + "\n");
    ASSERT_TRUE(parsed.is_ok()) << text << ": " << parsed.status().to_string();
    EXPECT_EQ(parsed.value().topology, mode);
    // Fixed point: the canonical render re-parses to the same spec.
    const std::string rendered = render_scenario(parsed.value());
    auto reparsed = parse_scenario(rendered);
    ASSERT_TRUE(reparsed.is_ok());
    EXPECT_EQ(reparsed.value().topology, mode);
    EXPECT_EQ(render_scenario(reparsed.value()), rendered);
  }
  // Pull is the default and renders implicitly, so pre-broadcast configs
  // and their renders stay byte-identical.
  EXPECT_EQ(parse_scenario(base).value().topology, FanoutMode::kPull);
  EXPECT_EQ(render_scenario(parse_scenario(base).value()).find("topology"),
            std::string::npos);
  EXPECT_FALSE(parse_scenario(base + "topology=ring\n").is_ok());
}

TEST(Scenario, CrashEventsCompileToVersionScopedRules) {
  ScenarioSpec spec;
  spec.producers.resize(2);
  spec.producers[0].model = "alpha";
  spec.consumers.resize(1);
  SoakEvent crash;
  crash.kind = SoakEventKind::kCrashProducer;
  crash.producer = 0;
  crash.at_version = 3;
  crash.crash_site = "durability.flush.begin";
  spec.events.push_back(crash);

  // Chaos off: the compiled plan is exactly the one crash rule, scoped
  // so only alpha's v3 flush can die.
  const fault::FaultPlan plan = compile_fault_plan(spec);
  ASSERT_EQ(plan.num_rules(), 1u);
  EXPECT_EQ(plan.rules()[0].kind, fault::FaultKind::kCrash);
  EXPECT_EQ(plan.rules()[0].site, "durability.flush.begin/alpha/v3");

  const std::string schedule = render_fault_schedule(spec);
  EXPECT_NE(schedule.find("durability.flush.begin/alpha/v3"),
            std::string::npos);
  EXPECT_NE(schedule.find("event crash_producer producer=0 at_version=3"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Runner: determinism and the chaos smoke acceptance
// ---------------------------------------------------------------------------

/// A small lockstep fleet with every event kind on the schedule. Both
/// producers use viper-pfs so every consumer path is the deterministic
/// PFS read — the pacing mode under which the ledger stage signature is
/// part of the replay contract.
ScenarioSpec lockstep_spec(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "lockstep";
  spec.seed = seed;
  spec.lockstep = true;
  spec.width_scale = 1.0 / 64.0;
  spec.producers.resize(2);
  for (auto& producer : spec.producers) {
    producer.strategy = core::Strategy::kViperPfs;
    producer.versions = 4;
    producer.save_gap_ms = 1.0;
  }
  spec.producers[0].app = AppModel::kTc1;
  spec.producers[1].app = AppModel::kNt3A;
  spec.consumers.resize(2);
  spec.traffic.think_ms = 0.1;
  spec.slo.max_p99_update_latency_seconds = 10.0;
  spec.slo.max_rpo_seconds = 60.0;
  spec.slo.max_recovery_seconds = 10.0;

  SoakEvent crash;
  crash.kind = SoakEventKind::kCrashProducer;
  crash.producer = 0;
  crash.at_version = 2;
  crash.crash_site = "durability.flush.begin";
  spec.events.push_back(crash);
  SoakEvent partition;
  partition.kind = SoakEventKind::kPartition;
  partition.producer = 1;
  partition.at_version = 2;
  partition.consumer = 1;
  spec.events.push_back(partition);
  SoakEvent heal;
  heal.kind = SoakEventKind::kHeal;
  heal.producer = 1;
  heal.at_version = 3;
  heal.consumer = 1;
  spec.events.push_back(heal);
  SoakEvent restart;
  restart.kind = SoakEventKind::kRestartConsumer;
  restart.producer = 0;
  restart.at_version = 3;
  restart.consumer = 0;
  spec.events.push_back(restart);
  return spec;
}

TEST(SoakRunner, SameSeedReplaysByteIdenticalArtifacts) {
  auto first = SoakRunner(lockstep_spec(7)).run();
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  auto second = SoakRunner(lockstep_spec(7)).run();
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();

  EXPECT_TRUE(first.value().pass()) << first.value().to_text();
  EXPECT_TRUE(second.value().pass()) << second.value().to_text();
  // The replay contract: schedule and executed event log byte-identical,
  // and under lockstep + no chaos the ledger stage signature too.
  EXPECT_EQ(first.value().fault_schedule, second.value().fault_schedule);
  EXPECT_EQ(first.value().event_log, second.value().event_log);
  EXPECT_EQ(first.value().ledger_signature, second.value().ledger_signature);

  // The executed log covers every scheduled event plus the recovery.
  const std::string& log = first.value().event_log;
  EXPECT_NE(log.find("event crash_producer producer=0 at_version=2"),
            std::string::npos);
  EXPECT_NE(log.find("recovered producer=0 at_version=2"), std::string::npos);
  EXPECT_NE(log.find("event partition producer=1"), std::string::npos);
  EXPECT_NE(log.find("event heal producer=1"), std::string::npos);
  EXPECT_NE(log.find("event restart_consumer producer=0"), std::string::npos);
  // The crashed version closed as interrupted, never served.
  EXPECT_NE(first.value().ledger_signature.find("interrupted"),
            std::string::npos);
  EXPECT_EQ(first.value().producer_restarts, 1u);
  EXPECT_EQ(first.value().consumer_restarts, 1u);
}

TEST(SoakRunner, BroadcastTopologiesConvergeAndReplayIdentically) {
  // Push fan-out rides alongside the pull path as a best-effort fast
  // lane, so a broadcast soak must still converge, keep every serve
  // whole, and honor the replay contract (the push lane writes nothing
  // into the deterministic artifacts).
  for (FanoutMode topology : {FanoutMode::kTree, FanoutMode::kChain}) {
    ScenarioSpec spec = lockstep_spec(7);
    spec.name = "bcast";
    spec.topology = topology;
    auto first = SoakRunner(spec).run();
    ASSERT_TRUE(first.is_ok()) << first.status().to_string();
    EXPECT_TRUE(first.value().pass()) << first.value().to_text();
    for (const ConsumerStats& stats : first.value().consumers) {
      EXPECT_TRUE(stats.converged) << first.value().to_text();
      EXPECT_EQ(stats.torn_serves, 0u);
    }
    auto second = SoakRunner(spec).run();
    ASSERT_TRUE(second.is_ok()) << second.status().to_string();
    EXPECT_EQ(first.value().fault_schedule, second.value().fault_schedule);
    EXPECT_EQ(first.value().event_log, second.value().event_log);
    // And the pull-mode artifacts are unchanged by the new lane.
    auto pull = SoakRunner(lockstep_spec(7)).run();
    ASSERT_TRUE(pull.is_ok());
    EXPECT_EQ(first.value().event_log, pull.value().event_log);
  }
}

TEST(SoakRunner, DifferentSeedsCompileDifferentSchedules) {
  ScenarioSpec a = lockstep_spec(7);
  ScenarioSpec b = lockstep_spec(8);
  a.chaos = true;
  b.chaos = true;
  // chaos_plan perturbs the surface probabilities per-seed, so the
  // schedules differ in their rule lines, not just the seed header.
  EXPECT_NE(render_fault_schedule(a), render_fault_schedule(b));
  EXPECT_NE(compile_fault_plan(a).seed(), compile_fault_plan(b).seed());
}

TEST(SoakRunner, ChaosSmokePassesFleetVerdict) {
  // The acceptance shape: a heterogeneous fleet (mixed apps and sharing
  // strategies), free-running traffic, background chaos, a partition
  // with its heal, a mid-flush crash with recovery, and a consumer
  // restart — ending in a PASS fleet verdict with zero torn serves.
  ScenarioSpec spec;
  spec.name = "chaos-smoke";
  spec.seed = 1234;
  spec.chaos = true;
  spec.width_scale = 1.0 / 64.0;
  spec.producers.resize(2);
  spec.producers[0].app = AppModel::kTc1;
  spec.producers[0].strategy = core::Strategy::kHostAsync;
  spec.producers[0].versions = 6;
  spec.producers[1].app = AppModel::kNt3A;
  spec.producers[1].strategy = core::Strategy::kViperPfs;
  spec.producers[1].versions = 6;
  spec.consumers.resize(4);  // round-robin: 2 per producer
  spec.traffic.think_ms = 0.1;
  spec.slo.max_p99_update_latency_seconds = 10.0;
  spec.slo.max_rpo_seconds = 60.0;
  spec.slo.max_recovery_seconds = 10.0;

  SoakEvent partition;
  partition.kind = SoakEventKind::kPartition;
  partition.producer = 0;
  partition.at_version = 2;
  partition.consumer = 0;
  spec.events.push_back(partition);
  SoakEvent heal;
  heal.kind = SoakEventKind::kHeal;
  heal.producer = 0;
  heal.at_version = 4;
  heal.consumer = 0;
  spec.events.push_back(heal);
  SoakEvent crash;
  crash.kind = SoakEventKind::kCrashProducer;
  crash.producer = 1;
  crash.at_version = 3;
  crash.crash_site = "durability.flush.begin";
  spec.events.push_back(crash);
  SoakEvent restart;
  restart.kind = SoakEventKind::kRestartConsumer;
  restart.producer = 0;
  restart.at_version = 5;
  restart.consumer = 2;
  spec.events.push_back(restart);

  auto result = SoakRunner(spec).run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const SoakResult& soak = result.value();
  EXPECT_TRUE(soak.pass()) << soak.to_text();
  EXPECT_TRUE(soak.converged);
  EXPECT_GE(soak.injections.crashes, 1u);
  EXPECT_EQ(soak.injections.heals, 2u);  // both directions of the pair
  EXPECT_EQ(soak.producer_restarts, 1u);
  EXPECT_EQ(soak.consumer_restarts, 1u);
  ASSERT_EQ(soak.consumers.size(), 4u);
  for (const ConsumerStats& stats : soak.consumers) {
    EXPECT_TRUE(stats.converged) << soak.to_text();
    EXPECT_EQ(stats.torn_serves, 0u);
    EXPECT_GT(stats.requests, 0u);
  }
  const obs::SloCheck* closed = soak.verdict.fleet_check("timelines_closed");
  ASSERT_NE(closed, nullptr);
  EXPECT_TRUE(closed->pass) << closed->detail;
}

}  // namespace
}  // namespace viper::sim
