// Delta-aware fast path, end to end: shard-delta frame codec round trips
// (plan → encode → apply byte-identical to the full encode across the
// churn sweep), structural-change and churn-threshold fallbacks, the real
// engine shipping frames through save → journal → PFS → consumer
// reconstruction (resident base and cold chain replay), retention GC
// pinning live chain bases, and the DeltaStore options validation.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "viper/core/consumer.hpp"
#include "viper/core/handler.hpp"
#include "viper/durability/journal.hpp"
#include "viper/durability/retention.hpp"
#include "viper/memsys/presets.hpp"
#include "viper/repo/delta_store.hpp"
#include "viper/serial/delta.hpp"
#include "viper/serial/format.hpp"
#include "viper/serial/shard_delta.hpp"
#include "viper/sim/scenario.hpp"

namespace viper::serial {
namespace {

/// Many equal tensors so the sharded capture has real record boundaries
/// to split on and "churn" maps cleanly to a fraction of tensors.
Model tensor_grid(int tensors, std::int64_t floats_each, std::uint64_t version,
                  std::uint64_t seed = 5) {
  Rng rng(seed);
  Model m("net");
  m.set_version(version);
  m.set_iteration(static_cast<std::int64_t>(version) * 10);
  for (int i = 0; i < tensors; ++i) {
    EXPECT_TRUE(
        m.add_tensor("layer" + std::to_string(i) + "/w",
                     Tensor::random(DType::kF32, Shape{floats_each}, rng).value())
            .is_ok());
  }
  return m;
}

/// Perturb the first `ceil(fraction * tensors)` tensors — contiguous
/// records, so dirty bytes track the churn fraction shard-for-shard.
Model churn_tensors(const Model& base, double fraction, std::uint64_t version) {
  Model next = base;
  next.set_version(version);
  next.set_iteration(base.iteration() + 10);
  const auto touched = static_cast<std::size_t>(
      fraction * static_cast<double>(base.num_tensors()) + 0.999999);
  std::size_t i = 0;
  for (auto& [name, tensor] : next.mutable_tensors()) {
    if (i++ >= touched) break;
    for (auto& f : tensor.mutable_data<float>()) f += 1.0f;
  }
  return next;
}

struct Captured {
  std::vector<std::byte> blob;
  ShardDigest digest;
};

Captured capture(const Model& model, int max_shards = 8) {
  auto format = make_viper_format();
  Captured out;
  auto buffer = format->serialize_pooled_sharded(model, ThreadPool::global(),
                                                 max_shards, &out.digest);
  EXPECT_TRUE(buffer.is_ok()) << buffer.status().to_string();
  const auto view = buffer.value().span();
  out.blob.assign(view.begin(), view.end());
  return out;
}

TEST(ShardDelta, DigestCoversTheWholeBlob) {
  const Model model = tensor_grid(16, 4096, 1);
  const Captured c = capture(model);
  ASSERT_TRUE(c.digest.valid());
  EXPECT_GT(c.digest.shards.size(), 1u);
  EXPECT_EQ(c.digest.total_bytes, c.blob.size());
  // Shards tile the body contiguously from offset 0 up to the trailer.
  std::size_t cursor = 0;
  for (const auto& shard : c.digest.shards) {
    EXPECT_EQ(shard.offset, cursor);
    EXPECT_GT(shard.bytes, 0u);
    cursor += shard.bytes;
  }
  EXPECT_EQ(cursor + c.digest.trailer_bytes, c.digest.total_bytes);
  // The digest trailer CRC is literally the blob's integrity trailer.
  std::uint32_t trailer = 0;
  std::memcpy(&trailer, c.blob.data() + c.blob.size() - 4, 4);
  EXPECT_EQ(c.digest.trailer_crc, trailer);
}

TEST(ShardDelta, ChurnSweepAppliesByteIdentical) {
  const Model base = tensor_grid(32, 4096, 1);
  const Captured base_cap = capture(base);
  ASSERT_TRUE(base_cap.digest.valid());

  for (const double churn : {0.0, 0.01, 0.10, 0.50, 1.0}) {
    SCOPED_TRACE(churn);
    const Model next = churn_tensors(base, churn, 2);
    const Captured next_cap = capture(next);
    ASSERT_TRUE(next_cap.digest.valid());

    const ShardDeltaPlan plan =
        plan_shard_delta(base_cap.digest, next_cap.digest);
    ASSERT_TRUE(plan.compatible);
    if (churn == 0.0) {
      // The version/iteration fields live in the header shard, so even a
      // zero-weight-churn version dirties at most that one shard.
      EXPECT_LE(plan.dirty.size(), 1u);
    }
    EXPECT_EQ(plan.frame_bytes,
              48 + 13 * next_cap.digest.shards.size() + plan.dirty_bytes + 4);

    auto frame = encode_shard_delta(next_cap.blob, base_cap.digest,
                                    next_cap.digest, plan, 1, 2);
    ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();
    EXPECT_EQ(frame.value().size(), plan.frame_bytes);
    EXPECT_TRUE(is_shard_delta(frame.value().span()));
    EXPECT_TRUE(validate_shard_delta(frame.value().span()).is_ok());

    auto header = shard_delta_header(frame.value().span());
    ASSERT_TRUE(header.is_ok());
    EXPECT_EQ(header.value().version, 2u);
    EXPECT_EQ(header.value().base_version, 1u);
    EXPECT_EQ(header.value().full_bytes, next_cap.blob.size());
    EXPECT_EQ(header.value().dirty_count, plan.dirty.size());

    auto applied = apply_shard_delta(base_cap.blob, frame.value().span());
    ASSERT_TRUE(applied.is_ok()) << applied.status().to_string();
    ASSERT_EQ(applied.value().size(), next_cap.blob.size());
    EXPECT_EQ(std::memcmp(applied.value().span().data(), next_cap.blob.data(),
                          next_cap.blob.size()),
              0)
        << "reconstruction is not byte-identical at churn " << churn;
  }
}

TEST(ShardDelta, LowChurnFrameIsSmall) {
  // 4 MiB over 16 shards: fine enough granularity that 10% tensor churn
  // dirties well under a quarter of the shards.
  const Model base = tensor_grid(64, 16384, 1);
  const Captured base_cap = capture(base, 16);
  const Model next = churn_tensors(base, 0.10, 2);
  const Captured next_cap = capture(next, 16);
  const ShardDeltaPlan plan = plan_shard_delta(base_cap.digest, next_cap.digest);
  ASSERT_TRUE(plan.compatible);
  // The 10%-churn acceptance bound: frame ≤ 25% of the full encode.
  EXPECT_LE(plan.frame_bytes, next_cap.digest.total_bytes / 4)
      << plan.frame_bytes << " vs full " << next_cap.digest.total_bytes;
}

TEST(ShardDelta, AddedAndRemovedTensorsForceFullEncode) {
  const Model base = tensor_grid(32, 4096, 1);
  const Captured base_cap = capture(base);

  // Added tensor: the record partition shifts — incompatible.
  Model grown = churn_tensors(base, 0.0, 2);
  Rng rng(9);
  ASSERT_TRUE(
      grown
          .add_tensor("extra/w", Tensor::random(DType::kF32, Shape{64}, rng).value())
          .is_ok());
  const Captured grown_cap = capture(grown);
  EXPECT_FALSE(plan_shard_delta(base_cap.digest, grown_cap.digest).compatible);

  // Removed tensor: rebuild without the first layer — incompatible.
  Model shrunk("net");
  shrunk.set_version(2);
  bool first = true;
  for (const auto& [name, tensor] : base.tensors()) {
    if (first) {
      first = false;
      continue;
    }
    ASSERT_TRUE(shrunk.add_tensor(name, tensor).is_ok());
  }
  const Captured shrunk_cap = capture(shrunk);
  EXPECT_FALSE(plan_shard_delta(base_cap.digest, shrunk_cap.digest).compatible);

  // And the model-level TensorDelta handles the same shapes gracefully —
  // the structural escape hatch the frame path falls back from.
  auto structural = encode_delta(base, grown);
  ASSERT_TRUE(structural.is_ok());
  auto applied = apply_delta(base, structural.value());
  ASSERT_TRUE(applied.is_ok());
  EXPECT_TRUE(applied.value().same_weights(grown));
}

TEST(ShardDelta, WrongBaseIsRejected) {
  const Model base = tensor_grid(32, 4096, 1);
  const Captured base_cap = capture(base);
  const Model next = churn_tensors(base, 0.10, 2);
  const Captured next_cap = capture(next);
  const ShardDeltaPlan plan = plan_shard_delta(base_cap.digest, next_cap.digest);
  ASSERT_TRUE(plan.compatible);
  auto frame = encode_shard_delta(next_cap.blob, base_cap.digest,
                                  next_cap.digest, plan, 1, 2);
  ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();

  // Patching against a different model's blob must fail the base
  // authentication, not produce a plausible hybrid.
  const Captured stranger = capture(tensor_grid(32, 4096, 1, /*seed=*/77));
  auto applied = apply_shard_delta(stranger.blob, frame.value().span());
  ASSERT_FALSE(applied.is_ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShardDelta, CorruptFrameIsRejected) {
  const Model base = tensor_grid(32, 4096, 1);
  const Captured base_cap = capture(base);
  const Model next = churn_tensors(base, 0.25, 2);
  const Captured next_cap = capture(next);
  const ShardDeltaPlan plan = plan_shard_delta(base_cap.digest, next_cap.digest);
  ASSERT_TRUE(plan.compatible);
  auto encoded = encode_shard_delta(next_cap.blob, base_cap.digest,
                                    next_cap.digest, plan, 1, 2);
  ASSERT_TRUE(encoded.is_ok()) << encoded.status().to_string();
  std::vector<std::byte> frame(encoded.value().span().begin(),
                               encoded.value().span().end());

  // Flip one byte in the middle of the dirty payload region.
  frame[frame.size() / 2] ^= std::byte{0x40};
  EXPECT_FALSE(validate_shard_delta(frame).is_ok());
  EXPECT_FALSE(apply_shard_delta(base_cap.blob, frame).is_ok());

  // Truncation fails the header/geometry checks.
  std::vector<std::byte> truncated(frame.begin(), frame.begin() + 40);
  EXPECT_FALSE(shard_delta_header(truncated).is_ok());
  EXPECT_FALSE(validate_shard_delta(truncated).is_ok());

  // A full checkpoint blob is not mistaken for a frame.
  EXPECT_FALSE(is_shard_delta(next_cap.blob));
}

TEST(ShardDelta, SteadyStateApplyAllocatesNothing) {
  const Model base = tensor_grid(32, 4096, 1);
  const Captured base_cap = capture(base);
  const Model next = churn_tensors(base, 0.10, 2);
  const Captured next_cap = capture(next);
  const ShardDeltaPlan plan = plan_shard_delta(base_cap.digest, next_cap.digest);
  auto frame = encode_shard_delta(next_cap.blob, base_cap.digest,
                                  next_cap.digest, plan, 1, 2);
  ASSERT_TRUE(frame.is_ok());

  // Prime the pool: steady state is "the previous reconstruction's buffer
  // is back in the pool when the next frame arrives".
  for (int i = 0; i < 3; ++i) {
    auto warm = apply_shard_delta(base_cap.blob, frame.value().span());
    ASSERT_TRUE(warm.is_ok());
  }
  SerialMetrics& metrics = serial_metrics();
  const std::uint64_t allocs0 = metrics.allocations.value();
  for (int i = 0; i < 8; ++i) {
    auto applied = apply_shard_delta(base_cap.blob, frame.value().span());
    ASSERT_TRUE(applied.is_ok());
  }
  EXPECT_EQ(metrics.allocations.value(), allocs0)
      << "clean-shard reconstruction must reuse pooled buffers";
}

}  // namespace
}  // namespace viper::serial

namespace viper::core {
namespace {

// 4 MiB over 64 tensors: with 16 shards (256 KiB each) a low-churn save
// dirties one or two shards, comfortably under max_delta_fraction.
Model grid_model(std::uint64_t version, std::uint64_t seed = 5) {
  Rng rng(seed);
  Model m("net");
  m.set_version(version);
  m.set_iteration(static_cast<std::int64_t>(version) * 10);
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(
        m.add_tensor("layer" + std::to_string(i) + "/w",
                     Tensor::random(DType::kF32, Shape{16384}, rng).value())
            .is_ok());
  }
  return m;
}

Model churned(const Model& base, double fraction, std::uint64_t version) {
  Model next = base;
  next.set_version(version);
  next.set_iteration(base.iteration() + 10);
  const auto touched = static_cast<std::size_t>(
      fraction * static_cast<double>(base.num_tensors()) + 0.999999);
  std::size_t i = 0;
  for (auto& [name, tensor] : next.mutable_tensors()) {
    if (i++ >= touched) break;
    for (auto& f : tensor.mutable_data<float>()) f += 1.0f;
  }
  return next;
}

ModelWeightsHandler::Options delta_options() {
  ModelWeightsHandler::Options options;
  options.strategy = Strategy::kGpuAsync;
  options.delta_updates = true;
  options.serialize_shards = 16;
  return options;
}

std::vector<std::byte> committed_blob(SharedServices& services,
                                      std::uint64_t version) {
  std::vector<std::byte> blob;
  auto ticket =
      services.pfs->get(durability::checkpoint_key("net", version), blob);
  EXPECT_TRUE(ticket.is_ok()) << ticket.status().to_string();
  return blob;
}

TEST(DeltaPlane, EngineShipsFramesAndFallsBackOnHeavyChurn) {
  auto services = std::make_shared<SharedServices>();
  ModelWeightsHandler handler(services, delta_options());

  // v1 anchors full; low churn rides the delta path; churn past
  // max_delta_fraction (25%) forces a full re-anchor.
  struct Step {
    double churn;
    bool expect_delta;
  };
  const std::vector<Step> steps{
      {0.01, true}, {0.10, true}, {0.50, false}, {1.0, false}, {0.03, true}};

  std::vector<Model> saved;
  saved.push_back(grid_model(1));
  ASSERT_TRUE(handler.save_weights("net", saved.back()).is_ok());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    saved.push_back(
        churned(saved.back(), steps[i].churn, saved.back().version() + 1));
    ASSERT_TRUE(handler.save_weights("net", saved.back()).is_ok());
  }
  handler.drain();

  const std::vector<std::byte> full_v1 = committed_blob(*services, 1);
  EXPECT_FALSE(serial::is_shard_delta(full_v1));
  std::uint64_t journaled_delta_bytes = 0;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const std::uint64_t version = 2 + i;
    SCOPED_TRACE(version);
    const std::vector<std::byte> blob = committed_blob(*services, version);
    EXPECT_EQ(serial::is_shard_delta(blob), steps[i].expect_delta);
    if (steps[i].expect_delta) journaled_delta_bytes += blob.size();
  }
  // The 10%-churn acceptance bound holds on the real engine: the v3 frame
  // journals ≤ 25% of its full-encode size.
  const std::vector<std::byte> frame_v3 = committed_blob(*services, 3);
  EXPECT_LE(frame_v3.size(), full_v1.size() / 4);
  EXPECT_GT(journaled_delta_bytes, 0u);

  // The journal distinguishes DELTA commits (with their base) from full
  // COMMITs, and the chain re-anchors exactly where the fallback hit.
  auto journal = handler.journal_for("net");
  ASSERT_TRUE(journal.is_ok());
  const durability::ManifestState state = journal.value()->state();
  ASSERT_EQ(state.committed.size(), 1 + steps.size());
  EXPECT_FALSE(state.committed.at(1).is_delta());
  EXPECT_EQ(state.committed.at(2).base_version, 1u);
  EXPECT_EQ(state.committed.at(3).base_version, 2u);
  EXPECT_FALSE(state.committed.at(4).is_delta());  // 50% churn fell back
  EXPECT_FALSE(state.committed.at(5).is_delta());  // 100% churn fell back
  EXPECT_EQ(state.committed.at(6).base_version, 5u);  // re-anchored chain

  // A warm consumer replays the stream in order: the resident base makes
  // every frame reconstruct, and each version matches what was saved.
  auto world = net::CommWorld::create(1);
  ModelLoader loader(services, world->comm(0), {});
  for (std::size_t i = 0; i < saved.size(); ++i) {
    const std::uint64_t version = 1 + i;
    SCOPED_TRACE(version);
    auto shared = std::make_shared<const std::vector<std::byte>>(
        committed_blob(*services, version));
    auto model = loader.decode_blob("net", version, shared, 0);
    ASSERT_TRUE(model.is_ok()) << model.status().to_string();
    EXPECT_TRUE(model.value().same_weights(saved[i]));
    EXPECT_EQ(model.value().version(), version);
  }
}

TEST(DeltaPlane, ColdConsumerChainReplaysFromPfs) {
  auto services = std::make_shared<SharedServices>();
  ModelWeightsHandler handler(services, delta_options());

  Model v1 = grid_model(1);
  ASSERT_TRUE(handler.save_weights("net", v1).is_ok());
  Model v2 = churned(v1, 0.05, 2);
  ASSERT_TRUE(handler.save_weights("net", v2).is_ok());
  Model v3 = churned(v2, 0.05, 3);
  ASSERT_TRUE(handler.save_weights("net", v3).is_ok());
  handler.drain();

  auto frame_v3 = std::make_shared<const std::vector<std::byte>>(
      committed_blob(*services, 3));
  ASSERT_TRUE(serial::is_shard_delta(*frame_v3));

  // A fresh loader has no resident base and no blob cache: decoding the
  // v3 frame must escalate to the PFS chain replay (v3 → v2 → v1 anchor).
  auto& metrics = serial::shard_delta_metrics();
  const std::uint64_t misses0 = metrics.base_misses.value();
  const std::uint64_t replays0 = metrics.chain_replays.value();
  auto world = net::CommWorld::create(1);
  ModelLoader loader(services, world->comm(0), {});
  auto model = loader.decode_blob("net", 3, frame_v3, 0);
  ASSERT_TRUE(model.is_ok()) << model.status().to_string();
  EXPECT_TRUE(model.value().same_weights(v3));
  EXPECT_EQ(metrics.base_misses.value(), misses0 + 1);
  EXPECT_EQ(metrics.chain_replays.value(), replays0 + 1);  // the v2 frame

  // The reconstruction is now the resident base: the next frame decodes
  // without touching the PFS again.
  Model v4 = churned(v3, 0.05, 4);
  ASSERT_TRUE(handler.save_weights("net", v4).is_ok());
  handler.drain();
  auto frame_v4 = std::make_shared<const std::vector<std::byte>>(
      committed_blob(*services, 4));
  ASSERT_TRUE(serial::is_shard_delta(*frame_v4));
  auto model4 = loader.decode_blob("net", 4, frame_v4, 0);
  ASSERT_TRUE(model4.is_ok()) << model4.status().to_string();
  EXPECT_TRUE(model4.value().same_weights(v4));
  EXPECT_EQ(metrics.base_misses.value(), misses0 + 1);  // unchanged
}

TEST(DeltaPlane, ChainLengthCapReanchorsWithFullEncode) {
  auto services = std::make_shared<SharedServices>();
  ModelWeightsHandler::Options options = delta_options();
  options.delta_chain_max = 2;
  ModelWeightsHandler handler(services, options);

  Model model = grid_model(1);
  ASSERT_TRUE(handler.save_weights("net", model).is_ok());
  for (std::uint64_t v = 2; v <= 6; ++v) {
    model = churned(model, 0.03, v);
    ASSERT_TRUE(handler.save_weights("net", model).is_ok());
  }
  handler.drain();

  // v1 full anchor, v2+v3 deltas, v4 re-anchors (chain hit 2), v5+v6
  // deltas again.
  const std::vector<bool> expect_delta{false, true, true, false, true, true};
  for (std::uint64_t v = 1; v <= 6; ++v) {
    SCOPED_TRACE(v);
    EXPECT_EQ(serial::is_shard_delta(committed_blob(*services, v)),
              expect_delta[v - 1]);
  }
}

TEST(DeltaPlane, RetentionNeverRetiresAPinnedBase) {
  auto services = std::make_shared<SharedServices>();
  ModelWeightsHandler handler(services, delta_options());

  Model v1 = grid_model(1);
  ASSERT_TRUE(handler.save_weights("net", v1).is_ok());
  Model v2 = churned(v1, 0.05, 2);
  ASSERT_TRUE(handler.save_weights("net", v2).is_ok());
  Model v3 = churned(v2, 0.05, 3);
  ASSERT_TRUE(handler.save_weights("net", v3).is_ok());
  handler.drain();
  ASSERT_TRUE(serial::is_shard_delta(committed_blob(*services, 3)));

  auto journal = handler.journal_for("net");
  ASSERT_TRUE(journal.is_ok());

  // keep_last=1 wants only v3 — but v3 is a delta on v2, which is a delta
  // on v1: the whole chain must survive, pinned transitively.
  durability::RetentionPolicy policy{.keep_last = 1};
  auto report = durability::apply_retention(*journal.value(), policy);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().retired, 0u);
  EXPECT_EQ(report.value().delta_pinned, 2u);
  for (std::uint64_t v = 1; v <= 3; ++v) {
    EXPECT_TRUE(journal.value()->state().is_committed(v));
    std::vector<std::byte> blob;
    EXPECT_TRUE(
        services->pfs->get(durability::checkpoint_key("net", v), blob).is_ok())
        << "v" << v << " blob was erased from under a live chain";
  }

  // Once a full save re-anchors, the old chain is no longer reachable
  // from the survivor and GC reclaims it.
  Model v4 = churned(v3, 1.0, 4);
  ASSERT_TRUE(handler.save_weights("net", v4).is_ok());
  handler.drain();
  ASSERT_FALSE(serial::is_shard_delta(committed_blob(*services, 4)));
  auto second = durability::apply_retention(*journal.value(), policy);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value().retired, 3u);
  EXPECT_EQ(second.value().delta_pinned, 0u);
  EXPECT_TRUE(journal.value()->state().is_committed(4));
  EXPECT_FALSE(journal.value()->state().is_committed(1));
}

TEST(DeltaPlane, DeltaStoreOptionsAreValidated) {
  auto tier = std::make_shared<memsys::MemoryTier>(memsys::polaris_dram());

  EXPECT_TRUE(repo::DeltaStore::Options{}.validate().is_ok());
  EXPECT_EQ(repo::DeltaStore::Options{.full_every = 0}.validate().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      repo::DeltaStore::Options{.max_delta_fraction = 0.0}.validate().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      repo::DeltaStore::Options{.max_delta_fraction = 1.5}.validate().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      repo::DeltaStore::Options{.max_delta_fraction = -0.25}.validate().code(),
      StatusCode::kInvalidArgument);

  // A misconfigured store reports the mistake on put() instead of
  // silently storing with clamped knobs.
  repo::DeltaStore bad(tier, {.full_every = 0});
  Rng rng(3);
  Model m("net");
  m.set_version(1);
  ASSERT_TRUE(
      m.add_tensor("w", Tensor::random(DType::kF32, Shape{64}, rng).value())
          .is_ok());
  auto put = bad.put(m);
  ASSERT_FALSE(put.is_ok());
  EXPECT_EQ(put.status().code(), StatusCode::kInvalidArgument);

  repo::DeltaStore good(tier, {.full_every = 4});
  EXPECT_TRUE(good.put(m).is_ok());
}

TEST(DeltaPlane, ScenarioDeltaKeyRoundTrips) {
  sim::ScenarioSpec spec;
  spec.producers.push_back({.model = "m0", .delta = true});
  spec.producers.push_back({.model = "m1"});
  spec.consumers.push_back({});
  spec.consumers.push_back({});
  const std::string text = sim::render_scenario(spec);
  EXPECT_NE(text.find("delta=true"), std::string::npos);

  auto parsed = sim::parse_scenario(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed.value().producers.size(), 2u);
  EXPECT_TRUE(parsed.value().producers[0].delta);
  EXPECT_FALSE(parsed.value().producers[1].delta);
  EXPECT_EQ(sim::render_scenario(parsed.value()), text);
}

}  // namespace
}  // namespace viper::core
