// Integration tests of the live transfer engine: producer-side handler
// (capture, tiering, metadata, notify, flush) and consumer-side loader /
// double-buffered consumers, across real threads and the comm fabric.
#include <gtest/gtest.h>

#include <thread>

#include "viper/core/consumer.hpp"
#include "viper/core/handler.hpp"
#include "viper/fault/fault.hpp"
#include "viper/tensor/architectures.hpp"

namespace viper::core {
namespace {

Model small_model(std::uint64_t seed = 5) {
  Rng rng(seed);
  Model m("net");
  EXPECT_TRUE(
      m.add_tensor("w", Tensor::random(DType::kF32, Shape{256}, rng).value()).is_ok());
  EXPECT_TRUE(
      m.add_tensor("b", Tensor::random(DType::kF32, Shape{16}, rng).value()).is_ok());
  return m;
}

struct Rig {
  std::shared_ptr<SharedServices> services = std::make_shared<SharedServices>();
  std::shared_ptr<net::CommWorld> world = net::CommWorld::create(2);
  net::Comm producer_comm = world->comm(0);
  net::Comm consumer_comm = world->comm(1);

  std::shared_ptr<ModelWeightsHandler> handler(Strategy strategy) {
    ModelWeightsHandler::Options options;
    options.strategy = strategy;
    return std::make_shared<ModelWeightsHandler>(services, options);
  }

  ModelLoader loader() {
    ModelLoader::Options options;
    options.producer_rank = 0;
    options.request_timeout = 5.0;
    return ModelLoader(services, consumer_comm, options);
  }
};

class SaveLoadAcrossStrategies : public ::testing::TestWithParam<Strategy> {};

TEST_P(SaveLoadAcrossStrategies, RoundTripsLatestWeights) {
  Rig rig;
  auto handler = rig.handler(GetParam());
  std::thread server([&] { handler->serve_transfers(rig.producer_comm); });

  Model model = small_model();
  model.set_version(3);
  model.set_iteration(42);
  auto receipt = handler->save_weights("net", model, 0.7);
  ASSERT_TRUE(receipt.is_ok()) << receipt.status().to_string();
  handler->drain();

  auto loader = rig.loader();
  auto loaded = loader.load_weights("net");
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_TRUE(loaded.value().same_weights(model));
  EXPECT_EQ(loaded.value().version(), 3u);
  EXPECT_EQ(loaded.value().iteration(), 42);

  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(rig.consumer_comm, 0).is_ok());
  server.join();
}

TEST_P(SaveLoadAcrossStrategies, MetadataRecordsLocationAndLoss) {
  Rig rig;
  auto handler = rig.handler(GetParam());
  ASSERT_TRUE(handler->save_weights("net", small_model(), 0.55).is_ok());
  handler->drain();

  auto metadata = get_metadata(rig.services->metadata_db, "net");
  ASSERT_TRUE(metadata.is_ok());
  EXPECT_EQ(metadata.value().location, strategy_location(GetParam()));
  EXPECT_DOUBLE_EQ(metadata.value().train_loss, 0.55);
  EXPECT_GT(metadata.value().size_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SaveLoadAcrossStrategies,
                         ::testing::ValuesIn(all_strategies()),
                         [](const auto& info) {
                           std::string name{to_string(info.param)};
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Handler, NotificationPublishedPerSave) {
  Rig rig;
  auto handler = rig.handler(Strategy::kHostSync);
  auto sub = rig.services->bus->subscribe(notification_channel("net"));
  Model model = small_model();
  for (std::uint64_t v = 1; v <= 3; ++v) {
    model.set_version(v);
    ASSERT_TRUE(handler->save_weights("net", model).is_ok());
  }
  for (std::uint64_t v = 1; v <= 3; ++v) {
    auto event = sub.next(1.0);
    ASSERT_TRUE(event.is_ok());
    auto update = NotificationModule::parse(event.value());
    ASSERT_TRUE(update.is_ok());
    EXPECT_EQ(update.value().model_name, "net");
    EXPECT_EQ(update.value().version, v);
  }
}

TEST(Handler, MemoryTierKeepsOnlyLatestButPfsKeepsHistory) {
  // Fault tolerance (§4.4): memory buffers the latest; every version is
  // flushed to the PFS in the background.
  Rig rig;
  auto handler = rig.handler(Strategy::kGpuAsync);
  Model model = small_model();
  for (std::uint64_t v = 1; v <= 4; ++v) {
    model.set_version(v);
    model.perturb_weights(*std::make_unique<Rng>(v), 0.01);
    ASSERT_TRUE(handler->save_weights("net", model).is_ok());
  }
  handler->drain();
  EXPECT_EQ(handler->gpu_tier().num_objects(), 1u);  // only the latest
  for (std::uint64_t v = 1; v <= 4; ++v) {
    EXPECT_TRUE(rig.services->pfs->contains("ckpt/net/v" + std::to_string(v)))
        << "missing flushed version " << v;
  }
}

TEST(Handler, FlushCanBeDisabled) {
  Rig rig;
  ModelWeightsHandler::Options options;
  options.strategy = Strategy::kGpuSync;
  options.flush_to_pfs = false;
  ModelWeightsHandler handler(rig.services, options);
  Model model = small_model();
  model.set_version(1);
  ASSERT_TRUE(handler.save_weights("net", model).is_ok());
  handler.drain();
  EXPECT_EQ(rig.services->pfs->num_objects(), 0u);
}

TEST(Handler, AutoAssignsVersionsWhenModelHasNone) {
  Rig rig;
  auto handler = rig.handler(Strategy::kHostSync);
  const Model model = small_model();  // version() == 0
  auto first = handler->save_weights("net", model);
  auto second = handler->save_weights("net", model);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first.value().metadata.version, 1u);
  EXPECT_EQ(second.value().metadata.version, 2u);
}

TEST(Handler, AsyncSaveReturnsBeforeCommitButDrainCompletes) {
  Rig rig;
  auto handler = rig.handler(Strategy::kGpuAsync);
  Model model = small_model();
  model.set_version(1);
  ASSERT_TRUE(handler->save_weights("net", model).is_ok());
  handler->drain();
  EXPECT_EQ(handler->saves_completed(), 1u);
  EXPECT_TRUE(handler->gpu_tier().contains("ckpt/net"));
}

TEST(Handler, StallAccumulatesPerSave) {
  Rig rig;
  auto handler = rig.handler(Strategy::kViperPfs);
  Model model = small_model();
  model.set_nominal_bytes(4'700'000'000ULL);
  model.set_version(1);
  ASSERT_TRUE(handler->save_weights("net", model).is_ok());
  model.set_version(2);
  ASSERT_TRUE(handler->save_weights("net", model).is_ok());
  // Two PFS saves of a nominal 4.7 GB model ≈ 2 × 3.5 s of stall.
  EXPECT_GT(handler->total_stall_seconds(), 5.0);
  EXPECT_LT(handler->total_stall_seconds(), 9.0);
}

TEST(Loader, MissingModelIsNotFound) {
  Rig rig;
  auto loader = rig.loader();
  EXPECT_EQ(loader.load_weights("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(loader.peek("ghost").status().code(), StatusCode::kNotFound);
}

TEST(Loader, FallsBackToFlushedPfsCopyWhenCacheEvicted) {
  // Metadata points at producer memory but the producer evicted it; the
  // loader must recover from the background PFS flush of that version.
  Rig rig;
  auto handler = rig.handler(Strategy::kGpuSync);
  std::thread server([&] { handler->serve_transfers(rig.producer_comm); });
  Model model = small_model();
  model.set_version(1);
  ASSERT_TRUE(handler->save_weights("net", model).is_ok());
  handler->drain();  // let the fault-tolerance flush land
  ASSERT_TRUE(handler->gpu_tier().erase("ckpt/net").is_ok());

  auto loader = rig.loader();
  auto loaded = loader.load_weights("net");
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_TRUE(loaded.value().same_weights(model));

  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(rig.consumer_comm, 0).is_ok());
  server.join();
}

TEST(Loader, StaleCacheWithoutFlushIsNotFound) {
  Rig rig;
  ModelWeightsHandler::Options options;
  options.strategy = Strategy::kGpuSync;
  options.flush_to_pfs = false;  // no safety net this time
  auto handler = std::make_shared<ModelWeightsHandler>(rig.services, options);
  std::thread server([&] { handler->serve_transfers(rig.producer_comm); });
  Model model = small_model();
  model.set_version(1);
  ASSERT_TRUE(handler->save_weights("net", model).is_ok());
  ASSERT_TRUE(handler->gpu_tier().erase("ckpt/net").is_ok());

  auto loader = rig.loader();
  EXPECT_EQ(loader.load_weights("net").status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(rig.consumer_comm, 0).is_ok());
  server.join();
}

TEST(DoubleBuffer, ActiveStartsNull) {
  DoubleBuffer buffer;
  EXPECT_EQ(buffer.active(), nullptr);
  EXPECT_EQ(buffer.swap_count(), 0u);
}

TEST(DoubleBuffer, InstallSwapsAtomically) {
  DoubleBuffer buffer;
  Model m1 = small_model(1);
  m1.set_version(1);
  buffer.install(std::move(m1));
  auto active = buffer.active();
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->version(), 1u);

  Model m2 = small_model(2);
  m2.set_version(2);
  buffer.install(std::move(m2));
  EXPECT_EQ(buffer.active()->version(), 2u);
  // The old snapshot stays valid for readers that captured it.
  EXPECT_EQ(active->version(), 1u);
  EXPECT_EQ(buffer.swap_count(), 2u);
}

TEST(DoubleBuffer, ReadersNeverSeeTornModelsUnderConcurrentInstalls) {
  DoubleBuffer buffer;
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread reader([&] {
    while (!stop.load()) {
      auto model = buffer.active();
      if (model) {
        // Version and iteration are stamped together before install; a
        // torn model would break this invariant.
        if (model->iteration() != static_cast<std::int64_t>(model->version())) {
          ++violations;
        }
      }
    }
  });
  for (std::uint64_t v = 1; v <= 200; ++v) {
    Model m = small_model(v % 7);
    m.set_version(v);
    m.set_iteration(static_cast<std::int64_t>(v));
    buffer.install(std::move(m));
  }
  stop = true;
  reader.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(buffer.swap_count(), 200u);
}

TEST(InferenceConsumer, AppliesPushedUpdates) {
  Rig rig;
  auto handler = rig.handler(Strategy::kHostSync);
  std::thread server([&] { handler->serve_transfers(rig.producer_comm); });

  std::atomic<int> hooks{0};
  InferenceConsumer::Options options;
  options.loader.producer_rank = 0;
  options.on_update = [&hooks](const ModelMetadata&) { ++hooks; };
  InferenceConsumer consumer(rig.services, rig.consumer_comm, "net", options);
  consumer.start();

  Model model = small_model();
  for (std::uint64_t v = 1; v <= 3; ++v) {
    model.set_version(v);
    ASSERT_TRUE(handler->save_weights("net", model).is_ok());
    // Give the consumer time to react (single-core box).
    for (int spin = 0; spin < 200 && consumer.active_version() < v; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_EQ(consumer.active_version(), 3u);
  EXPECT_GE(consumer.updates_applied(), 1u);  // bursts may coalesce
  EXPECT_GE(hooks.load(), 1);
  ASSERT_NE(consumer.active_model(), nullptr);
  EXPECT_TRUE(consumer.active_model()->same_weights(model));

  consumer.stop();
  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(rig.consumer_comm, 0).is_ok());
  server.join();
}

TEST(InferenceConsumer, ResyncOfResidentVersionSkipsTheRefetch) {
  // Regression: the metadata-resync and duplicate-notification paths used
  // to re-fetch and re-decode the full blob even when the resident
  // version already matched the newest committed metadata. Now they
  // early-out on the cheap peek. Exercised in inline mode so the fix is
  // proven independent of the prefetch worker.
  Rig rig;
  auto handler = rig.handler(Strategy::kHostSync);
  std::thread server([&] { handler->serve_transfers(rig.producer_comm); });

  InferenceConsumer::Options options;
  options.loader.producer_rank = 0;
  options.prefetch = false;
  InferenceConsumer consumer(rig.services, rig.consumer_comm, "net", options);
  consumer.start();

  Model model = small_model();
  model.set_version(1);
  ASSERT_TRUE(handler->save_weights("net", model).is_ok());
  for (int spin = 0; spin < 300 && consumer.active_version() < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(consumer.active_version(), 1u);
  const std::uint64_t applied = consumer.updates_applied();

  NotificationModule notifier(rig.services->bus);
  EXPECT_GE(notifier.publish_update("net", 1), 1u);
  for (int spin = 0; spin < 300 && consumer.loads_skipped() < 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(consumer.loads_skipped(), 1u);
  EXPECT_EQ(consumer.updates_applied(), applied);  // nothing re-installed
  EXPECT_EQ(consumer.active_version(), 1u);

  consumer.stop();
  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(rig.consumer_comm, 0).is_ok());
  server.join();
}

TEST(InferenceConsumer, StopAndRestartRebuildsThePrefetchWorker) {
  // Regression for the restartable consumer: stop() must drain an
  // in-flight prefetched apply exactly once (no double-install, no loss),
  // and a second start() must rebuild the prefetch worker so later
  // updates still ride the background path.
  Rig rig;
  auto handler = rig.handler(Strategy::kHostSync);
  std::thread server([&] { handler->serve_transfers(rig.producer_comm); });

  InferenceConsumer::Options options;
  options.loader.producer_rank = 0;
  InferenceConsumer consumer(rig.services, rig.consumer_comm, "net", options);
  consumer.start();

  // Delay the fetch so v1's apply is still in flight inside the prefetch
  // worker when stop() runs — stop must wait for it, not drop it.
  {
    fault::ScopedPlan chaos{fault::FaultPlan(7).add(
        fault::FaultRule::delay("net.send", 0.15))};
    Model model = small_model();
    model.set_version(1);
    ASSERT_TRUE(handler->save_weights("net", model).is_ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    consumer.stop();  // drains the delayed prefetch before returning
  }
  EXPECT_EQ(consumer.active_version(), 1u);
  EXPECT_EQ(consumer.updates_applied(), 1u);  // exactly once, not torn
  const std::uint64_t prefetches = consumer.prefetches_started();
  EXPECT_GE(prefetches, 1u);

  consumer.start();  // rebuilt prefetch worker
  Model model = small_model();
  model.set_version(2);
  ASSERT_TRUE(handler->save_weights("net", model).is_ok());
  for (int spin = 0; spin < 300 && consumer.active_version() < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(consumer.active_version(), 2u);
  EXPECT_EQ(consumer.updates_applied(), 2u);
  EXPECT_GT(consumer.prefetches_started(), prefetches);  // background path live

  consumer.stop();
  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(rig.consumer_comm, 0).is_ok());
  server.join();
}

TEST(PollingConsumer, DiscoversUpdatesByPolling) {
  Rig rig;
  auto handler = rig.handler(Strategy::kViperPfs);  // PFS: no comm needed
  PollingConsumer::Options options;
  options.poll_interval = 0.002;
  PollingConsumer consumer(rig.services, rig.consumer_comm, "net", options);
  consumer.start();

  Model model = small_model();
  model.set_version(1);
  ASSERT_TRUE(handler->save_weights("net", model).is_ok());
  // Wait for the update AND a second poll: under a loaded runner the very
  // first poll can land after the save, and stopping right then would
  // leave polls_issued() == 1.
  for (int spin = 0;
       spin < 300 && (consumer.updates_applied() == 0 || consumer.polls_issued() <= 1);
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  consumer.stop();
  EXPECT_EQ(consumer.updates_applied(), 1u);
  EXPECT_GT(consumer.polls_issued(), 1u);  // polling cost the baseline pays
  ASSERT_NE(consumer.active_model(), nullptr);
  EXPECT_TRUE(consumer.active_model()->same_weights(model));
}

}  // namespace
}  // namespace viper::core
