// Tests for non-stationary training (continual learning, §2): shifted
// trajectories and how the schedules handle them — the planned schedules
// go stale after a shift while the runtime adapter re-tightens.
#include <gtest/gtest.h>

#include "viper/core/coupled_sim.hpp"
#include "viper/sim/nonstationary.hpp"

namespace viper::core {
namespace {

sim::AppProfile tc1() { return sim::app_profile(AppModel::kTc1); }

TEST(Nonstationary, LossJumpsAtShiftAndReconverges) {
  sim::NonstationaryTrajectory trajectory(
      tc1(), {{.at_iteration = 2000, .amplitude = 2.0}});
  const double before = trajectory.true_loss(1999);
  const double at = trajectory.true_loss(2000);
  EXPECT_GT(at, before + 1.0);  // the jump
  EXPECT_DOUBLE_EQ(at, 2.0 + tc1().curve.c);
  // Re-converges toward the same asymptote.
  EXPECT_LT(trajectory.true_loss(6000), at * 0.4);
}

TEST(Nonstationary, NoShiftsMatchesStationaryCurve) {
  sim::NonstationaryTrajectory shifted(tc1(), {});
  sim::TrajectoryGenerator plain(tc1());
  for (std::int64_t x : {0, 100, 1000, 4000}) {
    EXPECT_DOUBLE_EQ(shifted.true_loss(x), plain.true_loss(x));
  }
}

TEST(Nonstationary, ShiftsAreSortedAndStack) {
  sim::NonstationaryTrajectory trajectory(
      tc1(), {{.at_iteration = 3000, .amplitude = 1.0, .new_decay_rate = 0.01},
              {.at_iteration = 1000, .amplitude = 2.0}});
  // Unsorted input must still resolve the segment correctly.
  EXPECT_DOUBLE_EQ(trajectory.true_loss(1000), 2.0 + tc1().curve.c);
  EXPECT_DOUBLE_EQ(trajectory.true_loss(3000), 1.0 + tc1().curve.c);
  // The second segment decays with its own (faster) rate.
  const double after = trajectory.true_loss(3300);
  EXPECT_NEAR(after, 1.0 * std::exp(-0.01 * 300) + tc1().curve.c, 1e-9);
}

TEST(Nonstationary, ObservedLossIsDeterministic) {
  sim::NonstationaryTrajectory a(tc1(), {{.at_iteration = 10, .amplitude = 1.0}}, 5);
  sim::NonstationaryTrajectory b(tc1(), {{.at_iteration = 10, .amplitude = 1.0}}, 5);
  for (std::int64_t x = 0; x < 50; ++x) {
    EXPECT_DOUBLE_EQ(a.observed_loss(x), b.observed_loss(x));
  }
}

// ---- Coupled runs under distribution shift ----------------------------------

CoupledRunConfig shifted_config() {
  CoupledRunConfig config;
  config.profile = tc1();
  config.strategy = Strategy::kGpuAsync;
  // One mid-window shift: the model must relearn from loss ≈ 1.8.
  config.shifts = {{.at_iteration = 2500, .amplitude = 1.8}};
  return config;
}

TEST(ShiftedRun, ShiftRaisesCilForEveryPlannedSchedule) {
  for (ScheduleKind kind : {ScheduleKind::kEpochBaseline,
                            ScheduleKind::kFixedInterval, ScheduleKind::kGreedy}) {
    CoupledRunConfig with_shift = shifted_config();
    with_shift.schedule_kind = kind;
    CoupledRunConfig without = with_shift;
    without.shifts.clear();
    const double shifted_cil = run_coupled_experiment(with_shift).value().cil;
    const double plain_cil = run_coupled_experiment(without).value().cil;
    EXPECT_GT(shifted_cil, plain_cil) << to_string(kind);
  }
}

TEST(ShiftedRun, GreedyStopsUpdatingAfterShift) {
  // The planned greedy schedule was computed from the pre-shift curve:
  // its late checkpoints are sparse or absent, so after the shift the
  // consumer is left serving a stale (now-bad) model. Measure how many
  // of its checkpoints land after the shift vs the adaptive run's.
  CoupledRunConfig greedy = shifted_config();
  greedy.schedule_kind = ScheduleKind::kGreedy;
  const auto greedy_result = run_coupled_experiment(greedy).value();

  CoupledRunConfig adaptive = shifted_config();
  adaptive.frequency_adapter = FrequencyAdapter::Options{
      .initial_interval = 216,
      .min_interval = 8,
      .max_interval = 2000,
      .target_overhead_fraction = 0.02,
      .improvement_threshold = 0.01,
      .step = 1.5,
  };
  const auto adaptive_result = run_coupled_experiment(adaptive).value();

  auto after_shift = [](const CoupledRunResult& result) {
    std::int64_t count = 0;
    for (const auto& update : result.updates) {
      if (update.capture_iteration >= 2500) ++count;
    }
    return count;
  };
  EXPECT_GT(after_shift(adaptive_result), after_shift(greedy_result));
  // And that freshness shows up as a lower cumulative loss.
  EXPECT_LT(adaptive_result.cil, greedy_result.cil);
}

TEST(ShiftedRun, AdapterTightensAfterShift) {
  CoupledRunConfig adaptive = shifted_config();
  adaptive.frequency_adapter = FrequencyAdapter::Options{
      .initial_interval = 216,
      .min_interval = 8,
      .max_interval = 2000,
      .target_overhead_fraction = 0.02,
      .improvement_threshold = 0.01,
      .step = 1.5,
  };
  const auto result = run_coupled_experiment(adaptive).value();
  // The post-shift fast-progress phase must trigger tightenings.
  EXPECT_GT(result.adapter_downs, 0);
}

}  // namespace
}  // namespace viper::core
