// Tests for the observability layer: histogram bucket/percentile math,
// lock-free recording under concurrency, tracer span nesting against a
// VirtualClock, and well-formedness of the JSON exports.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <string_view>
#include <thread>
#include <vector>

#include "viper/common/clock.hpp"
#include "viper/obs/metrics.hpp"
#include "viper/obs/trace.hpp"

namespace viper::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator, enough to reject any broken
// escaping/nesting/commas in the exporters' output.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (take('}')) return true;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"' || !string()) return false;
      skip_ws();
      if (!take(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (take('}')) return true;
      if (!take(',')) return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (take(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (take(']')) return true;
      if (!take(',')) return false;
    }
  }

  bool string() {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    take('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool take(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Histogram math

TEST(Histogram, BucketIndexAndBounds) {
  // Bucket i covers (2^(i-1), 2^i] ns; bucket 0 is <= 1 ns.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(1e-9), 0);    // 1 ns
  EXPECT_EQ(Histogram::bucket_index(2e-9), 1);    // 2 ns
  EXPECT_EQ(Histogram::bucket_index(3e-9), 2);    // 3 ns -> (2, 4]
  EXPECT_EQ(Histogram::bucket_index(4e-9), 2);    // 4 ns -> (2, 4]
  EXPECT_EQ(Histogram::bucket_index(5e-9), 3);    // 5 ns -> (4, 8]
  EXPECT_EQ(Histogram::bucket_index(1.024e-6), 10);
  EXPECT_EQ(Histogram::bucket_index(1e9), 60);  // 1e18 ns -> (2^59, 2^60]
  // Beyond 2^63 ns clamps into the last bucket.
  EXPECT_EQ(Histogram::bucket_index(1e12), Histogram::kNumBuckets - 1);

  EXPECT_DOUBLE_EQ(Histogram::bucket_upper_bound(0), 1e-9);
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper_bound(10), 1.024e-6);
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper_bound(30), 1024 * 1024 * 1024 * 1e-9);
}

TEST(Histogram, SingleValueIsExactAtEveryQuantile) {
  Histogram hist;
  for (int i = 0; i < 100; ++i) hist.record(1e-6);  // 1000 ns, bucket bound 1024
  EXPECT_EQ(hist.count(), 100u);
  // The bucket bound is 1.024 us but the observed max clamps it to 1 us.
  EXPECT_DOUBLE_EQ(hist.percentile(0.50), 1e-6);
  EXPECT_DOUBLE_EQ(hist.percentile(0.95), 1e-6);
  EXPECT_DOUBLE_EQ(hist.percentile(0.99), 1e-6);
  EXPECT_DOUBLE_EQ(hist.max(), 1e-6);
  EXPECT_DOUBLE_EQ(hist.mean(), 1e-6);
  EXPECT_DOUBLE_EQ(hist.sum(), 100e-6);
}

TEST(Histogram, PercentilesOnKnownMixture) {
  Histogram hist;
  // 90 fast samples at 1 us, 9 at ~1 ms, 1 at 1 s: nearest-rank quantiles.
  for (int i = 0; i < 90; ++i) hist.record(1e-6);
  for (int i = 0; i < 9; ++i) hist.record(1e-3);
  hist.record(1.0);
  ASSERT_EQ(hist.count(), 100u);

  // p50 (rank 50) lands among the 1 us samples: bucket bound 1.024 us.
  EXPECT_DOUBLE_EQ(hist.percentile(0.50), Histogram::bucket_upper_bound(10));
  // p95 (rank 95) lands among the 1 ms samples: 1e6 ns -> bucket 20.
  EXPECT_DOUBLE_EQ(hist.percentile(0.95), Histogram::bucket_upper_bound(20));
  // p99 still inside the 1 ms group; p100/max is the 1 s outlier, exactly.
  EXPECT_DOUBLE_EQ(hist.percentile(0.99), Histogram::bucket_upper_bound(20));
  EXPECT_DOUBLE_EQ(hist.percentile(1.0), 1.0);
  EXPECT_DOUBLE_EQ(hist.max(), 1.0);
}

TEST(Histogram, EmptyHistogramReportsZeros) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
  EXPECT_DOUBLE_EQ(hist.max(), 0.0);
}

TEST(Histogram, ConcurrentRecordsAreAllCounted) {
  Histogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record(1e-6 * static_cast<double>(t + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(hist.max(), 4e-6);
}

// ---------------------------------------------------------------------------
// Counters, gauges, registry

TEST(Counter, ConcurrentIncrementsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Gauge, SetAddReset) {
  Gauge gauge;
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(0.5);
  gauge.add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(MetricsRegistry, SameNameReturnsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.counter("viper.test.counter");
  Counter& b = registry.counter("viper.test.counter");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.histogram("viper.test.hist");
  Histogram& h2 = registry.histogram("viper.test.hist");
  EXPECT_EQ(&h1, &h2);
  // Kinds are separate namespaces; same name is fine across them.
  Gauge& gauge = registry.gauge("viper.test.counter");
  gauge.set(1.0);
  EXPECT_EQ(a.value(), 0u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("b.count").add(2);
  registry.counter("a.count").add(1);
  registry.gauge("depth").set(3.5);
  registry.histogram("lat").record(2e-6);

  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.count");
  EXPECT_EQ(snapshot.counters[0].value, 1u);
  EXPECT_EQ(snapshot.counters[1].name, "b.count");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].value, 3.5);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
  EXPECT_DOUBLE_EQ(snapshot.histograms[0].max, 2e-6);
}

TEST(MetricsRegistry, SnapshotJsonIsWellFormed) {
  MetricsRegistry registry;
  registry.counter("viper.test.saves").add(3);
  registry.gauge("viper.test.depth").set(1.25);
  registry.histogram("viper.test.\"quoted\\name\"").record(1e-3);
  const std::string json = registry.snapshot().to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("viper.test.saves"), std::string::npos);
}

TEST(MetricsRegistry, ResetZeroesButKeepsInstances) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("c");
  counter.add(5);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(&registry.counter("c"), &counter);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(Tracer, SpanNestingAgainstVirtualClock) {
  VirtualClock clock(100.0);
  Tracer tracer;
  tracer.set_clock(&clock);
  tracer.set_enabled(true);

  {
    auto outer = tracer.span("commit", "producer");
    clock.advance(0.5);
    {
      auto inner = tracer.span("stage", "producer");
      clock.advance(0.25);
    }
    clock.advance(0.25);
  }

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded when they close, so "stage" lands first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "stage");
  EXPECT_EQ(outer.name, "commit");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_DOUBLE_EQ(outer.start_seconds, 100.0);
  EXPECT_DOUBLE_EQ(outer.duration_seconds, 1.0);
  EXPECT_DOUBLE_EQ(inner.start_seconds, 100.5);
  EXPECT_DOUBLE_EQ(inner.duration_seconds, 0.25);
  // Containment: the inner span sits inside the outer one.
  EXPECT_GE(inner.start_seconds, outer.start_seconds);
  EXPECT_LE(inner.start_seconds + inner.duration_seconds,
            outer.start_seconds + outer.duration_seconds);
}

TEST(Tracer, ExplicitEndIsIdempotentAndMoveSafe) {
  VirtualClock clock;
  Tracer tracer;
  tracer.set_clock(&clock);
  tracer.set_enabled(true);

  auto span = tracer.span("transfer", "net");
  clock.advance(1.0);
  auto moved = std::move(span);
  span.end();  // moved-from: must be a no-op
  moved.end();
  moved.end();  // idempotent
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_DOUBLE_EQ(tracer.events()[0].duration_seconds, 1.0);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  {
    auto span = tracer.span("capture", "producer");
    tracer.instant("notify", "producer");
  }
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, InstantEventsAndClear) {
  VirtualClock clock(5.0);
  Tracer tracer;
  tracer.set_clock(&clock);
  tracer.set_enabled(true);
  tracer.instant("notify", "producer");
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_TRUE(tracer.events()[0].instant);
  EXPECT_DOUBLE_EQ(tracer.events()[0].start_seconds, 5.0);
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, ChromeTraceJsonIsWellFormed) {
  VirtualClock clock;
  Tracer tracer;
  tracer.set_clock(&clock);
  tracer.set_enabled(true);
  {
    auto span = tracer.span("serialize \"fast\" path\\", "producer");
    clock.advance(0.001);
  }
  tracer.instant("notify", "producer");
  const std::string json = tracer.to_chrome_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\""), std::string::npos);

  const std::string summary = tracer.summary();
  EXPECT_NE(summary.find("notify"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Overhead: recording on resolved handles must stay cheap (low tens of ns
// uncontended; the assert bound is loose so sanitizer builds pass too).

TEST(Overhead, RecordCostOnResolvedHandles) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("bench.count");
  Histogram& hist = registry.histogram("bench.lat");

  constexpr int kOps = 1'000'000;
  Stopwatch counter_watch;
  for (int i = 0; i < kOps; ++i) counter.add();
  const double counter_ns = counter_watch.elapsed() * 1e9 / kOps;

  Stopwatch hist_watch;
  for (int i = 0; i < kOps; ++i) hist.record(1.5e-6);
  const double hist_ns = hist_watch.elapsed() * 1e9 / kOps;

  std::printf("counter.add(): %.1f ns/op, histogram.record(): %.1f ns/op\n",
              counter_ns, hist_ns);
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kOps));
  EXPECT_LT(counter_ns, 2000.0);
  EXPECT_LT(hist_ns, 2000.0);
}

}  // namespace
}  // namespace viper::obs
