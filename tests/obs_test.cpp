// Tests for the observability layer: histogram bucket/percentile math,
// lock-free recording under concurrency, tracer span nesting against a
// VirtualClock, and well-formedness of the JSON exports.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <string_view>
#include <thread>
#include <vector>

#include "viper/common/clock.hpp"
#include "viper/obs/context.hpp"
#include "viper/obs/ledger.hpp"
#include "viper/obs/metrics.hpp"
#include "viper/obs/slo.hpp"
#include "viper/obs/trace.hpp"
#include "viper/obs/window.hpp"

namespace viper::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator, enough to reject any broken
// escaping/nesting/commas in the exporters' output.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (take('}')) return true;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"' || !string()) return false;
      skip_ws();
      if (!take(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (take('}')) return true;
      if (!take(',')) return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (take(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (take(']')) return true;
      if (!take(',')) return false;
    }
  }

  bool string() {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    take('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool take(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Histogram math

TEST(Histogram, BucketIndexAndBounds) {
  // Bucket i covers (2^(i-1), 2^i] ns; bucket 0 is <= 1 ns.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(1e-9), 0);    // 1 ns
  EXPECT_EQ(Histogram::bucket_index(2e-9), 1);    // 2 ns
  EXPECT_EQ(Histogram::bucket_index(3e-9), 2);    // 3 ns -> (2, 4]
  EXPECT_EQ(Histogram::bucket_index(4e-9), 2);    // 4 ns -> (2, 4]
  EXPECT_EQ(Histogram::bucket_index(5e-9), 3);    // 5 ns -> (4, 8]
  EXPECT_EQ(Histogram::bucket_index(1.024e-6), 10);
  EXPECT_EQ(Histogram::bucket_index(1e9), 60);  // 1e18 ns -> (2^59, 2^60]
  // Beyond 2^63 ns clamps into the last bucket.
  EXPECT_EQ(Histogram::bucket_index(1e12), Histogram::kNumBuckets - 1);

  EXPECT_DOUBLE_EQ(Histogram::bucket_upper_bound(0), 1e-9);
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper_bound(10), 1.024e-6);
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper_bound(30), 1024 * 1024 * 1024 * 1e-9);
}

TEST(Histogram, SingleValueIsExactAtEveryQuantile) {
  Histogram hist;
  for (int i = 0; i < 100; ++i) hist.record(1e-6);  // 1000 ns, bucket bound 1024
  EXPECT_EQ(hist.count(), 100u);
  // The bucket bound is 1.024 us but the observed max clamps it to 1 us.
  EXPECT_DOUBLE_EQ(hist.percentile(0.50), 1e-6);
  EXPECT_DOUBLE_EQ(hist.percentile(0.95), 1e-6);
  EXPECT_DOUBLE_EQ(hist.percentile(0.99), 1e-6);
  EXPECT_DOUBLE_EQ(hist.max(), 1e-6);
  EXPECT_DOUBLE_EQ(hist.mean(), 1e-6);
  EXPECT_DOUBLE_EQ(hist.sum(), 100e-6);
}

TEST(Histogram, PercentilesOnKnownMixture) {
  Histogram hist;
  // 90 fast samples at 1 us, 9 at ~1 ms, 1 at 1 s: nearest-rank quantiles.
  for (int i = 0; i < 90; ++i) hist.record(1e-6);
  for (int i = 0; i < 9; ++i) hist.record(1e-3);
  hist.record(1.0);
  ASSERT_EQ(hist.count(), 100u);

  // p50 (rank 50) lands among the 1 us samples: bucket bound 1.024 us.
  EXPECT_DOUBLE_EQ(hist.percentile(0.50), Histogram::bucket_upper_bound(10));
  // p95 (rank 95) lands among the 1 ms samples: 1e6 ns -> bucket 20.
  EXPECT_DOUBLE_EQ(hist.percentile(0.95), Histogram::bucket_upper_bound(20));
  // p99 still inside the 1 ms group; p100/max is the 1 s outlier, exactly.
  EXPECT_DOUBLE_EQ(hist.percentile(0.99), Histogram::bucket_upper_bound(20));
  EXPECT_DOUBLE_EQ(hist.percentile(1.0), 1.0);
  EXPECT_DOUBLE_EQ(hist.max(), 1.0);
}

TEST(Histogram, EmptyHistogramReportsZeros) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
  EXPECT_DOUBLE_EQ(hist.max(), 0.0);
}

TEST(Histogram, ConcurrentRecordsAreAllCounted) {
  Histogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record(1e-6 * static_cast<double>(t + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(hist.max(), 4e-6);
}

// ---------------------------------------------------------------------------
// Counters, gauges, registry

TEST(Counter, ConcurrentIncrementsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Gauge, SetAddReset) {
  Gauge gauge;
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(0.5);
  gauge.add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(MetricsRegistry, SameNameReturnsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.counter("viper.test.counter");
  Counter& b = registry.counter("viper.test.counter");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.histogram("viper.test.hist");
  Histogram& h2 = registry.histogram("viper.test.hist");
  EXPECT_EQ(&h1, &h2);
  // Kinds are separate namespaces; same name is fine across them.
  Gauge& gauge = registry.gauge("viper.test.counter");
  gauge.set(1.0);
  EXPECT_EQ(a.value(), 0u);
}

TEST(MetricsRegistry, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("b.count").add(2);
  registry.counter("a.count").add(1);
  registry.gauge("depth").set(3.5);
  registry.histogram("lat").record(2e-6);

  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.count");
  EXPECT_EQ(snapshot.counters[0].value, 1u);
  EXPECT_EQ(snapshot.counters[1].name, "b.count");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].value, 3.5);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
  EXPECT_DOUBLE_EQ(snapshot.histograms[0].max, 2e-6);
}

TEST(MetricsRegistry, SnapshotJsonIsWellFormed) {
  MetricsRegistry registry;
  registry.counter("viper.test.saves").add(3);
  registry.gauge("viper.test.depth").set(1.25);
  registry.histogram("viper.test.\"quoted\\name\"").record(1e-3);
  const std::string json = registry.snapshot().to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("viper.test.saves"), std::string::npos);
}

TEST(MetricsRegistry, ResetZeroesButKeepsInstances) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("c");
  counter.add(5);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(&registry.counter("c"), &counter);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(Tracer, SpanNestingAgainstVirtualClock) {
  VirtualClock clock(100.0);
  Tracer tracer;
  tracer.set_clock(&clock);
  tracer.set_enabled(true);

  {
    auto outer = tracer.span("commit", "producer");
    clock.advance(0.5);
    {
      auto inner = tracer.span("stage", "producer");
      clock.advance(0.25);
    }
    clock.advance(0.25);
  }

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded when they close, so "stage" lands first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "stage");
  EXPECT_EQ(outer.name, "commit");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_DOUBLE_EQ(outer.start_seconds, 100.0);
  EXPECT_DOUBLE_EQ(outer.duration_seconds, 1.0);
  EXPECT_DOUBLE_EQ(inner.start_seconds, 100.5);
  EXPECT_DOUBLE_EQ(inner.duration_seconds, 0.25);
  // Containment: the inner span sits inside the outer one.
  EXPECT_GE(inner.start_seconds, outer.start_seconds);
  EXPECT_LE(inner.start_seconds + inner.duration_seconds,
            outer.start_seconds + outer.duration_seconds);
}

TEST(Tracer, ExplicitEndIsIdempotentAndMoveSafe) {
  VirtualClock clock;
  Tracer tracer;
  tracer.set_clock(&clock);
  tracer.set_enabled(true);

  auto span = tracer.span("transfer", "net");
  clock.advance(1.0);
  auto moved = std::move(span);
  span.end();  // moved-from: must be a no-op
  moved.end();
  moved.end();  // idempotent
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_DOUBLE_EQ(tracer.events()[0].duration_seconds, 1.0);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  {
    auto span = tracer.span("capture", "producer");
    tracer.instant("notify", "producer");
  }
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, InstantEventsAndClear) {
  VirtualClock clock(5.0);
  Tracer tracer;
  tracer.set_clock(&clock);
  tracer.set_enabled(true);
  tracer.instant("notify", "producer");
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_TRUE(tracer.events()[0].instant);
  EXPECT_DOUBLE_EQ(tracer.events()[0].start_seconds, 5.0);
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, ChromeTraceJsonIsWellFormed) {
  VirtualClock clock;
  Tracer tracer;
  tracer.set_clock(&clock);
  tracer.set_enabled(true);
  {
    auto span = tracer.span("serialize \"fast\" path\\", "producer");
    clock.advance(0.001);
  }
  tracer.instant("notify", "producer");
  const std::string json = tracer.to_chrome_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\""), std::string::npos);

  const std::string summary = tracer.summary();
  EXPECT_NE(summary.find("notify"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TraceContext: wire codec, stable trace ids, thread-local propagation.

std::size_t count_in(std::string_view haystack, std::string_view needle) {
  std::size_t count = 0;
  for (auto pos = haystack.find(needle); pos != std::string_view::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(TraceContext, WireCodecRoundTripsAndShortInputDecodesInvalid) {
  TraceContext context;
  context.trace_id = TraceContext::trace_id_for("net", 7);
  context.parent_span_id = 41;
  context.origin_rank = 3;

  std::array<std::byte, TraceContext::kWireBytes> wire{};
  context.encode(wire);
  EXPECT_EQ(TraceContext::decode(wire), context);

  // Short input means "peer sent no context", never an error.
  EXPECT_FALSE(TraceContext::decode({wire.data(), 8}).valid());
  EXPECT_FALSE(TraceContext::decode({}).valid());
}

TEST(TraceContext, TraceIdIsStablePerVersionAndNeverZero) {
  const std::uint64_t id = TraceContext::trace_id_for("net", 1);
  EXPECT_EQ(id, TraceContext::trace_id_for("net", 1));
  EXPECT_NE(id, TraceContext::trace_id_for("net", 2));
  EXPECT_NE(id, TraceContext::trace_id_for("other", 1));
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_NE(TraceContext::trace_id_for("m", v), 0u);
  }
}

TEST(TraceContext, DisarmedCurrentContextIsInvalidEvenWhenInstalled) {
  TraceContext context;
  context.trace_id = 7;
  ScopedTraceContext scoped(context);
  set_context_armed(false);
  EXPECT_FALSE(current_context().valid());
  set_context_armed(true);
  EXPECT_EQ(current_context().trace_id, 7u);
  set_context_armed(false);
}

TEST(TraceContext, SpanAdoptsAndChainsTheThreadContext) {
  set_context_armed(true);
  VirtualClock clock;
  Tracer tracer;
  tracer.set_clock(&clock);
  tracer.set_enabled(true);

  TraceContext context;
  context.trace_id = TraceContext::trace_id_for("net", 9);
  context.parent_span_id = 1000;
  {
    ScopedTraceContext scoped(context);
    auto outer = tracer.span("commit", "producer");
    // The open span became the thread's parent: remote work handed off
    // now (or an inner span) parents on it.
    const std::uint64_t outer_parent = current_context().parent_span_id;
    EXPECT_NE(outer_parent, 1000u);
    {
      auto inner = tracer.span("stage", "producer");
      clock.advance(0.1);
    }
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 1u);  // inner closed first
    EXPECT_EQ(events[0].trace_id, context.trace_id);
    EXPECT_EQ(events[0].parent_span_id, outer_parent);
  }
  set_context_armed(false);

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].name, "commit");
  EXPECT_EQ(events[1].trace_id, context.trace_id);
  EXPECT_EQ(events[1].parent_span_id, 1000u);
  // Scope exit restored the installed context's parent.
}

// ---------------------------------------------------------------------------
// Windowed metrics

TEST(WindowedHistogram, BucketsRotateOutOfTheWindow) {
  VirtualClock clock(0.0);
  WindowedHistogram histogram({.window_seconds = 6.0, .num_buckets = 3});
  histogram.set_clock(&clock);

  for (int i = 0; i < 4; ++i) histogram.record(1.0);
  auto stats = histogram.stats();
  EXPECT_EQ(stats.count, 4u);
  EXPECT_DOUBLE_EQ(stats.sum, 4.0);
  EXPECT_DOUBLE_EQ(stats.window_seconds, 6.0);
  EXPECT_DOUBLE_EQ(stats.rate_per_second, 4.0 / 6.0);

  // 4 s later the early records still fall inside the 6 s window.
  clock.advance(4.0);
  histogram.record(3.0);
  stats = histogram.stats();
  EXPECT_EQ(stats.count, 5u);
  EXPECT_GE(stats.max, 3.0);

  // 7 s later the t=0 records rotated out; only the t=4 one remains.
  clock.advance(3.0);
  stats = histogram.stats();
  EXPECT_EQ(stats.count, 1u);
  EXPECT_NEAR(stats.mean, 3.0, 0.2);

  // Far past the window everything is gone.
  clock.advance(100.0);
  EXPECT_EQ(histogram.stats().count, 0u);
}

TEST(WindowedRegistry, SameNameReturnsSameInstanceAndSnapshotIsSorted) {
  WindowedRegistry& registry = WindowedRegistry::global();
  WindowedHistogram& a = registry.histogram("viper.test.win_b");
  WindowedHistogram& b = registry.histogram("viper.test.win_a");
  EXPECT_EQ(&a, &registry.histogram("viper.test.win_b"));
  a.record(1.0);
  b.record(2.0);
  const auto snapshot = registry.snapshot();
  ASSERT_GE(snapshot.size(), 2u);
  for (std::size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].name, snapshot[i].name);
  }
}

// ---------------------------------------------------------------------------
// Version ledger

TEST(VersionLedger, StalenessFlushGapAndWindowedLatency) {
  VirtualClock clock(0.0);
  VersionLedger& ledger = VersionLedger::global();
  ledger.clear();
  ledger.set_clock(&clock);
  VersionLedger::set_armed(true);

  // v1: capture at 1, flush at 2, swap at 3. v2: capture at 5, flush at
  // 9, swap at 10.
  ledger.record_at("m", 1, Stage::kCaptureStart, 1.0);
  ledger.record_at("m", 1, Stage::kFlushDone, 2.0);
  clock.advance_to(3.0);
  ledger.record("m", 1, Stage::kSwapDone);
  ledger.record_at("m", 2, Stage::kCaptureStart, 5.0);
  ledger.record_at("m", 2, Stage::kFlushDone, 9.0);
  clock.advance_to(10.0);
  ledger.record("m", 2, Stage::kSwapDone);

  EXPECT_DOUBLE_EQ(ledger.timeline("m", 1)->update_latency(), 2.0);
  EXPECT_DOUBLE_EQ(ledger.timeline("m", 2)->update_latency(), 5.0);
  // Serving v2 (captured at 5) at t=12 -> 7 s stale.
  EXPECT_DOUBLE_EQ(ledger.staleness_seconds("m", 12.0), 7.0);
  // Flush commits at 2 and 9 -> 7 s of recovery-point exposure.
  EXPECT_DOUBLE_EQ(ledger.max_flush_gap_seconds("m"), 7.0);

  const auto window = ledger.windowed_update_latency();
  EXPECT_EQ(window.count, 2u);
  EXPECT_GE(window.max, 5.0);

  const std::string json = ledger.to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;

  VersionLedger::set_armed(false);
  ledger.set_clock(nullptr);
  ledger.clear();
}

TEST(VersionLedger, CloseInterruptedSkipsCompletedTimelines) {
  VersionLedger& ledger = VersionLedger::global();
  ledger.clear();
  VersionLedger::set_armed(true);
  ledger.record("m", 1, Stage::kCaptureStart);
  ledger.record("m", 1, Stage::kSwapDone);
  ledger.record("m", 2, Stage::kCaptureStart);
  ledger.record("other", 1, Stage::kCaptureStart);

  EXPECT_EQ(ledger.close_interrupted("m", "restart"), 1u);
  EXPECT_FALSE(ledger.timeline("m", 1)->interrupted);
  EXPECT_TRUE(ledger.timeline("m", 2)->interrupted);
  EXPECT_FALSE(ledger.timeline("other", 1)->interrupted);

  VersionLedger::set_armed(false);
  ledger.clear();
}

// ---------------------------------------------------------------------------
// SLO verdict engine

TEST(Slo, LatencyBudgetPassesAndFailsOnTheSameData) {
  // Nearest-rank p99 over 10 samples is the max — the 2.0 tail.
  std::vector<double> latencies(9, 0.1);
  latencies.push_back(2.0);

  SloSpec tight;
  tight.max_p99_update_latency_seconds = 1.0;
  const SloReport fail = evaluate_slo_from_latencies(tight, latencies);
  EXPECT_FALSE(fail.pass);
  ASSERT_NE(fail.check("p99_update_latency"), nullptr);
  EXPECT_FALSE(fail.check("p99_update_latency")->pass);
  EXPECT_NE(fail.to_text().find("FAIL"), std::string::npos);

  SloSpec loose;
  loose.max_p99_update_latency_seconds = 3.0;
  const SloReport pass = evaluate_slo_from_latencies(loose, latencies);
  EXPECT_TRUE(pass.pass);
  EXPECT_NE(pass.to_text().find("PASS"), std::string::npos);
  EXPECT_TRUE(JsonValidator(pass.to_json()).valid()) << pass.to_json();
}

TEST(Slo, CorruptServesAreAnAlwaysOnZeroBudget) {
  const std::vector<double> no_latencies;
  const SloReport clean = evaluate_slo_from_latencies(SloSpec{}, no_latencies, 0);
  EXPECT_TRUE(clean.pass);
  const SloReport dirty = evaluate_slo_from_latencies(SloSpec{}, no_latencies, 1);
  EXPECT_FALSE(dirty.pass);
  ASSERT_NE(dirty.check("corrupt_serves"), nullptr);
  EXPECT_FALSE(dirty.check("corrupt_serves")->pass);
}

TEST(Slo, DisabledChecksAreVacuouslyTrue) {
  SloSpec spec;  // every budget at its disabled default
  spec.check_corrupt_serves = false;
  const std::vector<double> latencies = {5.0, 9.0};
  const SloReport report = evaluate_slo_from_latencies(spec, latencies, 3);
  EXPECT_TRUE(report.pass);
  for (const SloCheck& check : report.checks) {
    EXPECT_FALSE(check.enabled) << check.name;
    EXPECT_TRUE(check.pass) << check.name;
  }
}

// ---------------------------------------------------------------------------
// Exporters: Prometheus text + merged Chrome traces

TEST(MetricsSnapshot, PrometheusExpositionShape) {
  MetricsRegistry registry;
  registry.counter("viper.test.saves").add(3);
  registry.gauge("viper.test.depth").set(2.0);
  registry.histogram("viper.test.lat_seconds").record(0.5);
  const std::string text = registry.snapshot().to_prometheus();

  // Dots become underscores, counters get _total, histograms export
  // quantile series plus _sum/_count.
  EXPECT_NE(text.find("# TYPE viper_test_saves_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("viper_test_saves_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE viper_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("viper_test_lat_seconds{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("viper_test_lat_seconds_count 1"), std::string::npos);
  EXPECT_EQ(text.find("viper.test"), std::string::npos);  // names sanitized
}

TEST(Tracer, MergedChromeTraceKeepsOnePidLanePerRank) {
  TraceEvent producer_event;
  producer_event.name = "commit";
  producer_event.category = "producer";
  producer_event.trace_id = 0xabc;
  producer_event.span_id = 1;
  producer_event.duration_seconds = 0.5;
  TraceEvent consumer_event;
  consumer_event.name = "swap";
  consumer_event.category = "consumer";
  consumer_event.trace_id = 0xabc;
  consumer_event.span_id = 2;
  consumer_event.parent_span_id = 1;
  consumer_event.start_seconds = 0.6;
  consumer_event.duration_seconds = 0.1;

  const std::string merged = merge_chrome_traces(
      {{0, {producer_event}}, {1, {consumer_event}}});
  EXPECT_TRUE(JsonValidator(merged).valid()) << merged;
  EXPECT_NE(merged.find("\"pid\": 0"), std::string::npos);
  EXPECT_NE(merged.find("\"pid\": 1"), std::string::npos);
  EXPECT_EQ(count_in(merged, "\"trace\": \"abc\""), 2u);

  // merge_chrome_trace_files splices already-exported files identically.
  const std::string from_files = merge_chrome_trace_files(
      {merge_chrome_traces({{0, {producer_event}}}),
       merge_chrome_traces({{1, {consumer_event}}})});
  EXPECT_TRUE(JsonValidator(from_files).valid()) << from_files;
  EXPECT_EQ(count_in(from_files, "\"trace\": \"abc\""), 2u);
}

// ---------------------------------------------------------------------------
// Overhead: recording on resolved handles must stay cheap (low tens of ns
// uncontended; the assert bound is loose so sanitizer builds pass too).

TEST(Overhead, RecordCostOnResolvedHandles) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("bench.count");
  Histogram& hist = registry.histogram("bench.lat");

  constexpr int kOps = 1'000'000;
  Stopwatch counter_watch;
  for (int i = 0; i < kOps; ++i) counter.add();
  const double counter_ns = counter_watch.elapsed() * 1e9 / kOps;

  Stopwatch hist_watch;
  for (int i = 0; i < kOps; ++i) hist.record(1.5e-6);
  const double hist_ns = hist_watch.elapsed() * 1e9 / kOps;

  std::printf("counter.add(): %.1f ns/op, histogram.record(): %.1f ns/op\n",
              counter_ns, hist_ns);
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kOps));
  EXPECT_LT(counter_ns, 2000.0);
  EXPECT_LT(hist_ns, 2000.0);
}

}  // namespace
}  // namespace viper::obs
