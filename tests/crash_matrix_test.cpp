// Crash matrix (labelled "long"): enumerate simulated process deaths at
// every step of the journaled flush protocol — before INTENT, mid-journal
// append, mid-blob write, after the blob but before COMMIT, mid-COMMIT
// append, after COMMIT — against a real filesystem-backed PFS. For every
// crash point a restarted producer and a warm-started consumer must
// converge on a consistent state: no committed version is ever lost, no
// version id is ever minted twice, and the viper.durability.* counters
// account for every injected crash.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <vector>

#include "viper/core/consumer.hpp"
#include "viper/core/handler.hpp"
#include "viper/core/recovery.hpp"
#include "viper/durability/journal.hpp"
#include "viper/durability/metrics.hpp"
#include "viper/durability/retention.hpp"
#include "viper/fault/fault.hpp"
#include "viper/memsys/file_tier.hpp"
#include "viper/memsys/presets.hpp"
#include "viper/serial/shard_delta.hpp"

namespace viper::core {
namespace {

namespace fs = std::filesystem;

Model versioned_model(std::uint64_t version) {
  Rng rng(version + 70);
  Model m("net");
  m.set_version(version);
  m.set_iteration(static_cast<std::int64_t>(version) * 100);
  EXPECT_TRUE(
      m.add_tensor("w", Tensor::random(DType::kF32, Shape{128}, rng).value())
          .is_ok());
  return m;
}

struct CrashPoint {
  const char* site;
  /// Which matching probe the crash fires on. Blob-level sites need 2:
  /// during one journaled flush the tier sees three put() calls — journal
  /// INTENT, checkpoint blob, journal COMMIT — and the blob is the 2nd.
  std::uint64_t nth;
  /// Does v2 survive the crash? True once its blob is durable (recovery
  /// completes the flush), false before that (recovery rolls it back).
  bool v2_survives;
  /// Does the dying process leave a torn/stale temp file behind?
  bool leaves_temp;
};

class CrashMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("viper-crash-" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "-" + ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::shared_ptr<memsys::FileTier> open_tier() {
    auto tier = memsys::FileTier::open(root_, memsys::polaris_lustre());
    EXPECT_TRUE(tier.is_ok());
    return std::move(tier).value();
  }

  std::size_t temp_files_on_disk() const {
    std::size_t count = 0;
    for (const auto& entry : fs::recursive_directory_iterator(root_)) {
      if (entry.is_regular_file() && entry.path().extension() == ".tmp") ++count;
    }
    return count;
  }

  fs::path root_;
};

TEST_F(CrashMatrixTest, EveryCrashPointConvergesAfterRestart) {
  const std::vector<CrashPoint> matrix{
      {"durability.flush.begin", 1, false, false},
      {"durability.journal.intent", 1, false, false},
      {"memsys.lustre-pfs.put.tmp", 2, false, true},
      {"memsys.lustre-pfs.put.publish", 2, false, true},
      {"durability.flush.after-blob", 1, true, false},
      {"durability.journal.commit", 1, true, false},
      {"durability.flush.end", 1, true, false},
  };

  auto& dmetrics = durability::durability_metrics();
  const std::uint64_t aborts_before = dmetrics.flush_aborts.value();
  std::uint64_t crashes_injected = 0;

  for (const CrashPoint& point : matrix) {
    SCOPED_TRACE(point.site);
    fs::remove_all(root_);

    // --- Incarnation 1: flush v1 cleanly, then die mid-flush of v2. ---
    {
      auto services = std::make_shared<SharedServices>();
      services->pfs = open_tier();
      ModelWeightsHandler::Options options;
      options.strategy = Strategy::kGpuAsync;
      ModelWeightsHandler handler(services, options);
      ASSERT_TRUE(handler.save_weights("net", versioned_model(1)).is_ok());
      handler.drain();

      fault::ScopedPlan chaos{fault::FaultPlan(0xDEAD).add(
          fault::FaultRule::crash_point(point.site, point.nth))};
      // The save itself lands in memory; the "process" dies on the
      // background PFS flush.
      ASSERT_TRUE(handler.save_weights("net", versioned_model(2)).is_ok());
      handler.drain();
      const auto report = fault::FaultInjector::global().report();
      ASSERT_EQ(report.crashes, 1u) << "crash point never fired";
      crashes_injected += report.crashes;
    }  // handler + services destroyed: the process is gone

    EXPECT_EQ(temp_files_on_disk() > 0, point.leaves_temp);

    // --- Incarnation 2: restart, replay the journal, converge. ---
    auto services = std::make_shared<SharedServices>();
    services->pfs = open_tier();  // reopen purges stale temp files
    EXPECT_EQ(temp_files_on_disk(), 0u);

    auto recovery = recover_producer(*services, "net");
    ASSERT_TRUE(recovery.is_ok()) << recovery.status().to_string();
    EXPECT_TRUE(recovery.value().journal_found);
    EXPECT_EQ(recovery.value().scrub.quarantined, 0u);

    const std::uint64_t expected = point.v2_survives ? 2u : 1u;
    EXPECT_EQ(recovery.value().last_committed, expected);
    EXPECT_EQ(recovery.value().serving_version, expected);

    // A consumer restarted against the same PFS serves the same version.
    auto world = net::CommWorld::create(1);
    InferenceConsumer::Options consumer_options;
    consumer_options.warm_start = true;
    InferenceConsumer consumer(services, world->comm(0), "net",
                               consumer_options);
    consumer.start();
    EXPECT_TRUE(consumer.warm_started());
    EXPECT_EQ(consumer.active_version(), expected);
    consumer.stop();

    // The restarted producer keeps minting ids past everything committed
    // — v2 is reused only if it never became durable.
    ModelWeightsHandler::Options options;
    options.strategy = Strategy::kGpuAsync;
    ModelWeightsHandler producer(services, options);
    Model next = versioned_model(0);
    next.set_version(0);  // auto-assign
    auto receipt = producer.save_weights("net", next);
    ASSERT_TRUE(receipt.is_ok()) << receipt.status().to_string();
    EXPECT_EQ(receipt.value().metadata.version, expected + 1);
    producer.drain();

    // The journal is the source of truth and must show exactly the
    // committed set: v1, (the crashed v2 iff it survived), and the new
    // version — which reused id 2 only if the crashed v2 never became
    // durable.
    durability::ManifestJournal journal(services->pfs, "net");
    ASSERT_TRUE(journal.load().is_ok());
    const durability::ManifestState state = journal.state();
    EXPECT_TRUE(state.is_committed(1));
    EXPECT_TRUE(state.is_committed(expected + 1));
    EXPECT_EQ(state.committed.size(), point.v2_survives ? 3u : 2u);
    EXPECT_TRUE(state.pending.empty());
    EXPECT_EQ(state.last_committed, expected + 1);
  }

  // Accounting: every injected crash shows up as exactly one aborted
  // flush — none were silently dropped or double counted.
  EXPECT_EQ(crashes_injected, matrix.size());
  EXPECT_EQ(dmetrics.flush_aborts.value() - aborts_before, crashes_injected);
}

Model sharded_base(std::uint64_t version) {
  Rng rng(70);  // fixed seed: every call rebuilds the same weights
  Model m("net");
  m.set_version(version);
  m.set_iteration(static_cast<std::int64_t>(version) * 100);
  // 4 MiB over 64 tensors: with 16 shards a one-tensor churn dirties a
  // single shard, keeping the delta frame well under max_delta_fraction.
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(
        m.add_tensor("layer" + std::to_string(i) + "/w",
                     Tensor::random(DType::kF32, Shape{16384}, rng).value())
            .is_ok());
  }
  return m;
}

Model churn_first_tensor(const Model& base, std::uint64_t version) {
  Model next = base;
  next.set_version(version);
  next.set_iteration(base.iteration() + 100);
  auto span = next.mutable_tensors().begin()->second.mutable_data<float>();
  for (auto& f : span) f += 1.0f;
  return next;
}

TEST_F(CrashMatrixTest, DeltaChainSurvivesCrashBetweenBlobAndCommit) {
  // The hard case the delta path adds to the matrix: the producer dies
  // after the DELTA frame blob is durable but before its journal COMMIT.
  // Recovery must complete the flush as a DELTA record (the blob is a
  // frame — closing it as a full COMMIT would corrupt every reader), the
  // reconstructed model must be byte-identical to what was saved, and the
  // chain's pin accounting must balance under retention GC.
  const Model v1 = sharded_base(1);
  const Model v2 = churn_first_tensor(v1, 2);

  {
    auto services = std::make_shared<SharedServices>();
    services->pfs = open_tier();
    ModelWeightsHandler::Options options;
    options.strategy = Strategy::kGpuAsync;
    options.delta_updates = true;
    options.serialize_shards = 16;
    ModelWeightsHandler handler(services, options);
    ASSERT_TRUE(handler.save_weights("net", v1).is_ok());
    handler.drain();

    fault::ScopedPlan chaos{fault::FaultPlan(0xD17A).add(
        fault::FaultRule::crash_point("durability.flush.after-blob", 1))};
    ASSERT_TRUE(handler.save_weights("net", v2).is_ok());
    handler.drain();
    ASSERT_EQ(fault::FaultInjector::global().report().crashes, 1u);
  }

  auto services = std::make_shared<SharedServices>();
  services->pfs = open_tier();

  // The durable v2 blob really is a shard-delta frame, not a full encode.
  {
    std::vector<std::byte> blob;
    ASSERT_TRUE(
        services->pfs->get(durability::checkpoint_key("net", 2), blob).is_ok());
    ASSERT_TRUE(serial::is_shard_delta(blob));
  }

  auto recovery = recover_producer(*services, "net");
  ASSERT_TRUE(recovery.is_ok()) << recovery.status().to_string();
  EXPECT_EQ(recovery.value().last_committed, 2u);
  EXPECT_EQ(recovery.value().serving_version, 2u);
  EXPECT_EQ(recovery.value().scrub.quarantined, 0u);
  EXPECT_EQ(recovery.value().scrub.chain_broken, 0u);

  // The completed record is a DELTA anchored on v1, not a plain COMMIT.
  durability::ManifestJournal journal(services->pfs, "net");
  ASSERT_TRUE(journal.load().is_ok());
  const durability::ManifestState state = journal.state();
  ASSERT_TRUE(state.is_committed(2));
  EXPECT_TRUE(state.committed.at(2).is_delta());
  EXPECT_EQ(state.committed.at(2).base_version, 1u);
  EXPECT_TRUE(state.pending.empty());

  // A cold consumer reconstructs v2 through the chain replay and lands on
  // exactly the weights that were saved.
  auto world = net::CommWorld::create(1);
  ModelLoader loader(services, world->comm(0), {});
  std::vector<std::byte> frame;
  ASSERT_TRUE(
      services->pfs->get(durability::checkpoint_key("net", 2), frame).is_ok());
  auto reconstructed = loader.decode_blob(
      "net", 2, std::make_shared<const std::vector<std::byte>>(std::move(frame)),
      0);
  ASSERT_TRUE(reconstructed.is_ok()) << reconstructed.status().to_string();
  EXPECT_TRUE(reconstructed.value().same_weights(v2));
  EXPECT_EQ(reconstructed.value().iteration(), v2.iteration());

  // Pin accounting balances: keep_last=1 wants only v2, but v2's chain
  // pins its base — exactly one pin counted, nothing retired, and the
  // anchor blob still on disk.
  auto& dmetrics = durability::durability_metrics();
  const std::uint64_t pinned_before = dmetrics.gc_delta_pinned.value();
  const std::uint64_t bases_before =
      serial::shard_delta_metrics().bases_pinned.value();
  auto report =
      durability::apply_retention(journal, {.keep_last = 1}, services->leases.get());
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().retired, 0u);
  EXPECT_EQ(report.value().delta_pinned, 1u);
  EXPECT_EQ(dmetrics.gc_delta_pinned.value() - pinned_before, 1u);
  EXPECT_EQ(serial::shard_delta_metrics().bases_pinned.value() - bases_before,
            1u);
  std::vector<std::byte> anchor;
  EXPECT_TRUE(
      services->pfs->get(durability::checkpoint_key("net", 1), anchor).is_ok());
  EXPECT_FALSE(serial::is_shard_delta(anchor));
}

TEST_F(CrashMatrixTest, RepeatedCrashesOnTheSameVersionEventuallyCommit) {
  // A flush that keeps dying mid-blob must stay retryable: each restart
  // rolls the dangling INTENT back, and the save finally lands once the
  // crashes stop.
  {
    auto services = std::make_shared<SharedServices>();
    services->pfs = open_tier();
    ModelWeightsHandler::Options options;
    options.strategy = Strategy::kGpuAsync;
    ModelWeightsHandler handler(services, options);

    fault::ScopedPlan chaos{fault::FaultPlan(7).add(
        fault::FaultRule::crash_point("memsys.lustre-pfs.put.tmp", 2))};
    ASSERT_TRUE(handler.save_weights("net", versioned_model(1)).is_ok());
    handler.drain();
    ASSERT_EQ(fault::FaultInjector::global().report().crashes, 1u);
  }

  for (int restart = 0; restart < 2; ++restart) {
    auto services = std::make_shared<SharedServices>();
    services->pfs = open_tier();
    auto recovery = recover_producer(*services, "net");
    ASSERT_TRUE(recovery.is_ok());
    if (restart == 0) {
      // First restart resolves the interrupted flush: rolled back.
      EXPECT_EQ(recovery.value().last_committed, 0u);
      ModelWeightsHandler::Options options;
      options.strategy = Strategy::kGpuAsync;
      ModelWeightsHandler handler(services, options);
      ASSERT_TRUE(handler.save_weights("net", versioned_model(1)).is_ok());
      handler.drain();
    } else {
      // Second restart finds the retried flush committed.
      EXPECT_EQ(recovery.value().last_committed, 1u);
      EXPECT_EQ(recovery.value().serving_version, 1u);
      EXPECT_TRUE(recovery.value().scrub.clean());
    }
  }
}

}  // namespace
}  // namespace viper::core
