// Tests for the CIL predictor (Eq. 2 / Algorithm 1) and the three
// schedule algorithms, including a brute-force optimality property for
// Algorithm 2.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "viper/core/cilp.hpp"
#include "viper/core/scheduler.hpp"

namespace viper::core {
namespace {

LossFn exp_decay(double a, double b, double c) {
  return [=](double x) { return a * std::exp(-b * x) + c; };
}

UpdateTiming simple_timing() {
  return {.t_train = 1.0, .t_infer = 0.5, .t_p = 2.0, .t_c = 3.0};
}

TEST(CilPredictor, Algorithm1FirstUpdateIncludesConsumerLoad) {
  CilPredictor cilp(simple_timing(), exp_decay(1, 0.01, 0));
  // interval 10: window = 10·1 + 2 (+3 for version 1) seconds.
  const auto first = cilp.interval_loss(10, 2.0, 1, 1000);
  EXPECT_EQ(first.inferences, static_cast<std::int64_t>((10 + 2 + 3) / 0.5));
  EXPECT_DOUBLE_EQ(first.accumulated_loss, 2.0 * 30);
  const auto later = cilp.interval_loss(10, 2.0, 2, 1000);
  EXPECT_EQ(later.inferences, static_cast<std::int64_t>((10 + 2) / 0.5));
}

TEST(CilPredictor, Algorithm1CapsAtRemaining) {
  CilPredictor cilp(simple_timing(), exp_decay(1, 0.01, 0));
  const auto chunk = cilp.interval_loss(10, 1.0, 2, 5);
  EXPECT_EQ(chunk.inferences, 5);
  EXPECT_DOUBLE_EQ(chunk.accumulated_loss, 5.0);
}

TEST(CilPredictor, Algorithm1DegenerateInputs) {
  CilPredictor cilp(simple_timing(), exp_decay(1, 0.01, 0));
  EXPECT_EQ(cilp.interval_loss(0, 1.0, 1, 10).inferences, 0);
  EXPECT_EQ(cilp.interval_loss(10, 1.0, 1, 0).inferences, 0);
  EXPECT_EQ(cilp.interval_loss(10, 1.0, 1, -3).inferences, 0);
}

TEST(CilPredictor, CilForIntervalExhaustsAllInferences) {
  // Total loss must charge every one of the M requests exactly once.
  CilPredictor constant(simple_timing(), [](double) { return 1.0; });
  for (std::int64_t interval : {1, 3, 7, 50, 500}) {
    EXPECT_DOUBLE_EQ(constant.cil_for_interval(interval, 0, 100, 200), 200.0)
        << "interval " << interval;
  }
}

TEST(CilPredictor, FrequentUpdatesLowerCilWhenStallIsFree) {
  UpdateTiming timing{.t_train = 1.0, .t_infer = 0.5, .t_p = 0.0, .t_c = 0.0};
  CilPredictor cilp(timing, exp_decay(2, 0.05, 0.1));
  const double frequent = cilp.cil_for_interval(1, 0, 100, 150);
  const double rare = cilp.cil_for_interval(50, 0, 100, 150);
  EXPECT_LT(frequent, rare);
}

TEST(CilPredictor, ExpensiveStallPenalizesFrequentUpdates) {
  // With a huge stall, interval 1 must no longer be optimal: the producer
  // spends all its time checkpointing and barely trains.
  UpdateTiming timing{.t_train = 0.1, .t_infer = 0.05, .t_p = 10.0, .t_c = 0.0};
  CilPredictor cilp(timing, exp_decay(2, 0.01, 0.1));
  ScheduleWindow window{.s_iter = 0, .e_iter = 200, .total_inferences = 2000};
  auto schedule = fixed_interval_schedule(window, cilp);
  ASSERT_TRUE(schedule.is_ok());
  EXPECT_GT(schedule.value().interval, 1);
}

TEST(CilPredictor, AccLossMatchesIterativeFormRoughly) {
  // Eq. 2's closed form and the Algorithm 2 inner loop model the same
  // process; on a generous window they must agree to a few percent.
  UpdateTiming timing{.t_train = 1.0, .t_infer = 0.25, .t_p = 1.0, .t_c = 2.0};
  CilPredictor cilp(timing, exp_decay(3, 0.02, 0.2));
  const std::int64_t interval = 10;
  const double t_max = 220.0;  // exactly 20 periods of 11 s
  const auto total_inferences = static_cast<std::int64_t>(t_max / timing.t_infer);
  const double closed = cilp.acc_loss(interval, t_max);
  const double iterative = cilp.cil_for_interval(
      interval, 0, static_cast<std::int64_t>(t_max / timing.t_train),
      total_inferences);
  EXPECT_NEAR(closed, iterative, 0.1 * closed);
}

// ---- Algorithm 2 -------------------------------------------------------

TEST(FixedInterval, RejectsEmptyWindow) {
  CilPredictor cilp(simple_timing(), exp_decay(1, 0.01, 0));
  EXPECT_FALSE(
      fixed_interval_schedule({.s_iter = 10, .e_iter = 10, .total_inferences = 5},
                              cilp)
          .is_ok());
  EXPECT_FALSE(
      fixed_interval_schedule({.s_iter = 0, .e_iter = 10, .total_inferences = 0},
                              cilp)
          .is_ok());
}

TEST(FixedInterval, MatchesBruteForceMinimum) {
  // Property: Algorithm 2's pick must equal an exhaustive argmin.
  UpdateTiming timing{.t_train = 0.7, .t_infer = 0.2, .t_p = 1.3, .t_c = 0.9};
  CilPredictor cilp(timing, exp_decay(2.2, 0.03, 0.15));
  ScheduleWindow window{.s_iter = 20, .e_iter = 180, .total_inferences = 700};

  auto schedule = fixed_interval_schedule(window, cilp);
  ASSERT_TRUE(schedule.is_ok());

  double best = std::numeric_limits<double>::infinity();
  std::int64_t best_interval = 0;
  for (std::int64_t i = 1; i <= window.e_iter - window.s_iter; ++i) {
    const double cil = cilp.cil_for_interval(i, window.s_iter, window.e_iter,
                                             window.total_inferences);
    if (cil < best) {
      best = cil;
      best_interval = i;
    }
  }
  EXPECT_EQ(schedule.value().interval, best_interval);
  EXPECT_DOUBLE_EQ(schedule.value().predicted_cil, best);
}

TEST(FixedInterval, ScheduleIterationsAreRegularAndInWindow) {
  CilPredictor cilp(simple_timing(), exp_decay(1.5, 0.02, 0.1));
  ScheduleWindow window{.s_iter = 100, .e_iter = 400, .total_inferences = 900};
  auto schedule = fixed_interval_schedule(window, cilp).value();
  ASSERT_FALSE(schedule.iterations.empty());
  std::int64_t prev = window.s_iter;
  for (std::int64_t it : schedule.iterations) {
    EXPECT_EQ(it - prev, schedule.interval);
    EXPECT_GT(it, window.s_iter);
    EXPECT_LE(it, window.e_iter);
    prev = it;
  }
}

// ---- Algorithm 3 -------------------------------------------------------

TEST(Greedy, ThresholdFromWarmupIsMeanPlusStd) {
  const std::vector<double> losses{1.0, 0.9, 0.85, 0.7};  // |deltas| .1 .05 .15
  const double mean = 0.1;
  const double sd = std::sqrt(((0.0) + 0.0025 + 0.0025) / 2.0);
  EXPECT_NEAR(greedy_threshold_from_warmup(losses), mean + sd, 1e-12);
  EXPECT_DOUBLE_EQ(greedy_threshold_from_warmup(std::vector<double>{1.0}), 0.0);
}

TEST(Greedy, ChecksPointOnlyOnSufficientImprovement) {
  CilPredictor cilp(simple_timing(), exp_decay(2, 0.05, 0.1));
  ScheduleWindow window{.s_iter = 0, .e_iter = 300, .total_inferences = 600};
  auto schedule = greedy_schedule(window, cilp, 0.2);
  ASSERT_TRUE(schedule.is_ok());
  const auto& iters = schedule.value().iterations;
  ASSERT_FALSE(iters.empty());
  // Every consecutive pair of checkpoints improves by > threshold.
  double prev_loss = cilp.loss_at(0);
  for (std::int64_t it : iters) {
    const double loss = cilp.loss_at(static_cast<double>(it));
    EXPECT_GT(prev_loss - loss, 0.2);
    prev_loss = loss;
  }
}

TEST(Greedy, IntervalsWidenAsTrainingConverges) {
  // Exponential decay slows, so gaps between checkpoints must grow.
  CilPredictor cilp(simple_timing(), exp_decay(2, 0.01, 0.05));
  ScheduleWindow window{.s_iter = 0, .e_iter = 600, .total_inferences = 2000};
  auto schedule = greedy_schedule(window, cilp, 0.1).value();
  ASSERT_GE(schedule.iterations.size(), 3u);
  std::int64_t first_gap = schedule.iterations[1] - schedule.iterations[0];
  std::int64_t last_gap =
      schedule.iterations.back() - schedule.iterations[schedule.iterations.size() - 2];
  EXPECT_GT(last_gap, first_gap);
}

TEST(Greedy, HugeThresholdYieldsNoCheckpoints) {
  CilPredictor cilp(simple_timing(), exp_decay(1, 0.01, 0));
  ScheduleWindow window{.s_iter = 0, .e_iter = 100, .total_inferences = 100};
  auto schedule = greedy_schedule(window, cilp, 1e9).value();
  EXPECT_TRUE(schedule.iterations.empty());
  // With no updates, every request is served by the warm-up model.
  EXPECT_DOUBLE_EQ(schedule.predicted_cil, cilp.loss_at(0) * 100);
}

TEST(Greedy, RejectsBadInputs) {
  CilPredictor cilp(simple_timing(), exp_decay(1, 0.01, 0));
  EXPECT_FALSE(
      greedy_schedule({.s_iter = 5, .e_iter = 5, .total_inferences = 1}, cilp, 0.1)
          .is_ok());
  EXPECT_FALSE(
      greedy_schedule({.s_iter = 0, .e_iter = 10, .total_inferences = 1}, cilp, -1)
          .is_ok());
}

TEST(Greedy, FewerCheckpointsThanFixedAtComparableCil) {
  // The paper's headline (fig10/table1): the greedy schedule reaches a
  // comparable or better CIL with fewer checkpoints than fixed-interval.
  UpdateTiming timing{.t_train = 0.085, .t_infer = 0.0055, .t_p = 0.06, .t_c = 0.01};
  CilPredictor cilp(timing, exp_decay(2.55, 0.0009, 0.35));
  ScheduleWindow window{.s_iter = 1080, .e_iter = 4300, .total_inferences = 50000};
  auto fixed = fixed_interval_schedule(window, cilp).value();
  auto greedy = greedy_schedule(window, cilp, 0.014).value();
  EXPECT_LT(greedy.num_checkpoints(), fixed.num_checkpoints());
  EXPECT_LT(greedy.predicted_cil, fixed.predicted_cil * 1.05);
}

// ---- Epoch baseline ----------------------------------------------------

TEST(EpochSchedule, CheckpointsAtEpochBoundaries) {
  CilPredictor cilp(simple_timing(), exp_decay(1, 0.01, 0));
  ScheduleWindow window{.s_iter = 100, .e_iter = 500, .total_inferences = 100};
  auto schedule = epoch_schedule(window, 100, cilp);
  ASSERT_EQ(schedule.iterations.size(), 4u);
  EXPECT_EQ(schedule.iterations[0], 200);
  EXPECT_EQ(schedule.iterations[3], 500);
  EXPECT_EQ(schedule.kind, ScheduleKind::kEpochBaseline);
  EXPECT_GT(schedule.predicted_cil, 0.0);
}

TEST(Schedule, ContainsUsesBinarySearch) {
  CheckpointSchedule schedule;
  schedule.iterations = {10, 20, 30};
  EXPECT_TRUE(schedule.contains(20));
  EXPECT_FALSE(schedule.contains(25));
}

TEST(Schedules, OptimizedBeatEpochBaselineOnPrediction) {
  // TC1-like configuration: both IPP schedules must predict a lower CIL
  // than the epoch-boundary baseline (the fig10 ordering).
  UpdateTiming timing{.t_train = 0.085, .t_infer = 0.0055, .t_p = 0.06, .t_c = 0.01};
  CilPredictor cilp(timing, exp_decay(2.55, 0.0009, 0.35));
  ScheduleWindow window{.s_iter = 1080, .e_iter = 4300, .total_inferences = 50000};
  auto baseline = epoch_schedule(window, 216, cilp);
  auto fixed = fixed_interval_schedule(window, cilp).value();
  auto greedy = greedy_schedule(window, cilp, 0.014).value();
  EXPECT_LT(fixed.predicted_cil, baseline.predicted_cil);
  EXPECT_LT(greedy.predicted_cil, baseline.predicted_cil);
}

}  // namespace
}  // namespace viper::core
