// Unit + property tests for viper_math: curve models, Levenberg-Marquardt
// fitting, model selection, dense solver, statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "viper/math/curve_models.hpp"
#include "viper/math/least_squares.hpp"
#include "viper/math/stats.hpp"

namespace viper::math {
namespace {

std::vector<double> iota(std::size_t n) {
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = static_cast<double>(i);
  return xs;
}

std::vector<double> sample(const CurveModel& model, std::span<const double> xs,
                           std::span<const double> params) {
  std::vector<double> ys;
  ys.reserve(xs.size());
  for (double x : xs) ys.push_back(model.eval(x, params));
  return ys;
}

TEST(CurveModels, FamilyNames) {
  EXPECT_EQ(to_string(CurveFamily::kExp2), "Exp2");
  EXPECT_EQ(to_string(CurveFamily::kExp3), "Exp3");
  EXPECT_EQ(to_string(CurveFamily::kLin2), "Lin2");
  EXPECT_EQ(to_string(CurveFamily::kExpd3), "Expd3");
}

TEST(CurveModels, Exp3Evaluation) {
  auto model = make_curve_model(CurveFamily::kExp3);
  const std::vector<double> p{2.0, 0.1, 0.5};
  EXPECT_DOUBLE_EQ(model->eval(0.0, p), 2.5);
  EXPECT_NEAR(model->eval(10.0, p), 2.0 * std::exp(-1.0) + 0.5, 1e-12);
}

TEST(CurveModels, Expd3ApproachesAsymptote) {
  auto model = make_curve_model(CurveFamily::kExpd3);
  const std::vector<double> p{3.0, 0.05, 0.5};  // a=3 (start), c=0.5 (end)
  EXPECT_DOUBLE_EQ(model->eval(0.0, p), 3.0);
  EXPECT_NEAR(model->eval(1000.0, p), 0.5, 1e-12);
}

// Property: analytic gradients must match central finite differences.
class GradientCheck : public ::testing::TestWithParam<CurveFamily> {};

TEST_P(GradientCheck, MatchesFiniteDifferences) {
  auto model = make_curve_model(GetParam());
  std::vector<double> params;
  switch (model->num_params()) {
    case 2: params = {1.7, 0.03}; break;
    case 3: params = {1.7, 0.03, 0.4}; break;
    default: FAIL() << "unexpected parameter count";
  }
  std::vector<double> grad(model->num_params());
  for (double x : {0.0, 1.0, 5.0, 40.0}) {
    model->gradient(x, params, grad);
    for (std::size_t j = 0; j < params.size(); ++j) {
      const double h = 1e-6 * std::max(1.0, std::abs(params[j]));
      auto bumped = params;
      bumped[j] += h;
      const double up = model->eval(x, bumped);
      bumped[j] -= 2 * h;
      const double down = model->eval(x, bumped);
      const double numeric = (up - down) / (2 * h);
      EXPECT_NEAR(grad[j], numeric, 1e-4 * std::max(1.0, std::abs(numeric)))
          << to_string(GetParam()) << " param " << j << " at x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, GradientCheck,
                         ::testing::ValuesIn(all_curve_families()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// Property: LM recovers the generating parameters from clean samples.
class FitRecovery : public ::testing::TestWithParam<CurveFamily> {};

TEST_P(FitRecovery, RecoversTrueCurve) {
  auto model = make_curve_model(GetParam());
  std::vector<double> truth;
  switch (GetParam()) {
    case CurveFamily::kExp2: truth = {2.5, 0.02}; break;
    case CurveFamily::kExp3: truth = {2.5, 0.02, 0.3}; break;
    case CurveFamily::kLin2: truth = {-0.004, 2.0}; break;
    case CurveFamily::kExpd3: truth = {2.5, 0.02, 0.3}; break;
  }
  const auto xs = iota(200);
  const auto ys = sample(*model, xs, truth);

  auto fit = fit_curve(*model, xs, ys);
  ASSERT_TRUE(fit.is_ok()) << fit.status().to_string();
  EXPECT_LT(fit.value().mse, 1e-8) << to_string(GetParam());
  // Check predictions, not raw parameters (parameterizations can trade off).
  for (double x : {0.0, 50.0, 150.0, 300.0}) {
    EXPECT_NEAR(model->eval(x, fit.value().params), model->eval(x, truth), 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FitRecovery,
                         ::testing::ValuesIn(all_curve_families()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(FitCurve, RejectsMismatchedSizes) {
  auto model = make_curve_model(CurveFamily::kExp2);
  const std::vector<double> xs{0, 1, 2};
  const std::vector<double> ys{1, 2};
  EXPECT_FALSE(fit_curve(*model, xs, ys).is_ok());
}

TEST(FitCurve, RejectsTooFewSamples) {
  auto model = make_curve_model(CurveFamily::kExp3);
  const std::vector<double> xs{0, 1};
  const std::vector<double> ys{2, 1};
  EXPECT_FALSE(fit_curve(*model, xs, ys).is_ok());
}

TEST(FitBestCurve, SelectsGeneratingFamilyOnExpData) {
  auto exp3 = make_curve_model(CurveFamily::kExp3);
  const std::vector<double> truth{2.0, 0.015, 0.4};
  const auto xs = iota(300);
  const auto ys = sample(*exp3, xs, truth);
  const auto families = all_curve_families();
  auto fits = fit_best_curve(xs, ys, families);
  ASSERT_FALSE(fits.empty());
  // Exp3 (or the equivalent Expd3 reparameterization) must beat Lin2.
  EXPECT_NE(fits.front().family, CurveFamily::kLin2);
  EXPECT_LT(fits.front().mse, 1e-6);
  // Results must be sorted ascending by MSE.
  for (std::size_t i = 1; i < fits.size(); ++i) {
    EXPECT_LE(fits[i - 1].mse, fits[i].mse);
  }
}

TEST(FitBestCurve, SelectsLineOnLinearData) {
  const auto xs = iota(50);
  std::vector<double> ys;
  for (double x : xs) ys.push_back(5.0 - 0.01 * x);
  const auto families = all_curve_families();
  auto fits = fit_best_curve(xs, ys, families);
  ASSERT_FALSE(fits.empty());
  EXPECT_LT(fits.front().mse, 1e-10);
}

TEST(SolveDense, Solves3x3System) {
  // A = [[2,1,0],[1,3,1],[0,1,4]], b = [3,8,13] → x = [1,1,3]? verify:
  // 2+1=3 ✓ ; 1+3+3=7 ✗ — use computed rhs for x=[1,1,3]: [3,7,13].
  std::vector<double> a{2, 1, 0, 1, 3, 1, 0, 1, 4};
  std::vector<double> b{3, 7, 13};
  ASSERT_TRUE(solve_dense(a, b, 3));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 1.0, 1e-12);
  EXPECT_NEAR(b[2], 3.0, 1e-12);
}

TEST(SolveDense, DetectsSingularMatrix) {
  std::vector<double> a{1, 2, 2, 4};
  std::vector<double> b{1, 2};
  EXPECT_FALSE(solve_dense(a, b, 2));
}

TEST(SolveDense, HandlesPivoting) {
  // Leading zero forces a row swap.
  std::vector<double> a{0, 1, 1, 0};
  std::vector<double> b{2, 3};
  ASSERT_TRUE(solve_dense(a, b, 2));
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats stats;
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(Stats, SpanHelpers) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  const std::vector<double> ys{1, 2, 3, 5};
  EXPECT_DOUBLE_EQ(mse(xs, ys), 0.25);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

}  // namespace
}  // namespace viper::math
