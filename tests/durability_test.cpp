// Durability-layer tests: manifest-journal codec (round trip, torn-tail
// tolerance, CRC protection), journal load/append semantics across
// instances ("process restarts"), fold semantics, the integrity scrubber
// (complete / roll back / quarantine), retention GC, version-counter
// resume, duplicate-version refusal, consumer warm start, and the modeled
// fsync cost every journal append charges.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "viper/core/consumer.hpp"
#include "viper/core/handler.hpp"
#include "viper/core/recovery.hpp"
#include "viper/durability/journal.hpp"
#include "viper/durability/metrics.hpp"
#include "viper/durability/retention.hpp"
#include "viper/durability/scrub.hpp"
#include "viper/serial/crc32.hpp"
#include "viper/serial/manifest.hpp"

namespace viper::durability {
namespace {

using serial::ManifestOp;
using serial::ManifestRecord;

ManifestRecord record_of(ManifestOp op, std::uint64_t sequence,
                         std::uint64_t version) {
  ManifestRecord record;
  record.op = op;
  record.sequence = sequence;
  record.version = version;
  record.size_bytes = 1000 + version;
  record.blob_crc = 0xABCD0000u + static_cast<std::uint32_t>(version);
  record.iteration = static_cast<std::int64_t>(version) * 10;
  return record;
}

// ---------------------------------------------------------------------------
// Manifest codec
// ---------------------------------------------------------------------------

TEST(ManifestCodec, RoundTripsAllOps) {
  serial::ByteWriter writer;
  serial::encode_manifest_record(record_of(ManifestOp::kIntent, 1, 7), writer);
  serial::encode_manifest_record(record_of(ManifestOp::kCommit, 2, 7), writer);
  serial::encode_manifest_record(record_of(ManifestOp::kRetire, 3, 7), writer);
  EXPECT_EQ(writer.size(), 3 * serial::kManifestRecordBytes);

  const auto parse = serial::parse_manifest_journal(writer.bytes());
  EXPECT_EQ(parse.torn_bytes, 0u);
  ASSERT_EQ(parse.records.size(), 3u);
  EXPECT_EQ(parse.records[0].op, ManifestOp::kIntent);
  EXPECT_EQ(parse.records[1].op, ManifestOp::kCommit);
  EXPECT_EQ(parse.records[2].op, ManifestOp::kRetire);
  EXPECT_EQ(parse.records[1].sequence, 2u);
  EXPECT_EQ(parse.records[1].version, 7u);
  EXPECT_EQ(parse.records[1].size_bytes, 1007u);
  EXPECT_EQ(parse.records[1].blob_crc, 0xABCD0007u);
  EXPECT_EQ(parse.records[1].iteration, 70);
}

TEST(ManifestCodec, TornTailInvalidatesOnlyTheLastRecord) {
  serial::ByteWriter writer;
  serial::encode_manifest_record(record_of(ManifestOp::kIntent, 1, 1), writer);
  serial::encode_manifest_record(record_of(ManifestOp::kCommit, 2, 1), writer);
  serial::encode_manifest_record(record_of(ManifestOp::kIntent, 3, 2), writer);
  auto blob = std::move(writer).take();
  // Crash mid-append: only half of the third record reached the tier.
  blob.resize(2 * serial::kManifestRecordBytes + serial::kManifestRecordBytes / 2);

  const auto parse = serial::parse_manifest_journal(blob);
  ASSERT_EQ(parse.records.size(), 2u);
  EXPECT_EQ(parse.torn_bytes, serial::kManifestRecordBytes / 2);
  EXPECT_EQ(parse.records[1].op, ManifestOp::kCommit);
}

TEST(ManifestCodec, CorruptRecordFailsItsCrc) {
  serial::ByteWriter writer;
  serial::encode_manifest_record(record_of(ManifestOp::kCommit, 1, 3), writer);
  auto blob = std::move(writer).take();
  blob[10] ^= std::byte{0x40};  // flip a bit inside the payload
  serial::ByteReader reader(blob);
  EXPECT_EQ(serial::decode_manifest_record(reader).status().code(),
            StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Fold semantics
// ---------------------------------------------------------------------------

TEST(ManifestFold, IntentCommitRetireLifecycle) {
  std::vector<ManifestRecord> records{record_of(ManifestOp::kIntent, 1, 1),
                                      record_of(ManifestOp::kCommit, 2, 1),
                                      record_of(ManifestOp::kIntent, 3, 2)};
  ManifestState state = fold_manifest(records);
  EXPECT_TRUE(state.is_committed(1));
  EXPECT_TRUE(state.is_pending(2));
  EXPECT_EQ(state.last_committed, 1u);
  EXPECT_EQ(state.next_sequence, 4u);

  // Retiring the committed version removes it but last_committed survives
  // — version ids are never reused, even after GC.
  records.push_back(record_of(ManifestOp::kRetire, 4, 1));
  state = fold_manifest(records);
  EXPECT_FALSE(state.is_committed(1));
  EXPECT_EQ(state.last_committed, 1u);
  ASSERT_EQ(state.retired.size(), 1u);
  EXPECT_EQ(state.retired[0], 1u);
}

// ---------------------------------------------------------------------------
// Journal object on a tier
// ---------------------------------------------------------------------------

std::shared_ptr<memsys::StorageTier> memory_tier() {
  return std::make_shared<memsys::MemoryTier>(memsys::polaris_lustre());
}

TEST(ManifestJournalTest, AppendsSurviveAReload) {
  auto tier = memory_tier();
  {
    ManifestJournal journal(tier, "net");
    ASSERT_TRUE(journal.load().is_ok());
    ASSERT_TRUE(journal.append_intent(1, 64, 0xFEED, 10).is_ok());
    ASSERT_TRUE(journal.append_commit(1, 64, 0xFEED, 10).is_ok());
    ASSERT_TRUE(journal.append_intent(2, 64, 0xBEEF, 20).is_ok());
  }  // "process" dies; only the tier object remains

  ManifestJournal reloaded(tier, "net");
  ASSERT_TRUE(reloaded.load().is_ok());
  const ManifestState state = reloaded.state();
  EXPECT_TRUE(state.is_committed(1));
  EXPECT_TRUE(state.is_pending(2));
  EXPECT_EQ(state.last_committed, 1u);
  EXPECT_EQ(state.torn_bytes, 0u);
}

TEST(ManifestJournalTest, MissingObjectIsAFreshJournal) {
  ManifestJournal journal(memory_tier(), "ghost");
  ASSERT_TRUE(journal.load().is_ok());
  EXPECT_TRUE(journal.state().committed.empty());
  EXPECT_EQ(journal.state().next_sequence, 1u);
}

TEST(ManifestJournalTest, TornTailIsTruncatedAndRepairedOnLoad) {
  auto tier = memory_tier();
  {
    ManifestJournal journal(tier, "net");
    ASSERT_TRUE(journal.load().is_ok());
    ASSERT_TRUE(journal.append_intent(1, 64, 0xFEED, 10).is_ok());
    ASSERT_TRUE(journal.append_commit(1, 64, 0xFEED, 10).is_ok());
  }
  // Simulate a crash mid-append: half a record dangles off the tail.
  const std::string key = journal_key("net");
  std::vector<std::byte> blob;
  ASSERT_TRUE(tier->get(key, blob).is_ok());
  blob.resize(blob.size() + serial::kManifestRecordBytes / 2, std::byte{0x5A});
  ASSERT_TRUE(tier->put(key, std::move(blob)).is_ok());

  ManifestJournal reloaded(tier, "net");
  ASSERT_TRUE(reloaded.load().is_ok());
  EXPECT_EQ(reloaded.state().torn_bytes, serial::kManifestRecordBytes / 2);
  EXPECT_TRUE(reloaded.state().is_committed(1));

  // The repair republished a clean journal: a third load sees no tear.
  ManifestJournal again(tier, "net");
  ASSERT_TRUE(again.load().is_ok());
  EXPECT_EQ(again.state().torn_bytes, 0u);
  EXPECT_TRUE(again.state().is_committed(1));
}

TEST(ManifestJournalTest, AppendsChargeTheModeledFsyncBarrier) {
  ManifestJournal journal(memory_tier(), "net");
  ASSERT_TRUE(journal.load().is_ok());
  ASSERT_TRUE(journal.append_intent(1, 64, 0, 0).is_ok());
  ASSERT_TRUE(journal.append_commit(1, 64, 0, 0).is_ok());
  // polaris_lustre models a ~4 ms fsync; two appends must cost at least
  // two barriers (plus the tiny journal writes themselves).
  EXPECT_GE(journal.modeled_seconds(), 2 * 3e-3);
}

// ---------------------------------------------------------------------------
// Scrubber
// ---------------------------------------------------------------------------

std::vector<std::byte> crc_stamped_blob(std::size_t n, std::uint8_t fill,
                                        std::uint32_t* crc_out) {
  std::vector<std::byte> blob(n, static_cast<std::byte>(fill));
  *crc_out = serial::crc32(blob);
  return blob;
}

TEST(Scrubber, CompletesAnInterruptedFlushWhoseBlobLanded) {
  auto tier = memory_tier();
  ManifestJournal journal(tier, "net");
  ASSERT_TRUE(journal.load().is_ok());

  std::uint32_t crc = 0;
  auto blob = crc_stamped_blob(256, 0xA1, &crc);
  ASSERT_TRUE(journal.append_intent(1, blob.size(), crc, 10).is_ok());
  ASSERT_TRUE(tier->put(checkpoint_key("net", 1), std::move(blob)).is_ok());
  // Crash here: INTENT + durable blob, no COMMIT.

  // Shallow verify only: the blob is not a real checkpoint.
  auto report = scrub_model(journal, ScrubOptions{.deep_verify = false});
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().completed, 1u);
  EXPECT_EQ(report.value().rolled_back, 0u);
  EXPECT_TRUE(journal.state().is_committed(1));
  EXPECT_FALSE(journal.state().is_pending(1));
}

TEST(Scrubber, RollsBackAnInterruptedFlushWithNoBlob) {
  auto tier = memory_tier();
  ManifestJournal journal(tier, "net");
  ASSERT_TRUE(journal.load().is_ok());
  ASSERT_TRUE(journal.append_intent(1, 256, 0xFEED, 10).is_ok());
  // Crash before the blob reached the tier.

  auto report = scrub_model(journal, ScrubOptions{.deep_verify = false});
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().completed, 0u);
  EXPECT_EQ(report.value().rolled_back, 1u);
  EXPECT_FALSE(journal.state().is_committed(1));
  EXPECT_FALSE(journal.state().is_pending(1));
  ASSERT_EQ(journal.state().retired.size(), 1u);
}

TEST(Scrubber, QuarantinesACorruptCommittedBlobInsteadOfDeletingIt) {
  auto tier = memory_tier();
  ManifestJournal journal(tier, "net");
  ASSERT_TRUE(journal.load().is_ok());

  std::uint32_t crc = 0;
  auto blob = crc_stamped_blob(256, 0xB2, &crc);
  ASSERT_TRUE(journal.append_intent(1, blob.size(), crc, 10).is_ok());
  auto copy = blob;
  ASSERT_TRUE(tier->put(checkpoint_key("net", 1), std::move(copy)).is_ok());
  ASSERT_TRUE(journal.append_commit(1, blob.size(), crc, 10).is_ok());

  // Silent media corruption after the commit.
  blob[100] ^= std::byte{0xFF};
  ASSERT_TRUE(tier->put(checkpoint_key("net", 1), std::move(blob)).is_ok());

  auto report = scrub_model(journal, ScrubOptions{.deep_verify = false});
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().checked, 1u);
  EXPECT_EQ(report.value().verified, 0u);
  EXPECT_EQ(report.value().quarantined, 1u);
  ASSERT_EQ(report.value().quarantined_versions.size(), 1u);
  EXPECT_EQ(report.value().quarantined_versions[0], 1u);

  // The bytes were moved, not destroyed: quarantine has them, the live
  // checkpoint namespace does not, and the manifest retired the version.
  EXPECT_TRUE(tier->contains(quarantine_key("net", 1)));
  EXPECT_FALSE(tier->contains(checkpoint_key("net", 1)));
  EXPECT_FALSE(journal.state().is_committed(1));
  EXPECT_EQ(journal.state().last_committed, 1u);
}

TEST(Scrubber, RetiresACommittedVersionWhoseBlobVanished) {
  auto tier = memory_tier();
  ManifestJournal journal(tier, "net");
  ASSERT_TRUE(journal.load().is_ok());
  std::uint32_t crc = 0;
  auto blob = crc_stamped_blob(128, 0xC3, &crc);
  ASSERT_TRUE(journal.append_intent(1, blob.size(), crc, 10).is_ok());
  ASSERT_TRUE(tier->put(checkpoint_key("net", 1), std::move(blob)).is_ok());
  ASSERT_TRUE(journal.append_commit(1, 128, crc, 10).is_ok());
  ASSERT_TRUE(tier->erase(checkpoint_key("net", 1)).is_ok());

  auto report = scrub_model(journal, ScrubOptions{.deep_verify = false});
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().missing, 1u);
  EXPECT_FALSE(journal.state().is_committed(1));
}

// ---------------------------------------------------------------------------
// Retention GC
// ---------------------------------------------------------------------------

TEST(Retention, KeepsLastNAndEveryKthAnchor) {
  auto tier = memory_tier();
  ManifestJournal journal(tier, "net");
  ASSERT_TRUE(journal.load().is_ok());
  for (std::uint64_t v = 1; v <= 10; ++v) {
    std::uint32_t crc = 0;
    auto blob = crc_stamped_blob(100, static_cast<std::uint8_t>(v), &crc);
    ASSERT_TRUE(journal.append_intent(v, blob.size(), crc, 0).is_ok());
    ASSERT_TRUE(tier->put(checkpoint_key("net", v), std::move(blob)).is_ok());
    ASSERT_TRUE(journal.append_commit(v, 100, crc, 0).is_ok());
  }

  const RetentionPolicy policy{.keep_last = 2, .keep_every = 4};
  auto report = apply_retention(journal, policy);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();

  // Survivors: newest two (9, 10) plus the every-4th anchors (4, 8).
  const ManifestState state = journal.state();
  for (std::uint64_t kept : {4u, 8u, 9u, 10u}) {
    EXPECT_TRUE(state.is_committed(kept)) << "v" << kept;
    EXPECT_TRUE(tier->contains(checkpoint_key("net", kept))) << "v" << kept;
  }
  for (std::uint64_t gone : {1u, 2u, 3u, 5u, 6u, 7u}) {
    EXPECT_FALSE(state.is_committed(gone)) << "v" << gone;
    EXPECT_FALSE(tier->contains(checkpoint_key("net", gone))) << "v" << gone;
  }
  EXPECT_EQ(report.value().retired, 6u);
  EXPECT_EQ(report.value().bytes_reclaimed, 600u);
  EXPECT_EQ(state.last_committed, 10u);  // GC never lowers the id floor

  // Idempotent: a second pass finds nothing to do.
  auto again = apply_retention(journal, policy);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().retired, 0u);
}

TEST(Retention, DisabledPolicyIsANoOp) {
  auto tier = memory_tier();
  ManifestJournal journal(tier, "net");
  ASSERT_TRUE(journal.load().is_ok());
  ASSERT_TRUE(journal.append_intent(1, 8, 0, 0).is_ok());
  ASSERT_TRUE(journal.append_commit(1, 8, 0, 0).is_ok());
  auto report = apply_retention(journal, RetentionPolicy{});
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().examined, 0u);
  EXPECT_TRUE(journal.state().is_committed(1));
}

// ---------------------------------------------------------------------------
// Lease table + lease-gated retention
// ---------------------------------------------------------------------------

TEST(LeaseTable, AcquireReleaseAndHolderCount) {
  LeaseTable leases;
  EXPECT_FALSE(leases.active("net", 3));
  ASSERT_TRUE(leases.acquire("net", 3, "c0").is_ok());
  ASSERT_TRUE(leases.acquire("net", 3, "c1").is_ok());
  EXPECT_TRUE(leases.active("net", 3));
  EXPECT_EQ(leases.holder_count("net", 3), 2u);
  // Re-acquire by the same holder renews rather than stacking.
  ASSERT_TRUE(leases.acquire("net", 3, "c0").is_ok());
  EXPECT_EQ(leases.holder_count("net", 3), 2u);
  ASSERT_TRUE(leases.release("net", 3, "c0").is_ok());
  EXPECT_EQ(leases.holder_count("net", 3), 1u);
  ASSERT_TRUE(leases.release("net", 3, "c1").is_ok());
  EXPECT_FALSE(leases.active("net", 3));
  // Releasing an already-gone lease is OK (the drain happened either way).
  EXPECT_TRUE(leases.release("net", 3, "c1").is_ok());
}

TEST(LeaseTable, ExpiryUnblocksAndExtendOfExpiredLeaseFails) {
  LeaseTable leases;
  ASSERT_TRUE(leases.acquire("net", 5, "crashed-relay", 0.03).is_ok());
  EXPECT_TRUE(leases.active("net", 5));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  // The crashed holder stopped renewing: its lease lapses by TTL.
  EXPECT_FALSE(leases.active("net", 5));
  EXPECT_EQ(leases.extend("net", 5, "crashed-relay").code(),
            StatusCode::kNotFound);
}

TEST(Retention, NeverRetiresAVersionUnderAnActiveLease) {
  auto tier = memory_tier();
  ManifestJournal journal(tier, "net");
  ASSERT_TRUE(journal.load().is_ok());
  for (std::uint64_t v = 1; v <= 6; ++v) {
    std::uint32_t crc = 0;
    auto blob = crc_stamped_blob(100, static_cast<std::uint8_t>(v), &crc);
    ASSERT_TRUE(journal.append_intent(v, blob.size(), crc, 0).is_ok());
    ASSERT_TRUE(tier->put(checkpoint_key("net", v), std::move(blob)).is_ok());
    ASSERT_TRUE(journal.append_commit(v, 100, crc, 0).is_ok());
  }

  // A straggler consumer is still draining v2 when GC sweeps.
  LeaseTable leases;
  ASSERT_TRUE(leases.acquire("net", 2, "straggler").is_ok());
  const RetentionPolicy policy{.keep_last = 2};
  auto report = apply_retention(journal, policy, &leases);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(journal.state().is_committed(2));
  EXPECT_TRUE(tier->contains(checkpoint_key("net", 2)));
  EXPECT_EQ(report.value().lease_blocked, 1u);
  EXPECT_EQ(report.value().retired, 3u);  // v1, v3, v4 go; v2 is leased

  // The straggler drains and releases: the next pass retires v2.
  ASSERT_TRUE(leases.release("net", 2, "straggler").is_ok());
  auto again = apply_retention(journal, policy, &leases);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().retired, 1u);
  EXPECT_FALSE(journal.state().is_committed(2));
}

TEST(Retention, RelayCrashLeaseExpiryUnblocksGc) {
  auto tier = memory_tier();
  ManifestJournal journal(tier, "net");
  ASSERT_TRUE(journal.load().is_ok());
  for (std::uint64_t v = 1; v <= 4; ++v) {
    std::uint32_t crc = 0;
    auto blob = crc_stamped_blob(100, static_cast<std::uint8_t>(v), &crc);
    ASSERT_TRUE(journal.append_intent(v, blob.size(), crc, 0).is_ok());
    ASSERT_TRUE(tier->put(checkpoint_key("net", v), std::move(blob)).is_ok());
    ASSERT_TRUE(journal.append_commit(v, 100, crc, 0).is_ok());
  }

  // A relay took a short-TTL lease on v1 mid-fan-out, then died without
  // releasing. GC is blocked only until the TTL lapses — the version is
  // neither retired out from under the relay nor leaked forever.
  LeaseTable leases;
  ASSERT_TRUE(leases.acquire("net", 1, "dead-relay", 0.03).is_ok());
  const RetentionPolicy policy{.keep_last = 2};
  auto blocked = apply_retention(journal, policy, &leases);
  ASSERT_TRUE(blocked.is_ok());
  EXPECT_EQ(blocked.value().lease_blocked, 1u);
  EXPECT_TRUE(journal.state().is_committed(1));

  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  auto unblocked = apply_retention(journal, policy, &leases);
  ASSERT_TRUE(unblocked.is_ok());
  EXPECT_EQ(unblocked.value().lease_blocked, 0u);
  EXPECT_FALSE(journal.state().is_committed(1));
}

// ---------------------------------------------------------------------------
// Handler integration: duplicate refusal, counter resume, warm start
// ---------------------------------------------------------------------------

Model versioned_model(std::uint64_t version) {
  Rng rng(version + 40);
  Model m("net");
  m.set_version(version);
  m.set_iteration(static_cast<std::int64_t>(version) * 100);
  EXPECT_TRUE(
      m.add_tensor("w", Tensor::random(DType::kF32, Shape{128}, rng).value())
          .is_ok());
  return m;
}

core::ModelWeightsHandler::Options async_options() {
  core::ModelWeightsHandler::Options options;
  options.strategy = core::Strategy::kGpuAsync;
  return options;
}

TEST(HandlerDurability, RefusesToCommitADuplicateVersionId) {
  auto services = std::make_shared<core::SharedServices>();
  core::ModelWeightsHandler handler(services, async_options());
  ASSERT_TRUE(handler.save_weights("net", versioned_model(1)).is_ok());
  handler.drain();  // v1's COMMIT is in the journal now

  const std::uint64_t refused_before =
      durability_metrics().duplicate_versions_refused.value();
  auto dup = handler.save_weights("net", versioned_model(1));
  EXPECT_EQ(dup.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(durability_metrics().duplicate_versions_refused.value(),
            refused_before + 1);

  // A different explicit id still works.
  EXPECT_TRUE(handler.save_weights("net", versioned_model(2)).is_ok());
}

TEST(HandlerDurability, RestartedProducerResumesTheVersionCounter) {
  auto pfs = memory_tier();
  {
    auto services = std::make_shared<core::SharedServices>();
    services->pfs = pfs;
    core::ModelWeightsHandler handler(services, async_options());
    Model model = versioned_model(0);  // version 0 => auto-assign
    model.set_version(0);
    ASSERT_TRUE(handler.save_weights("net", model).is_ok());
    ASSERT_TRUE(handler.save_weights("net", model).is_ok());
    handler.drain();
  }  // producer dies; its metadata DB (and counter) die with it

  // Fresh process, same durable tier, empty metadata DB: the counter must
  // resume past the journal's last committed id, not re-mint v1.
  auto services = std::make_shared<core::SharedServices>();
  services->pfs = pfs;
  core::ModelWeightsHandler handler(services, async_options());
  Model model = versioned_model(0);
  model.set_version(0);
  auto receipt = handler.save_weights("net", model);
  ASSERT_TRUE(receipt.is_ok()) << receipt.status().to_string();
  EXPECT_EQ(receipt.value().metadata.version, 3u);
  handler.drain();

  {
    durability::ManifestJournal journal(pfs, "net");
    ASSERT_TRUE(journal.load().is_ok());
    EXPECT_EQ(journal.state().committed.size(), 3u);
    EXPECT_EQ(journal.state().last_committed, 3u);
  }
}

TEST(HandlerDurability, RecoverProducerReportsScrubAndServingVersion) {
  auto pfs = memory_tier();
  {
    auto services = std::make_shared<core::SharedServices>();
    services->pfs = pfs;
    core::ModelWeightsHandler handler(services, async_options());
    for (std::uint64_t v = 1; v <= 2; ++v) {
      ASSERT_TRUE(handler.save_weights("net", versioned_model(v)).is_ok());
    }
    handler.drain();
    // Leave a dangling INTENT behind, as a crash mid-flush would.
    durability::ManifestJournal journal(pfs, "net");
    ASSERT_TRUE(journal.load().is_ok());
    ASSERT_TRUE(journal.append_intent(3, 999, 0xDEAD, 300).is_ok());
  }

  auto services = std::make_shared<core::SharedServices>();
  services->pfs = pfs;
  auto report = core::recover_producer(*services, "net");
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(report.value().journal_found);
  EXPECT_EQ(report.value().scrub.rolled_back, 1u);  // the dangling v3
  EXPECT_EQ(report.value().last_committed, 2u);
  EXPECT_EQ(report.value().serving_version, 2u);
  // Metadata was repaired to the recovered version.
  auto metadata = core::get_metadata(services->metadata_db, "net");
  ASSERT_TRUE(metadata.is_ok());
  EXPECT_EQ(metadata.value().version, 2u);
  EXPECT_EQ(metadata.value().location, core::Location::kPfs);
}

TEST(HandlerDurability, ConsumerWarmStartsFromTheNewestCommittedVersion) {
  auto pfs = memory_tier();
  Model last = versioned_model(2);
  {
    auto services = std::make_shared<core::SharedServices>();
    services->pfs = pfs;
    core::ModelWeightsHandler handler(services, async_options());
    ASSERT_TRUE(handler.save_weights("net", versioned_model(1)).is_ok());
    ASSERT_TRUE(handler.save_weights("net", last).is_ok());
    handler.drain();
  }  // producer gone

  auto services = std::make_shared<core::SharedServices>();
  services->pfs = pfs;
  auto world = net::CommWorld::create(1);
  core::InferenceConsumer::Options options;
  options.warm_start = true;
  core::InferenceConsumer consumer(services, world->comm(0), "net", options);
  consumer.start();
  EXPECT_TRUE(consumer.warm_started());
  EXPECT_EQ(consumer.active_version(), 2u);
  ASSERT_NE(consumer.active_model(), nullptr);
  EXPECT_TRUE(consumer.active_model()->same_weights(last));
  consumer.stop();
}

TEST(HandlerDurability, RetentionPolicyBoundsThePfsFootprint) {
  auto services = std::make_shared<core::SharedServices>();
  auto options = async_options();
  options.retention.keep_last = 2;
  core::ModelWeightsHandler handler(services, options);
  for (std::uint64_t v = 1; v <= 5; ++v) {
    ASSERT_TRUE(handler.save_weights("net", versioned_model(v)).is_ok());
  }
  handler.drain();

  durability::ManifestJournal journal(services->pfs, "net");
  ASSERT_TRUE(journal.load().is_ok());
  const ManifestState state = journal.state();
  EXPECT_EQ(state.committed.size(), 2u);
  EXPECT_TRUE(state.is_committed(4));
  EXPECT_TRUE(state.is_committed(5));
  EXPECT_FALSE(services->pfs->contains(checkpoint_key("net", 1)));
  EXPECT_TRUE(services->pfs->contains(checkpoint_key("net", 5)));
  EXPECT_EQ(state.last_committed, 5u);
}

TEST(HandlerDurability, JournalingDisabledLeavesThePfsBare) {
  auto services = std::make_shared<core::SharedServices>();
  auto options = async_options();
  options.journal_flushes = false;
  core::ModelWeightsHandler handler(services, options);
  ASSERT_TRUE(handler.save_weights("net", versioned_model(1)).is_ok());
  handler.drain();
  EXPECT_FALSE(services->pfs->contains(journal_key("net")));
  EXPECT_TRUE(services->pfs->contains(checkpoint_key("net", 1)));
}

}  // namespace
}  // namespace viper::durability
