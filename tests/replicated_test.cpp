// Tests for the data-parallel producer group: lockstep consistency,
// leader-only checkpointing, crash injection with leader failover, and a
// consumer's view of the seamless version stream across the failover.
#include <gtest/gtest.h>

#include "viper/parallel/replicated.hpp"

namespace viper::parallel {
namespace {

std::unique_ptr<ReplicatedProducerGroup> make_group(
    std::shared_ptr<core::SharedServices> services, int replicas) {
  ReplicatedProducerGroup::Options options;
  options.replicas = replicas;
  options.app = AppModel::kNt3A;
  options.strategy = core::Strategy::kViperPfs;  // no transfer server needed
  options.model_name = "nt3";
  auto group = ReplicatedProducerGroup::create(std::move(services), options);
  EXPECT_TRUE(group.is_ok());
  return std::move(group).value();
}

TEST(Replicated, ReplicasStayConsistentThroughTraining) {
  auto group = make_group(std::make_shared<core::SharedServices>(), 3);
  EXPECT_TRUE(group->replicas_consistent());
  group->step_all(40);
  EXPECT_TRUE(group->replicas_consistent());
  EXPECT_EQ(group->replica(0).iteration(), 40);
  EXPECT_EQ(group->replica(2).iteration(), 40);
}

TEST(Replicated, LeaderCheckpointsForTheGroup) {
  auto services = std::make_shared<core::SharedServices>();
  auto group = make_group(services, 2);
  group->step_all(20);
  auto receipt = group->checkpoint();
  ASSERT_TRUE(receipt.is_ok());
  EXPECT_EQ(receipt.value().metadata.version, 1u);
  EXPECT_EQ(receipt.value().metadata.iteration, 19);
  // Only the leader paid the capture stall.
  EXPECT_GT(group->replica(0).stall_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(group->replica(1).stall_seconds(), 0.0);
}

TEST(Replicated, LeaderFailoverContinuesVersionStream) {
  auto services = std::make_shared<core::SharedServices>();
  auto group = make_group(services, 3);
  group->step_all(10);
  ASSERT_TRUE(group->checkpoint().is_ok());  // v1 from leader 0

  ASSERT_TRUE(group->kill_replica(0).is_ok());
  EXPECT_EQ(group->leader(), 1);
  EXPECT_EQ(group->live_replicas(), 2);

  group->step_all(10);
  auto receipt = group->checkpoint();  // v2 from the new leader
  ASSERT_TRUE(receipt.is_ok());
  EXPECT_EQ(receipt.value().metadata.version, 2u);
  group->handler().drain();

  // The consumer-facing stream is seamless: latest metadata is v2, the
  // weights equal what the dead leader would have produced (the live
  // replica is bit-identical).
  auto metadata = core::get_metadata(services->metadata_db, "nt3");
  ASSERT_TRUE(metadata.is_ok());
  EXPECT_EQ(metadata.value().version, 2u);

  auto world = net::CommWorld::create(1);
  core::ModelLoader loader(services, world->comm(0), {});
  auto loaded = loader.load_weights("nt3");
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_TRUE(loaded.value().same_weights(group->replica(1).model()));
}

TEST(Replicated, KillingNonLeaderKeepsLeader) {
  auto group = make_group(std::make_shared<core::SharedServices>(), 3);
  ASSERT_TRUE(group->kill_replica(2).is_ok());
  EXPECT_EQ(group->leader(), 0);
  EXPECT_EQ(group->live_replicas(), 2);
  EXPECT_TRUE(group->replicas_consistent());
}

TEST(Replicated, AllDeadIsFailedPrecondition) {
  auto group = make_group(std::make_shared<core::SharedServices>(), 2);
  ASSERT_TRUE(group->kill_replica(0).is_ok());
  ASSERT_TRUE(group->kill_replica(1).is_ok());
  EXPECT_EQ(group->live_replicas(), 0);
  EXPECT_EQ(group->checkpoint().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Replicated, KillValidation) {
  auto group = make_group(std::make_shared<core::SharedServices>(), 2);
  EXPECT_FALSE(group->kill_replica(7).is_ok());
  ASSERT_TRUE(group->kill_replica(1).is_ok());
  EXPECT_EQ(group->kill_replica(1).code(), StatusCode::kFailedPrecondition);
}

TEST(Replicated, DeadReplicasStopTraining) {
  auto group = make_group(std::make_shared<core::SharedServices>(), 2);
  ASSERT_TRUE(group->kill_replica(1).is_ok());
  group->step_all(5);
  EXPECT_EQ(group->replica(0).iteration(), 5);
  EXPECT_EQ(group->replica(1).iteration(), 0);
}

TEST(Replicated, RejectsZeroReplicas) {
  ReplicatedProducerGroup::Options options;
  options.replicas = 0;
  EXPECT_FALSE(
      ReplicatedProducerGroup::create(std::make_shared<core::SharedServices>(),
                                      options)
          .is_ok());
}

}  // namespace
}  // namespace viper::parallel
