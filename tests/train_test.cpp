// Tests for viper_train: the training and inference-serving simulators.
#include <gtest/gtest.h>

#include "viper/sim/app_profile.hpp"
#include "viper/tensor/architectures.hpp"
#include "viper/train/inference_sim.hpp"
#include "viper/train/trainer_sim.hpp"

namespace viper::train {
namespace {

sim::AppProfile tc1() { return sim::app_profile(AppModel::kTc1); }

Model tc1_model() { return build_app_model(AppModel::kTc1, {}).value(); }

TEST(TrainerSim, StepsAdvanceIterationAndTime) {
  TrainerSim trainer(tc1(), tc1_model());
  EXPECT_EQ(trainer.iteration(), 0);
  const auto step = trainer.step();
  EXPECT_EQ(step.iteration, 0);
  EXPECT_GT(step.seconds, 0.0);
  EXPECT_GT(step.loss, 0.0);
  EXPECT_EQ(trainer.iteration(), 1);
  EXPECT_DOUBLE_EQ(trainer.train_seconds(), step.seconds);
}

TEST(TrainerSim, RunExecutesNSteps) {
  TrainerSim trainer(tc1(), tc1_model());
  trainer.run(50);
  EXPECT_EQ(trainer.iteration(), 50);
  EXPECT_NEAR(trainer.train_seconds(), 50 * tc1().t_train_mean,
              50 * tc1().t_train_mean * 0.2);
}

TEST(TrainerSim, LossFollowsTrajectory) {
  TrainerSim trainer(tc1(), tc1_model(), {.seed = 42});
  sim::TrajectoryGenerator reference(tc1(), 42);
  for (int i = 0; i < 20; ++i) {
    const auto step = trainer.step();
    EXPECT_DOUBLE_EQ(step.loss, reference.observed_loss(step.iteration));
  }
}

TEST(TrainerSim, WeightsEvolveEachStep) {
  TrainerSim trainer(tc1(), tc1_model());
  const Model before = trainer.model();
  trainer.step();
  EXPECT_FALSE(trainer.model().same_weights(before));
}

TEST(TrainerSim, WeightEvolutionCanBeDisabled) {
  TrainerSim trainer(tc1(), tc1_model(), {.evolve_weights = false});
  const Model before = trainer.model();
  trainer.run(5);
  EXPECT_TRUE(trainer.model().same_weights(before));
}

TEST(TrainerSim, StallAccountingSeparatesComputeTime) {
  TrainerSim trainer(tc1(), tc1_model());
  trainer.run(10);
  const double compute = trainer.train_seconds();
  trainer.record_stall(1.5);
  trainer.record_stall(-3.0);  // ignored
  EXPECT_DOUBLE_EQ(trainer.stall_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(trainer.elapsed_seconds(), compute + 1.5);
}

TEST(TrainerSim, SnapshotStampsVersionAndIteration) {
  TrainerSim trainer(tc1(), tc1_model());
  trainer.run(10);
  Model snap1 = trainer.snapshot();
  EXPECT_EQ(snap1.version(), 1u);
  EXPECT_EQ(snap1.iteration(), 9);
  trainer.run(5);
  Model snap2 = trainer.snapshot();
  EXPECT_EQ(snap2.version(), 2u);
  EXPECT_EQ(snap2.iteration(), 14);
  EXPECT_FALSE(snap1.same_weights(snap2));
}

TEST(TrainerSim, CallbacksFireEveryIteration) {
  TrainerSim trainer(tc1(), tc1_model());
  std::vector<std::int64_t> seen;
  trainer.add_callback([&seen](const StepResult& s) { seen.push_back(s.iteration); });
  trainer.run(5);
  ASSERT_EQ(seen.size(), 5u);
  for (std::int64_t i = 0; i < 5; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(InferenceSim, AccumulatesCilAtServingLoss) {
  InferenceServerSim server(tc1());
  server.install_model(1, 0.5);
  for (int i = 0; i < 10; ++i) server.serve();
  EXPECT_DOUBLE_EQ(server.cumulative_loss(), 5.0);
  EXPECT_EQ(server.served(), 10);
  EXPECT_EQ(server.active_version(), 1u);
}

TEST(InferenceSim, ModelSwapChangesServingLoss) {
  InferenceServerSim server(tc1());
  server.install_model(1, 1.0);
  server.serve();
  server.install_model(2, 0.25);
  server.serve();
  EXPECT_DOUBLE_EQ(server.cumulative_loss(), 1.25);
  EXPECT_EQ(server.active_version(), 2u);
}

TEST(InferenceSim, TimeAdvancesPerRequest) {
  InferenceServerSim server(tc1());
  const double before = server.now();
  const auto req = server.serve();
  EXPECT_GT(server.now(), before);
  EXPECT_DOUBLE_EQ(req.completed_at, server.now());
  EXPECT_NEAR(server.now(), tc1().t_infer_mean, tc1().t_infer_mean * 0.5);
}

TEST(InferenceSim, PreInstallRequestsUseWarmupModel) {
  InferenceServerSim server(tc1());
  const auto req = server.serve();
  EXPECT_EQ(req.model_version, 0u);
  EXPECT_GT(req.loss, 0.0);
}

}  // namespace
}  // namespace viper::train
