// Chaos battery for the consumer data plane: per-message drop / corrupt /
// delay faults on the comm fabric while a producer streams versions and a
// reader continuously samples the serving model. The invariant under all
// of it: the consumer never serves a torn model and eventually converges
// on the newest version (retry, PFS fallback, and resync absorb the
// faults). Labeled `long` — CI runs it outside the quick sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "viper/core/consumer.hpp"
#include "viper/core/handler.hpp"
#include "viper/fault/fault.hpp"
#include "viper/tensor/model.hpp"

namespace viper::core {
namespace {

Model chaos_model(std::uint64_t seed) {
  Rng rng(seed);
  Model m("net");
  EXPECT_TRUE(
      m.add_tensor("w",
                   Tensor::random(DType::kF32, Shape{32 * 1024}, rng).value())
          .is_ok());
  EXPECT_TRUE(
      m.add_tensor("b",
                   Tensor::random(DType::kF32, Shape{4 * 1024}, rng).value())
          .is_ok());
  return m;
}

class ConsumerChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConsumerChaos, FaultyFabricNeverYieldsATornModel) {
  std::shared_ptr<SharedServices> services = std::make_shared<SharedServices>();
  auto world = net::CommWorld::create(2);

  ModelWeightsHandler::Options handler_options;
  handler_options.strategy = Strategy::kHostSync;
  handler_options.reply_channels = 4;  // stripe the faulty replies too
  auto handler =
      std::make_shared<ModelWeightsHandler>(services, handler_options);
  std::thread server([&] { handler->serve_transfers(world->comm(0)); });

  InferenceConsumer::Options options;
  options.loader.producer_rank = 0;
  options.loader.request_timeout = 0.5;  // fail fast, retry fast
  options.loader.retry = RetryPolicy{.max_attempts = 4,
                                     .initial_backoff_seconds = 0.002,
                                     .max_backoff_seconds = 0.02};
  options.loader.stripe_channels = 4;
  options.resync_interval = 0.05;  // recover missed versions quickly
  InferenceConsumer consumer(services, world->comm(1), "net", options);
  consumer.start();

  std::atomic<bool> stop_reader{false};
  std::atomic<int> violations{0};
  std::atomic<std::uint64_t> reads{0};
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_acquire)) {
      auto model = consumer.active_model();
      if (model != nullptr) {
        reads.fetch_add(1, std::memory_order_relaxed);
        // Version and iteration are stamped together before every save; a
        // torn or cross-assembled model breaks the pairing. Weights are
        // CRC-guarded on every path, so this is the cheap full-rate probe.
        if (model->iteration() != static_cast<std::int64_t>(model->version())) {
          violations.fetch_add(1);
        }
      }
    }
  });

  constexpr std::uint64_t kVersions = 12;
  {
    fault::ScopedPlan chaos{
        fault::FaultPlan(GetParam())
            .add(fault::FaultRule::drop("net.send", 0.03))
            .add(fault::FaultRule::corrupt("net.send", 0.02))
            .add(fault::FaultRule::delay("net.recv", 0.001, 0.10))};
    for (std::uint64_t v = 1; v <= kVersions; ++v) {
      Model model = chaos_model(GetParam() + v);
      model.set_version(v);
      model.set_iteration(static_cast<std::int64_t>(v));
      ASSERT_TRUE(handler->save_weights("net", model).is_ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    // Converge under fire: resync + retry must land the final version
    // even when its notification or chunks were dropped.
    for (int spin = 0;
         spin < 2500 && consumer.active_version() < kVersions; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  stop_reader.store(true, std::memory_order_release);
  reader.join();
  consumer.stop();

  EXPECT_EQ(consumer.active_version(), kVersions);
  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(reads.load(), 0u);
  ASSERT_NE(consumer.active_model(), nullptr);
  EXPECT_EQ(consumer.active_model()->version(), kVersions);

  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(world->comm(1), 0).is_ok());
  server.join();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsumerChaos,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace viper::core
