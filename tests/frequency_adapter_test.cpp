// Tests for the Checkpoint Frequency Adapter (fig. 3 feedback loop) and
// the runtime-adaptation modes of the coupled experiment.
#include <gtest/gtest.h>

#include "viper/core/coupled_sim.hpp"
#include "viper/core/frequency_adapter.hpp"

namespace viper::core {
namespace {

FrequencyAdapter::Options base_options() {
  return FrequencyAdapter::Options{
      .initial_interval = 100,
      .min_interval = 10,
      .max_interval = 1000,
      .target_overhead_fraction = 0.05,
      .improvement_threshold = 0.01,
      .step = 2.0,
  };
}

TEST(FrequencyAdapter, StartsAtClampedInitialInterval) {
  auto options = base_options();
  options.initial_interval = 5;  // below min
  FrequencyAdapter adapter(options);
  EXPECT_EQ(adapter.current_interval(), 10);
}

TEST(FrequencyAdapter, WidensUnderStallPressure) {
  FrequencyAdapter adapter(base_options());
  // 10 s of training, 2 s stall = 20% overhead, way over the 5% target.
  const auto next = adapter.on_checkpoint(10.0, 2.0, 1.0, 0.9);
  EXPECT_EQ(next, 200);
  EXPECT_EQ(adapter.adjustments_up(), 1);
}

TEST(FrequencyAdapter, WidensWhenCurveFlattens) {
  FrequencyAdapter adapter(base_options());
  // Cheap checkpoint but negligible improvement: not worth the updates.
  const auto next = adapter.on_checkpoint(10.0, 0.1, 1.0, 0.999);
  EXPECT_EQ(next, 200);
}

TEST(FrequencyAdapter, TightensDuringFastProgress) {
  FrequencyAdapter adapter(base_options());
  // Cheap checkpoint, large improvement: keep the consumer fresher.
  const auto next = adapter.on_checkpoint(10.0, 0.1, 1.0, 0.5);
  EXPECT_EQ(next, 50);
  EXPECT_EQ(adapter.adjustments_down(), 1);
}

TEST(FrequencyAdapter, HoldsInTheComfortZone) {
  FrequencyAdapter adapter(base_options());
  // Moderate improvement, acceptable stall: no change.
  const auto next = adapter.on_checkpoint(10.0, 0.3, 1.0, 0.985);
  EXPECT_EQ(next, 100);
  EXPECT_EQ(adapter.adjustments_up(), 0);
  EXPECT_EQ(adapter.adjustments_down(), 0);
}

TEST(FrequencyAdapter, RespectsBounds) {
  FrequencyAdapter adapter(base_options());
  for (int i = 0; i < 20; ++i) adapter.on_checkpoint(10.0, 5.0, 1.0, 0.9);
  EXPECT_EQ(adapter.current_interval(), 1000);  // clamped at max
  for (int i = 0; i < 30; ++i) adapter.on_checkpoint(10.0, 0.0, 1.0, 0.1);
  EXPECT_EQ(adapter.current_interval(), 10);  // clamped at min
}

TEST(FrequencyAdapter, TracksLifetimeOverheadFraction) {
  FrequencyAdapter adapter(base_options());
  adapter.on_checkpoint(9.0, 1.0, 1.0, 0.9);
  adapter.on_checkpoint(11.0, 1.0, 0.9, 0.8);
  EXPECT_NEAR(adapter.observed_overhead_fraction(), 2.0 / 20.0, 1e-12);
}

// ---- Coupled-run integration --------------------------------------------

CoupledRunConfig tc1_adapter_config() {
  CoupledRunConfig config;
  config.profile = sim::app_profile(AppModel::kTc1);
  config.strategy = Strategy::kGpuAsync;
  config.frequency_adapter = FrequencyAdapter::Options{
      .initial_interval = 216,  // start at the epoch boundary
      .min_interval = 8,
      .max_interval = 2000,
      .target_overhead_fraction = 0.02,
      .improvement_threshold = 0.01,
      .step = 1.5,
  };
  return config;
}

TEST(AdapterRun, ProducesUpdatesAndAdjusts) {
  auto result = run_coupled_experiment(tc1_adapter_config());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_GT(result.value().checkpoints, 0);
  EXPECT_GT(result.value().adapter_ups + result.value().adapter_downs, 0);
  EXPECT_EQ(result.value().inferences_served,
            sim::app_profile(AppModel::kTc1).total_inferences);
}

TEST(AdapterRun, BeatsEpochBaselineOnTc1) {
  CoupledRunConfig baseline;
  baseline.profile = sim::app_profile(AppModel::kTc1);
  baseline.strategy = Strategy::kGpuAsync;
  baseline.schedule_kind = ScheduleKind::kEpochBaseline;
  const double base_cil = run_coupled_experiment(baseline).value().cil;
  const double adapted_cil =
      run_coupled_experiment(tc1_adapter_config()).value().cil;
  EXPECT_LT(adapted_cil, base_cil);
}

TEST(AdapterRun, RespectsOverheadTarget) {
  auto result = run_coupled_experiment(tc1_adapter_config()).value();
  // Total stall must stay in the vicinity of the 2% target of the window.
  EXPECT_LT(result.training_overhead, 0.05 * result.window_seconds);
}

// ---- Online refitting ----------------------------------------------------

TEST(RefitRun, RefitsAndStaysCorrect) {
  CoupledRunConfig config;
  config.profile = sim::app_profile(AppModel::kPtychoNN);
  config.strategy = Strategy::kGpuAsync;
  config.schedule_kind = ScheduleKind::kGreedy;
  config.refit_every = 500;
  auto result = run_coupled_experiment(config);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_GT(result.value().refits, 0);
  EXPECT_GT(result.value().checkpoints, 0);
  // Executed checkpoints must be strictly increasing.
  const auto& iters = result.value().schedule.iterations;
  for (std::size_t i = 1; i < iters.size(); ++i) {
    EXPECT_GT(iters[i], iters[i - 1]);
  }
}

TEST(RefitRun, StaysCompetitiveOnPtychoNN) {
  // Refitting yields a *more accurate* curve, which under the greedy
  // threshold rule can legitimately schedule FEWER late checkpoints (the
  // accurate fit knows the curve has converged). The requirement is that
  // refitting stays within a tight band of the warm-up-only schedule and
  // still beats the epoch baseline.
  CoupledRunConfig config;
  config.profile = sim::app_profile(AppModel::kPtychoNN);
  config.strategy = Strategy::kGpuAsync;
  config.schedule_kind = ScheduleKind::kGreedy;
  const double plain = run_coupled_experiment(config).value().cil;
  config.refit_every = 400;
  const double refit = run_coupled_experiment(config).value().cil;
  EXPECT_LT(refit, plain * 1.10);

  CoupledRunConfig baseline = config;
  baseline.refit_every = 0;
  baseline.schedule_kind = ScheduleKind::kEpochBaseline;
  EXPECT_LT(refit, run_coupled_experiment(baseline).value().cil);
}

TEST(RefitRun, NoRefitForNonGreedySchedules) {
  CoupledRunConfig config;
  config.profile = sim::app_profile(AppModel::kTc1);
  config.schedule_kind = ScheduleKind::kFixedInterval;
  config.refit_every = 500;
  auto result = run_coupled_experiment(config).value();
  EXPECT_EQ(result.refits, 0);
}

}  // namespace
}  // namespace viper::core
