// Tests for viper_sim: application profiles must stay consistent with the
// paper's published evaluation constants, and trajectories must be
// deterministic and well-shaped.
#include <gtest/gtest.h>

#include "viper/sim/app_profile.hpp"
#include "viper/sim/trajectory.hpp"

namespace viper::sim {
namespace {

class Profiles : public ::testing::TestWithParam<AppModel> {};

TEST_P(Profiles, ItersPerEpochMatchesDatasetMath) {
  const AppProfile p = app_profile(GetParam());
  EXPECT_EQ(p.iters_per_epoch, p.train_samples / p.batch_size);
  EXPECT_GT(p.warmup_epochs, 0);
  EXPECT_GT(p.t_train_mean, 0.0);
  EXPECT_GT(p.t_infer_mean, 0.0);
  EXPECT_GT(p.total_inferences, 0);
  EXPECT_EQ(p.model_bytes, nominal_model_bytes(GetParam()));
}

TEST_P(Profiles, LossCurveDecreasesTowardAsymptote) {
  const AppProfile p = app_profile(GetParam());
  TrajectoryGenerator gen(p);
  double prev = gen.true_loss(0);
  for (std::int64_t x = 100; x <= 5000; x += 100) {
    const double cur = gen.true_loss(x);
    EXPECT_LE(cur, prev + 1e-12) << "loss not monotone at " << x;
    prev = cur;
  }
  EXPECT_GT(gen.true_loss(0), p.curve.c);
}

INSTANTIATE_TEST_SUITE_P(AllApps, Profiles,
                         ::testing::Values(AppModel::kNt3A, AppModel::kNt3B,
                                           AppModel::kTc1, AppModel::kPtychoNN),
                         [](const auto& info) {
                           std::string name{to_string(info.param)};
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

TEST(Profiles, Tc1MatchesPaperEpochBoundary) {
  // §5.3 sets the TC1 update interval at "the epoch boundary (216
  // iterations)" — this constant anchors fig9.
  EXPECT_EQ(app_profile(AppModel::kTc1).iters_per_epoch, 216);
}

TEST(Profiles, BaselineCheckpointCountsMatchPaperTable1) {
  // #epoch-boundary checkpoints that fit in the fig10 serving windows must
  // land on Table 1's baseline column: NT3.B 7, TC1 16, PtychoNN 13.
  struct Case {
    AppModel app;
    int expected;
  };
  for (const Case c : {Case{AppModel::kNt3B, 7}, Case{AppModel::kTc1, 16},
                       Case{AppModel::kPtychoNN, 13}}) {
    const AppProfile p = app_profile(c.app);
    const double window = p.inference_window_seconds();
    const double epoch_seconds =
        static_cast<double>(p.iters_per_epoch) * p.t_train_mean;
    const int checkpoints = static_cast<int>(window / epoch_seconds);
    EXPECT_NEAR(checkpoints, c.expected, 1) << to_string(c.app);
  }
}

TEST(Trajectory, ObservedLossIsDeterministicAndOrderIndependent) {
  const AppProfile p = app_profile(AppModel::kTc1);
  TrajectoryGenerator forward(p, 99);
  TrajectoryGenerator backward(p, 99);
  std::vector<double> fwd, bwd;
  for (std::int64_t x = 0; x < 50; ++x) fwd.push_back(forward.observed_loss(x));
  for (std::int64_t x = 49; x >= 0; --x) bwd.push_back(backward.observed_loss(x));
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(fwd[i], bwd[49 - i]);
  }
}

TEST(Trajectory, DifferentSeedsGiveDifferentNoise) {
  const AppProfile p = app_profile(AppModel::kTc1);
  TrajectoryGenerator a(p, 1), b(p, 2);
  int differing = 0;
  for (std::int64_t x = 0; x < 100; ++x) {
    if (a.observed_loss(x) != b.observed_loss(x)) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Trajectory, ObservedLossStaysPositive) {
  const AppProfile p = app_profile(AppModel::kNt3A);
  TrajectoryGenerator gen(p, 7);
  for (std::int64_t x = 0; x < 2000; ++x) {
    EXPECT_GT(gen.observed_loss(x), 0.0);
  }
}

TEST(Trajectory, TimingSamplesStayNearMean) {
  const AppProfile p = app_profile(AppModel::kTc1);
  TrajectoryGenerator gen(p, 7);
  double total_train = 0.0, total_infer = 0.0;
  constexpr int kSamples = 2000;
  for (int i = 0; i < kSamples; ++i) {
    const double t = gen.sample_train_time();
    EXPECT_GE(t, p.t_train_mean * 0.5);
    EXPECT_LE(t, p.t_train_mean * 1.5);
    total_train += t;
    total_infer += gen.sample_infer_time();
  }
  EXPECT_NEAR(total_train / kSamples, p.t_train_mean, p.t_train_mean * 0.02);
  EXPECT_NEAR(total_infer / kSamples, p.t_infer_mean, p.t_infer_mean * 0.02);
}

TEST(Trajectory, WarmupLossesHaveWarmupLength) {
  const AppProfile p = app_profile(AppModel::kTc1);
  TrajectoryGenerator gen(p, 7);
  const auto warmup = gen.warmup_losses(p.warmup_iterations());
  EXPECT_EQ(warmup.size(),
            static_cast<std::size_t>(p.warmup_epochs * p.iters_per_epoch));
  // Warm-up must show a clear downward trend for the TLP to latch onto.
  EXPECT_GT(warmup.front(), warmup.back());
}

TEST(Trajectory, NegativeIterationClampsToZero) {
  const AppProfile p = app_profile(AppModel::kTc1);
  TrajectoryGenerator gen(p, 7);
  EXPECT_DOUBLE_EQ(gen.true_loss(-5), gen.true_loss(0));
  EXPECT_DOUBLE_EQ(gen.observed_loss(-5), gen.observed_loss(0));
}

}  // namespace
}  // namespace viper::sim
