// Tests for the public Viper facade (paper fig. 4's save_weights /
// load_weights API) and the metadata/notification helpers it rests on.
#include <gtest/gtest.h>

#include <thread>

#include "viper/core/api.hpp"

namespace viper::core {
namespace {

Model tiny_model() {
  Rng rng(21);
  Model m("demo");
  EXPECT_TRUE(
      m.add_tensor("w", Tensor::random(DType::kF32, Shape{64}, rng).value()).is_ok());
  return m;
}

TEST(Metadata, RoundTripsThroughKvStore) {
  kv::KvStore db;
  ModelMetadata in;
  in.name = "demo";
  in.version = 9;
  in.location = Location::kHostMemory;
  in.path = "ckpt/demo";
  in.size_bytes = 1234;
  in.cost_bytes = 4'700'000'000ULL;
  in.iteration = 777;
  in.train_loss = 0.125;
  put_metadata(db, in);

  auto out = get_metadata(db, "demo");
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value().name, in.name);
  EXPECT_EQ(out.value().version, in.version);
  EXPECT_EQ(out.value().location, in.location);
  EXPECT_EQ(out.value().path, in.path);
  EXPECT_EQ(out.value().size_bytes, in.size_bytes);
  EXPECT_EQ(out.value().cost_bytes, in.cost_bytes);
  EXPECT_EQ(out.value().iteration, in.iteration);
  EXPECT_DOUBLE_EQ(out.value().train_loss, in.train_loss);
}

TEST(Metadata, MalformedHashIsDataLoss) {
  kv::KvStore db;
  db.hset_all(metadata_key("bad"), {{"name", "bad"}, {"version", "not-a-number"}});
  EXPECT_EQ(get_metadata(db, "bad").status().code(), StatusCode::kDataLoss);
}

TEST(Notification, ParseRejectsGarbage) {
  EXPECT_FALSE(NotificationModule::parse({"ch", "no-version", 1}).is_ok());
  EXPECT_FALSE(NotificationModule::parse({"ch", "@5", 1}).is_ok());
  EXPECT_FALSE(NotificationModule::parse({"ch", "name@", 1}).is_ok());
  auto ok = NotificationModule::parse({"ch", "model@12", 1});
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value().model_name, "model");
  EXPECT_EQ(ok.value().version, 12u);
}

TEST(ViperApi, ProducerConsumerRoundTrip) {
  auto services = std::make_shared<SharedServices>();
  auto world = net::CommWorld::create(2);

  Viper producer({.role = Role::kProducer, .strategy = Strategy::kGpuAsync},
                 services, world->comm(0));
  Viper consumer({.role = Role::kConsumer, .producer_rank = 0}, services,
                 world->comm(1));

  std::thread server([&producer] { ASSERT_TRUE(producer.serve_transfers().is_ok()); });

  auto sub = consumer.subscribe("demo");
  ASSERT_TRUE(sub.is_ok());

  Model model = tiny_model();
  model.set_version(1);
  auto receipt = producer.save_weights("demo", model, 0.3);
  ASSERT_TRUE(receipt.is_ok()) << receipt.status().to_string();
  producer.drain();

  // The consumer is woken by the push notification, then pulls the model.
  auto event = sub.value().next(2.0);
  ASSERT_TRUE(event.is_ok());
  auto loaded = consumer.load_weights("demo");
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_TRUE(loaded.value().same_weights(model));

  ASSERT_TRUE(consumer.stop_transfer_server().is_ok());
  server.join();
  world->shutdown();
}

TEST(ViperApi, RoleMismatchIsFailedPrecondition) {
  auto services = std::make_shared<SharedServices>();
  auto world = net::CommWorld::create(2);
  Viper producer({.role = Role::kProducer}, services, world->comm(0));
  Viper consumer({.role = Role::kConsumer}, services, world->comm(1));

  EXPECT_EQ(consumer.save_weights("m", tiny_model()).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(producer.load_weights("m").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(producer.subscribe("m").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(consumer.serve_transfers().code(), StatusCode::kFailedPrecondition);
}

TEST(ViperApi, SaveReceiptCarriesModeledCosts) {
  auto services = std::make_shared<SharedServices>();
  auto world = net::CommWorld::create(1);
  Viper producer({.role = Role::kProducer, .strategy = Strategy::kHostSync},
                 services, world->comm(0));
  Model model = tiny_model();
  model.set_nominal_bytes(4'700'000'000ULL);
  model.set_version(1);
  auto receipt = producer.save_weights("demo", model);
  ASSERT_TRUE(receipt.is_ok());
  // 4.7 GB over host RDMA ≈ 2 s of modeled latency; real time is ms.
  EXPECT_GT(receipt.value().costs.update_latency, 1.0);
  EXPECT_LT(receipt.value().real_seconds, 1.0);
}

TEST(ViperApi, ConsumerSeesLatestAfterManySaves) {
  auto services = std::make_shared<SharedServices>();
  auto world = net::CommWorld::create(2);
  Viper producer({.role = Role::kProducer, .strategy = Strategy::kViperPfs},
                 services, world->comm(0));
  Viper consumer({.role = Role::kConsumer}, services, world->comm(1));

  Model model = tiny_model();
  Rng rng(9);
  for (std::uint64_t v = 1; v <= 5; ++v) {
    model.set_version(v);
    model.perturb_weights(rng, 0.01);
    ASSERT_TRUE(producer.save_weights("demo", model).is_ok());
  }
  producer.drain();
  auto loaded = consumer.load_weights("demo");
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().version(), 5u);
  EXPECT_TRUE(loaded.value().same_weights(model));
}

}  // namespace
}  // namespace viper::core
