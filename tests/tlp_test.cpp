// Tests for the Training Loss Predictor: curve fitting on warm-up data
// and the Eq. 1 time→iteration mapping.
#include <gtest/gtest.h>

#include <cmath>

#include "viper/core/tlp.hpp"
#include "viper/sim/trajectory.hpp"

namespace viper::core {
namespace {

std::vector<double> exp3_samples(double a, double b, double c, std::size_t n,
                                 double noise = 0.0, std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    ys[i] = a * std::exp(-b * static_cast<double>(i)) + c +
            (noise > 0 ? rng.normal(0, noise) : 0.0);
  }
  return ys;
}

TEST(Tlp, FitsCleanExp3Exactly) {
  const auto ys = exp3_samples(2.5, 0.002, 0.4, 1000);
  auto tlp = TrainingLossPredictor::fit(ys);
  ASSERT_TRUE(tlp.is_ok()) << tlp.status().to_string();
  EXPECT_LT(tlp.value().best_fit().mse, 1e-9);
  // Extrapolation beyond the fit window must track the true curve.
  for (double x : {1500.0, 3000.0, 5000.0}) {
    const double truth = 2.5 * std::exp(-0.002 * x) + 0.4;
    EXPECT_NEAR(tlp.value().loss_pred(x), truth, 0.01) << "at x=" << x;
  }
}

TEST(Tlp, FitsNoisyWarmupWithinTolerance) {
  const auto ys = exp3_samples(2.5, 0.002, 0.4, 1000, 0.02);
  auto tlp = TrainingLossPredictor::fit(ys);
  ASSERT_TRUE(tlp.is_ok());
  for (double x : {2000.0, 4000.0}) {
    const double truth = 2.5 * std::exp(-0.002 * x) + 0.4;
    EXPECT_NEAR(tlp.value().loss_pred(x), truth, 0.05);
  }
}

TEST(Tlp, AllFitsSortedByMse) {
  const auto ys = exp3_samples(2.0, 0.003, 0.3, 500, 0.01);
  auto tlp = TrainingLossPredictor::fit(ys);
  ASSERT_TRUE(tlp.is_ok());
  const auto& fits = tlp.value().all_fits();
  ASSERT_GE(fits.size(), 2u);
  for (std::size_t i = 1; i < fits.size(); ++i) {
    EXPECT_LE(fits[i - 1].mse, fits[i].mse);
  }
  EXPECT_EQ(tlp.value().best_fit().mse, fits.front().mse);
}

TEST(Tlp, Tc1WarmupSelectsExponentialFamily) {
  // The paper (fig5): Exp3 wins on CANDLE-TC1 warm-up loss.
  sim::TrajectoryGenerator gen(sim::app_profile(AppModel::kTc1), 7);
  const auto warmup = gen.warmup_losses(gen.profile().warmup_iterations());
  auto tlp = TrainingLossPredictor::fit(warmup);
  ASSERT_TRUE(tlp.is_ok());
  const auto family = tlp.value().best_fit().family;
  EXPECT_TRUE(family == math::CurveFamily::kExp3 ||
              family == math::CurveFamily::kExpd3)
      << "winner: " << to_string(family);
  EXPECT_NE(family, math::CurveFamily::kLin2);
}

TEST(Tlp, RejectsTinyWarmup) {
  const std::vector<double> ys{1.0, 0.9};
  EXPECT_FALSE(TrainingLossPredictor::fit(ys).is_ok());
}

TEST(Tlp, LossPredClampsBelowZeroAndNegativeX) {
  const auto ys = exp3_samples(1.0, 0.01, 0.0, 200);
  auto tlp = TrainingLossPredictor::fit(ys);
  ASSERT_TRUE(tlp.is_ok());
  EXPECT_GE(tlp.value().loss_pred(1e9), 0.0);
  EXPECT_DOUBLE_EQ(tlp.value().loss_pred(-5), tlp.value().loss_pred(0));
}

// ---- Eq. 1 get_iters ---------------------------------------------------

TEST(GetIters, NoStallReducesToDivision) {
  // 100 s at 0.1 s/iter with no checkpointing = 1000 iterations.
  EXPECT_EQ(TrainingLossPredictor::get_iters(100.0, 0, 0.1, 0.0), 1000);
}

TEST(GetIters, StallsSlowProgress) {
  // interval 10, t_train 1.0, t_p 5.0 → period 15 s per 10 iterations.
  EXPECT_EQ(TrainingLossPredictor::get_iters(150.0, 10, 1.0, 5.0), 100);
  // Without the stall the same time would train 150 iterations.
  EXPECT_EQ(TrainingLossPredictor::get_iters(150.0, 10, 1.0, 0.0), 150);
}

TEST(GetIters, PartialPeriodCountsRemainder) {
  // One full period (15 s → 10 iters) plus 7 s → 7 more iterations.
  EXPECT_EQ(TrainingLossPredictor::get_iters(22.0, 10, 1.0, 5.0), 17);
}

TEST(GetIters, RemainderClampedDuringStall) {
  // 12 s into a period of 15 s: 10 iterations done, stall in progress —
  // the remainder must clamp at the interval, never exceed it.
  EXPECT_EQ(TrainingLossPredictor::get_iters(12.0, 10, 1.0, 5.0), 10);
}

TEST(GetIters, ZeroAndNegativeTimes) {
  EXPECT_EQ(TrainingLossPredictor::get_iters(0.0, 10, 1.0, 5.0), 0);
  EXPECT_EQ(TrainingLossPredictor::get_iters(-3.0, 10, 1.0, 5.0), 0);
}

TEST(GetIters, MonotoneInTime) {
  std::int64_t prev = 0;
  for (double t = 0; t < 100; t += 0.73) {
    const std::int64_t iters = TrainingLossPredictor::get_iters(t, 7, 0.3, 1.1);
    EXPECT_GE(iters, prev) << "regression at t=" << t;
    prev = iters;
  }
}

TEST(GetIters, MoreStallNeverTrainsMore) {
  for (double t : {10.0, 50.0, 200.0}) {
    const auto fast = TrainingLossPredictor::get_iters(t, 5, 0.2, 0.1);
    const auto slow = TrainingLossPredictor::get_iters(t, 5, 0.2, 2.0);
    EXPECT_GE(fast, slow);
  }
}

}  // namespace
}  // namespace viper::core
