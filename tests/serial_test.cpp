// Unit + property tests for viper_serial: byte streams, CRC, and the two
// checkpoint formats (lean Viper vs h5py-like baseline).
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "viper/serial/byte_io.hpp"
#include "viper/serial/crc32.hpp"
#include "viper/serial/format.hpp"
#include "viper/tensor/architectures.hpp"

namespace viper::serial {
namespace {

Model make_test_model(DType dtype, std::int64_t n, std::uint64_t seed = 11) {
  Rng rng(seed);
  Model m("test-model");
  m.set_version(7);
  m.set_iteration(1234);
  m.set_nominal_bytes(4'700'000'000ULL);
  EXPECT_TRUE(m.add_tensor("layer0/w", Tensor::random(dtype, Shape{n}, rng).value()).is_ok());
  EXPECT_TRUE(m.add_tensor("layer0/b", Tensor::zeros(dtype, Shape{n, 2}).value()).is_ok());
  EXPECT_TRUE(m.add_tensor("scalar", Tensor::zeros(dtype, Shape{}).value()).is_ok());
  return m;
}

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE reference value).
  const char* s = "123456789";
  const auto* p = reinterpret_cast<const std::byte*>(s);
  EXPECT_EQ(crc32({p, 9}), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32({}), 0u);
  EXPECT_EQ(crc32_update(0x12345678u, {}), 0x12345678u);
}

// Bit-at-a-time CRC-32 (IEEE 802.3, reflected 0xEDB88320) — the textbook
// definition the slice-by-8 implementation must agree with byte for byte.
std::uint32_t crc32_reference(std::uint32_t crc,
                              std::span<const std::byte> data) {
  crc = ~crc;
  for (const std::byte b : data) {
    crc ^= static_cast<std::uint32_t>(b);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
  }
  return ~crc;
}

TEST(Crc32, SliceBy8MatchesBytewiseReference) {
  Rng rng(99);
  // Lengths straddling the 8-byte slicing stride and its alignment
  // prologue: empty, sub-stride, exact multiples, and odd tails.
  for (const std::size_t n : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u, 4097u}) {
    std::vector<std::byte> data(n);
    for (auto& b : data) b = static_cast<std::byte>(rng.uniform_int(0, 255));
    EXPECT_EQ(crc32(data), crc32_reference(0, data)) << "length " << n;
    // Misaligned start: the slice-by-8 prologue must cover it.
    if (n > 3) {
      const auto tail = std::span(data).subspan(3);
      EXPECT_EQ(crc32(tail), crc32_reference(0, tail)) << "length " << n;
    }
  }
}

TEST(Crc32, IncrementalMatchesOneShot) {
  std::vector<std::byte> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::byte>(i);
  const auto oneshot = crc32(data);
  std::uint32_t inc = crc32_update(0, std::span(data).first(400));
  inc = crc32_update(inc, std::span(data).subspan(400));
  EXPECT_EQ(inc, oneshot);
}

TEST(ByteIo, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0xBEEF);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64().value(), -42);
  EXPECT_DOUBLE_EQ(r.f64().value(), 3.14159);
  EXPECT_EQ(r.str().value(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteIo, TruncatedReadFails) {
  ByteWriter w;
  w.u32(1);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.u32().is_ok());
  auto more = r.u32();
  EXPECT_FALSE(more.is_ok());
  EXPECT_EQ(more.status().code(), StatusCode::kDataLoss);
}

TEST(ByteIo, StringSanityLimit) {
  ByteWriter w;
  w.u32(1u << 30);  // absurd length prefix
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.str().is_ok());
}

TEST(ByteIo, PadAndSkipAlign) {
  ByteWriter w;
  w.u8(1);
  w.pad_to(16);
  EXPECT_EQ(w.size(), 16u);
  w.u8(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8().value(), 1);
  EXPECT_TRUE(r.skip_to(16).is_ok());
  EXPECT_EQ(r.u8().value(), 2);
}

using FormatCase = std::tuple<const char*, DType, std::int64_t>;

class FormatRoundTrip
    : public ::testing::TestWithParam<FormatCase> {
 protected:
  std::unique_ptr<CheckpointFormat> make_format() const {
    return std::string(std::get<0>(GetParam())) == "viper" ? make_viper_format()
                                                           : make_h5like_format();
  }
};

TEST_P(FormatRoundTrip, PreservesEverything) {
  auto format = make_format();
  const Model original = make_test_model(std::get<1>(GetParam()), std::get<2>(GetParam()));
  auto blob = format->serialize(original);
  ASSERT_TRUE(blob.is_ok()) << blob.status().to_string();
  auto restored = format->deserialize(blob.value());
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  const Model& m = restored.value();
  EXPECT_EQ(m.name(), original.name());
  EXPECT_EQ(m.version(), original.version());
  EXPECT_EQ(m.iteration(), original.iteration());
  EXPECT_EQ(m.nominal_bytes(), original.nominal_bytes());
  EXPECT_TRUE(m.same_weights(original));
}

TEST_P(FormatRoundTrip, SerializedSizeIsExactAndSerializeIntoMatches) {
  auto format = make_format();
  const Model model = make_test_model(std::get<1>(GetParam()), std::get<2>(GetParam()));
  const auto blob = format->serialize(model).value();
  auto size = format->serialized_size(model);
  ASSERT_TRUE(size.is_ok()) << size.status().to_string();
  EXPECT_EQ(size.value(), blob.size());

  // In-place serialization into a caller-owned buffer is byte-identical.
  std::vector<std::byte> scratch(size.value());
  ASSERT_TRUE(format->serialize_into(model, scratch).is_ok());
  EXPECT_EQ(scratch, blob);

  // An undersized destination is rejected without writing.
  if (!scratch.empty()) {
    std::vector<std::byte> small(scratch.size() - 1);
    auto st = format->serialize_into(model, small);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
}

TEST_P(FormatRoundTrip, PooledSerializeRoundTrips) {
  auto format = make_format();
  const Model original = make_test_model(std::get<1>(GetParam()), std::get<2>(GetParam()));
  auto buffer = format->serialize_pooled(original);
  ASSERT_TRUE(buffer.is_ok()) << buffer.status().to_string();
  auto restored = format->deserialize(buffer.value().span());
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_TRUE(restored.value().same_weights(original));
}

TEST_P(FormatRoundTrip, DeserializeSharedAliasesBlob) {
  auto format = make_format();
  const Model original = make_test_model(std::get<1>(GetParam()), std::get<2>(GetParam()));
  const SharedBlob blob = std::make_shared<const std::vector<std::byte>>(
      format->serialize(original).value());
  auto restored = format->deserialize_shared(blob);
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_TRUE(restored.value().same_weights(original));
  for (const auto& [name, tensor] : restored.value().tensors()) {
    if (tensor.byte_size() == 0) continue;
    // Non-empty payloads are borrowed views into the shared blob, not
    // copies — the zero-copy decode invariant.
    EXPECT_FALSE(tensor.owns_payload()) << name;
    const auto* p = tensor.bytes().data();
    EXPECT_GE(p, blob->data()) << name;
    EXPECT_LE(p + tensor.byte_size(), blob->data() + blob->size()) << name;
  }
}

TEST_P(FormatRoundTrip, BorrowedTensorMaterializesOnWrite) {
  auto format = make_format();
  const Model original = make_test_model(std::get<1>(GetParam()), std::get<2>(GetParam()));
  const SharedBlob blob = std::make_shared<const std::vector<std::byte>>(
      format->serialize(original).value());
  const std::vector<std::byte> pristine = *blob;
  auto restored = format->deserialize_shared(blob);
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  for (auto& [name, tensor] : restored.value().mutable_tensors()) {
    if (tensor.byte_size() == 0) continue;
    tensor.mutable_bytes()[0] ^= std::byte{0xFF};
    EXPECT_TRUE(tensor.owns_payload()) << name;
  }
  // Writing through a borrowed tensor never touches the shared bytes.
  EXPECT_EQ(*blob, pristine);
}

INSTANTIATE_TEST_SUITE_P(
    FormatsAndDtypes, FormatRoundTrip,
    ::testing::Combine(::testing::Values("viper", "h5like"),
                       ::testing::Values(DType::kF32, DType::kF64, DType::kI32,
                                         DType::kU8),
                       ::testing::Values<std::int64_t>(0, 1, 257, 4096)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::string(to_string(std::get<1>(info.param))) + "_" +
             std::to_string(std::get<2>(info.param));
    });

class FormatCorruption : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<CheckpointFormat> make_format() const {
    return std::string(GetParam()) == "viper" ? make_viper_format()
                                              : make_h5like_format();
  }
};

TEST_P(FormatCorruption, DetectsBitFlip) {
  auto format = make_format();
  auto blob = format->serialize(make_test_model(DType::kF32, 128)).value();
  blob[blob.size() / 2] ^= std::byte{0x01};
  auto restored = format->deserialize(blob);
  ASSERT_FALSE(restored.is_ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss);
}

TEST_P(FormatCorruption, DetectsTruncation) {
  auto format = make_format();
  auto blob = format->serialize(make_test_model(DType::kF32, 128)).value();
  blob.resize(blob.size() / 2);
  EXPECT_FALSE(format->deserialize(blob).is_ok());
}

TEST_P(FormatCorruption, RejectsEmptyBlob) {
  auto format = make_format();
  EXPECT_FALSE(format->deserialize({}).is_ok());
}

TEST_P(FormatCorruption, RejectsForeignMagic) {
  auto format = make_format();
  std::vector<std::byte> junk(64, std::byte{0x5A});
  EXPECT_FALSE(format->deserialize(junk).is_ok());
}

INSTANTIATE_TEST_SUITE_P(BothFormats, FormatCorruption,
                         ::testing::Values("viper", "h5like"));

TEST(FormatOverhead, H5LikeCarriesMoreMetadataThanViper) {
  const Model model = build_app_model(AppModel::kTc1, {}).value();
  const auto lean = make_viper_format()->serialize(model).value();
  const auto h5 = make_h5like_format()->serialize(model).value();
  const std::uint64_t payload = model.payload_bytes();
  const auto lean_overhead = lean.size() - payload;
  const auto h5_overhead = h5.size() - payload;
  // The baseline's per-tensor attributes and chunk alignment dominate.
  EXPECT_GT(h5_overhead, 4 * lean_overhead);
  // Viper's own overhead stays tiny relative to the weights.
  EXPECT_LT(static_cast<double>(lean_overhead), 0.01 * static_cast<double>(payload));
}

TEST(FormatInterop, MagicBytesDiffer) {
  const Model model = make_test_model(DType::kF32, 4);
  const auto lean = make_viper_format()->serialize(model).value();
  const auto h5 = make_h5like_format()->serialize(model).value();
  EXPECT_NE(std::memcmp(lean.data(), h5.data(), 4), 0);
  // Cross-parsing must fail cleanly, not crash.
  EXPECT_FALSE(make_viper_format()->deserialize(h5).is_ok());
  EXPECT_FALSE(make_h5like_format()->deserialize(lean).is_ok());
}

}  // namespace
}  // namespace viper::serial
