// Broadcast fan-out plane tests: plan math (binomial tree / chain /
// sequential layouts), roster validation, topology choice, real
// multi-thread fan-outs with byte-identical delivery at every consumer,
// fault injection at a mid-tree relay (chunk drop healed in-hop, a
// partition recovered through the out-of-band fallback + subtree
// re-seed), and shared-blob reuse by co-located consumers (zero extra
// blob copies in the serial counters).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "viper/core/handler.hpp"
#include "viper/fault/fault.hpp"
#include "viper/net/comm.hpp"
#include "viper/obs/metrics.hpp"
#include "viper/parallel/broadcast_plane.hpp"
#include "viper/tensor/architectures.hpp"

namespace viper::parallel {
namespace {

std::vector<std::byte> make_payload(std::size_t size, std::uint8_t seed) {
  std::vector<std::byte> payload(size);
  for (std::size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<std::byte>((seed + i * 131) & 0xff);
  }
  return payload;
}

/// Disarm the process-global injector even when an assertion bails out.
struct ScopedInjection {
  explicit ScopedInjection(fault::FaultPlan plan) {
    fault::FaultInjector::global().arm(std::move(plan));
  }
  ~ScopedInjection() { fault::FaultInjector::global().disarm(); }
};

// ---- Plan math ------------------------------------------------------------

TEST(FanoutPlan, BinomialTreeChildrenAndParentsAreConsistent) {
  auto plan =
      plan_broadcast(BroadcastTopology::kTree, 9, {10, 11, 12, 13, 14, 15});
  ASSERT_TRUE(plan.is_ok());
  const FanoutPlan& tree = plan.value();
  EXPECT_EQ(tree.num_positions(), 7);

  // Hand-checked binomial layout for M=6 (largest subtree seeded first).
  EXPECT_EQ(tree.children_of(0), (std::vector<int>{4, 2, 1}));
  EXPECT_EQ(tree.children_of(1), (std::vector<int>{5, 3}));
  EXPECT_EQ(tree.children_of(2), (std::vector<int>{6}));
  for (int leaf : {3, 4, 5, 6}) {
    EXPECT_TRUE(tree.children_of(leaf).empty()) << "position " << leaf;
  }

  // parent_of inverts children_of, and every consumer position is fed by
  // exactly one parent.
  std::vector<int> fed(7, 0);
  for (int position = 0; position < tree.num_positions(); ++position) {
    for (int child : tree.children_of(position)) {
      EXPECT_EQ(tree.parent_of(child), position);
      ++fed[static_cast<std::size_t>(child)];
    }
  }
  EXPECT_EQ(tree.parent_of(0), -1);
  for (int position = 1; position < tree.num_positions(); ++position) {
    EXPECT_EQ(fed[static_cast<std::size_t>(position)], 1)
        << "position " << position;
  }

  // rank_at / position_of round-trip over a non-contiguous roster.
  EXPECT_EQ(tree.rank_at(0), 9);
  EXPECT_EQ(tree.rank_at(3), 12);
  EXPECT_EQ(tree.position_of(9).value(), 0);
  EXPECT_EQ(tree.position_of(15).value(), 6);
  EXPECT_FALSE(tree.position_of(99).is_ok());
}

TEST(FanoutPlan, ChainAndSequentialShapes) {
  const auto chain =
      plan_broadcast(BroadcastTopology::kChain, 0, {1, 2, 3}).value();
  EXPECT_EQ(chain.children_of(0), (std::vector<int>{1}));
  EXPECT_EQ(chain.children_of(2), (std::vector<int>{3}));
  EXPECT_TRUE(chain.children_of(3).empty());
  EXPECT_EQ(chain.parent_of(3), 2);

  const auto seq =
      plan_broadcast(BroadcastTopology::kSequential, 0, {1, 2, 3}).value();
  EXPECT_EQ(seq.children_of(0), (std::vector<int>{1, 2, 3}));
  for (int p : {1, 2, 3}) {
    EXPECT_TRUE(seq.children_of(p).empty());
    EXPECT_EQ(seq.parent_of(p), 0);
  }
}

TEST(FanoutPlan, PlanBroadcastValidatesRoster) {
  EXPECT_FALSE(plan_broadcast(BroadcastTopology::kTree, 0, {}).is_ok());
  EXPECT_FALSE(plan_broadcast(BroadcastTopology::kTree, -1, {1}).is_ok());
  EXPECT_FALSE(plan_broadcast(BroadcastTopology::kTree, 0, {1, -2}).is_ok());
  EXPECT_FALSE(plan_broadcast(BroadcastTopology::kTree, 0, {1, 1}).is_ok());
  EXPECT_FALSE(plan_broadcast(BroadcastTopology::kTree, 2, {1, 2}).is_ok());
}

TEST(FanoutPlan, ChooseTopologyMatchesRanking) {
  const auto link = net::polaris_host_rdma();
  auto best = choose_topology(1'000'000'000ULL, 16, link);
  ASSERT_TRUE(best.is_ok());
  const auto ranked = rank_topologies(1'000'000'000ULL, 16, link).value();
  EXPECT_EQ(best.value(), ranked.front().topology);
  EXPECT_FALSE(choose_topology(100, 0, link).is_ok());
}

// ---- Real fan-out over a comm world ---------------------------------------

class FanoutTopologies : public ::testing::TestWithParam<BroadcastTopology> {};

TEST_P(FanoutTopologies, DeliversByteIdenticalPayloadToEveryConsumer) {
  constexpr int kConsumers = 5;
  constexpr int kTag = 7;
  auto world = net::CommWorld::create(1 + kConsumers);
  const auto plan =
      plan_broadcast(GetParam(), 0, {1, 2, 3, 4, 5}).value();
  const auto payload = make_payload(512 * 1024, 0x5a);
  FanoutOptions options;
  options.stream.chunk_bytes = 64 * 1024;  // several chunks per hop
  options.stream.timeout_seconds = 5.0;

  const auto before = obs::MetricsRegistry::global().snapshot();
  std::vector<std::vector<std::byte>> received(kConsumers);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      auto got = broadcast_recv(world->comm(c + 1), plan, kTag, options);
      if (got.is_ok()) {
        received[static_cast<std::size_t>(c)] = std::move(got).value();
      } else {
        failures.fetch_add(1);
      }
    });
  }
  const Status sent = broadcast_send(world->comm(0), plan, kTag, payload, options);
  for (std::thread& thread : threads) thread.join();

  EXPECT_TRUE(sent.is_ok()) << sent.to_string();
  EXPECT_EQ(failures.load(), 0);
  for (int c = 0; c < kConsumers; ++c) {
    EXPECT_TRUE(received[static_cast<std::size_t>(c)] == payload)
        << "consumer " << c << " bytes differ";
  }

  // Relays carry what a sequential unicast would have pushed from the
  // root: bytes_saved accounts exactly for the non-root-fed consumers.
  const auto after = obs::MetricsRegistry::global().snapshot();
  const std::uint64_t root_fed = plan.children_of(0).size();
  EXPECT_EQ(after.counter_value("viper.bcast.bytes_saved_vs_sequential") -
                before.counter_value("viper.bcast.bytes_saved_vs_sequential"),
            payload.size() * (kConsumers - root_fed));
  const std::uint64_t relay_hops =
      after.counter_value("viper.bcast.relay_hops") -
      before.counter_value("viper.bcast.relay_hops");
  EXPECT_EQ(relay_hops, static_cast<std::uint64_t>(kConsumers) - root_fed);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, FanoutTopologies,
                         ::testing::Values(BroadcastTopology::kSequential,
                                           BroadcastTopology::kTree,
                                           BroadcastTopology::kChain));

TEST(BroadcastPlane, RecvRejectsRootAndUnknownRanks) {
  auto world = net::CommWorld::create(3);
  const auto plan =
      plan_broadcast(BroadcastTopology::kTree, 0, {1}).value();
  FanoutOptions options;
  options.stream.timeout_seconds = 0.05;
  auto as_root = broadcast_recv(world->comm(0), plan, 7, options);
  EXPECT_EQ(as_root.status().code(), StatusCode::kFailedPrecondition);
  auto outsider = broadcast_recv(world->comm(2), plan, 7, options);
  EXPECT_EQ(outsider.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(broadcast_send(world->comm(2), plan, 7, {}, options).code(),
            StatusCode::kFailedPrecondition);
}

// ---- Fault injection at a mid-tree relay ----------------------------------

// M=3 binomial tree: root (position 0) feeds positions 2 and 1; position
// 1 relays to position 3. Position 1 is the mid-tree relay under test.
TEST(BroadcastFaults, ChunkDropAtMidTreeRelayHealsInHop) {
  auto world = net::CommWorld::create(4);
  const auto plan = plan_broadcast(BroadcastTopology::kTree, 0, {1, 2, 3}).value();
  ASSERT_EQ(plan.children_of(1), (std::vector<int>{3}));

  // Drop one payload chunk on the relay's downstream hop; the reliable
  // stream re-sends under the hop retry budget.
  fault::FaultPlan fault_plan(11);
  auto rule = fault::FaultRule::drop_nth("net.send", 2);
  rule.src = plan.rank_at(1);
  rule.dst = plan.rank_at(3);
  fault_plan.add(rule);
  ScopedInjection injection(std::move(fault_plan));

  const auto payload = make_payload(64 * 1024, 0x21);
  FanoutOptions options;
  options.stream.chunk_bytes = 4 * 1024;
  options.stream.timeout_seconds = 0.3;
  options.ack_timeout_seconds = 0.5;

  std::vector<std::vector<std::byte>> received(3);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&, c] {
      auto got = broadcast_recv(world->comm(c + 1), plan, 7, options);
      if (got.is_ok()) {
        received[static_cast<std::size_t>(c)] = std::move(got).value();
      } else {
        failures.fetch_add(1);
      }
    });
  }
  const Status sent = broadcast_send(world->comm(0), plan, 7, payload, options);
  for (std::thread& thread : threads) thread.join();

  EXPECT_TRUE(sent.is_ok()) << sent.to_string();
  EXPECT_EQ(failures.load(), 0);
  for (int c = 0; c < 3; ++c) {
    EXPECT_TRUE(received[static_cast<std::size_t>(c)] == payload)
        << "consumer " << c;
  }
}

TEST(BroadcastFaults, PartitionedRelayFallsBackAndReseedsItsSubtree) {
  auto world = net::CommWorld::create(4);
  const auto plan = plan_broadcast(BroadcastTopology::kTree, 0, {1, 2, 3}).value();

  // Cut the root -> relay hop completely. The relay recovers the payload
  // out-of-band (the PFS-fallback contract) and re-seeds position 3.
  fault::FaultPlan fault_plan(13);
  fault_plan.add(fault::FaultRule::partition(plan.rank_at(0), plan.rank_at(1)));
  ScopedInjection injection(std::move(fault_plan));

  const auto payload = make_payload(96 * 1024, 0x77);
  FanoutOptions options;
  options.stream.chunk_bytes = 16 * 1024;
  options.stream.timeout_seconds = 0.15;
  options.ack_timeout_seconds = 0.1;
  options.hop_retry.max_attempts = 2;

  const auto before = obs::MetricsRegistry::global().snapshot();
  std::vector<std::vector<std::byte>> received(3);
  std::atomic<int> failures{0};
  std::atomic<int> fallbacks_used{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&, c] {
      const FanoutFallback fallback = [&] {
        fallbacks_used.fetch_add(1);
        return Result<std::vector<std::byte>>(payload);
      };
      auto got = broadcast_recv(world->comm(c + 1), plan, 7, options, fallback);
      if (got.is_ok()) {
        received[static_cast<std::size_t>(c)] = std::move(got).value();
      } else {
        failures.fetch_add(1);
      }
    });
  }
  // The root's hop to the partitioned relay fails after its retries; the
  // send keeps seeding the other child and reports the dead hop.
  const Status sent = broadcast_send(world->comm(0), plan, 7, payload, options);
  for (std::thread& thread : threads) thread.join();

  EXPECT_FALSE(sent.is_ok());
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(fallbacks_used.load(), 1);
  for (int c = 0; c < 3; ++c) {
    EXPECT_TRUE(received[static_cast<std::size_t>(c)] == payload)
        << "consumer " << c;
  }
  const auto after = obs::MetricsRegistry::global().snapshot();
  EXPECT_GE(after.counter_value("viper.bcast.fallbacks"),
            before.counter_value("viper.bcast.fallbacks") + 1);
}

// ---- Shared-blob reuse by co-located consumers ----------------------------

TEST(SharedBlobReuse, SecondConsumerDecodesOffTheCachedBlobWithZeroCopies) {
  auto services = std::make_shared<core::SharedServices>();
  auto world = net::CommWorld::create(3);
  core::ModelWeightsHandler::Options options;
  options.strategy = core::Strategy::kHostAsync;
  auto handler = std::make_shared<core::ModelWeightsHandler>(services, options);
  Model model = build_app_model(AppModel::kTc1, {}).value();
  model.set_version(3);
  ASSERT_TRUE(handler->save_weights("net", model).is_ok());
  handler->drain();
  std::thread server([&] { handler->serve_transfers(world->comm(0)); });

  auto cache = std::make_shared<core::VersionBlobCache>();
  core::ModelLoader::Options loader_options;
  loader_options.producer_rank = 0;
  loader_options.blob_cache = cache;

  // First co-located consumer pulls over the wire and publishes the blob.
  core::ModelLoader first(services, world->comm(1), loader_options);
  auto a = first.load_weights("net");
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();

  // Second consumer hits the cache: no fetch, no promote copy — its
  // tensors borrow straight from the shared blob.
  const auto before = obs::MetricsRegistry::global().snapshot();
  core::ModelLoader second(services, world->comm(2), loader_options);
  auto b = second.load_weights("net");
  const auto after = obs::MetricsRegistry::global().snapshot();
  ASSERT_TRUE(b.is_ok()) << b.status().to_string();
  EXPECT_TRUE(b.value().same_weights(model));
  EXPECT_EQ(after.counter_value("viper.serial.bytes_copied"),
            before.counter_value("viper.serial.bytes_copied"));
  EXPECT_EQ(after.counter_value("viper.bcast.shared_blob_hits"),
            before.counter_value("viper.bcast.shared_blob_hits") + 1);
  EXPECT_EQ(after.counter_value("viper.net.stream_chunks_received"),
            before.counter_value("viper.net.stream_chunks_received"));

  ASSERT_TRUE(
      core::ModelWeightsHandler::stop_transfer_server(world->comm(1), 0).is_ok());
  server.join();
}

}  // namespace
}  // namespace viper::parallel
