// Tests for the parallel checkpoint data plane: CRC combination math,
// sharded serialization equivalence, multi-channel striped streams (and
// their wire interop with plain streams), fault behavior, and the
// producer pipeline's in-order-commit + backpressure invariants.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "viper/common/rng.hpp"
#include "viper/common/thread_pool.hpp"
#include "viper/core/handler.hpp"
#include "viper/core/notification.hpp"
#include "viper/fault/fault.hpp"
#include "viper/net/stream.hpp"
#include "viper/obs/metrics.hpp"
#include "viper/serial/crc32.hpp"
#include "viper/serial/format.hpp"

namespace viper {
namespace {

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.uniform_int(0, 255));
  return out;
}

std::span<const std::byte> as_bytes(const char* text) {
  return {reinterpret_cast<const std::byte*>(text), std::strlen(text)};
}

// ---------------------------------------------------------------------------
// crc32_combine

TEST(Crc32Combine, KnownAnswerVectors) {
  // The classic CRC-32 check value pins the kernel itself...
  EXPECT_EQ(serial::crc32(as_bytes("123456789")), 0xCBF43926u);
  // ...and combine() must reproduce it from any split of the input.
  const std::uint32_t whole = serial::crc32(as_bytes("123456789"));
  EXPECT_EQ(serial::crc32_combine(serial::crc32(as_bytes("1234")),
                                  serial::crc32(as_bytes("56789")), 5),
            whole);
  EXPECT_EQ(serial::crc32_combine(serial::crc32(as_bytes("1")),
                                  serial::crc32(as_bytes("23456789")), 8),
            whole);
  EXPECT_EQ(serial::crc32_combine(serial::crc32(as_bytes("12345678")),
                                  serial::crc32(as_bytes("9")), 1),
            whole);
}

TEST(Crc32Combine, EmptyPiecesAreIdentities) {
  const std::uint32_t crc = serial::crc32(as_bytes("viper"));
  EXPECT_EQ(serial::crc32(std::span<const std::byte>{}), 0u);
  EXPECT_EQ(serial::crc32_combine(crc, 0u, 0), crc);      // empty suffix
  EXPECT_EQ(serial::crc32_combine(0u, crc, 5), crc);      // empty prefix
}

TEST(Crc32Combine, RandomSplitsMatchWholeBufferCrc) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto data = random_bytes(1 + (seed * 37'123) % 200'000, seed);
    const std::uint32_t whole = serial::crc32(data);
    Rng rng(seed ^ 0xc0de);
    for (int i = 0; i < 4; ++i) {
      const auto split = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(data.size())));
      const std::span<const std::byte> view(data);
      const std::uint32_t left = serial::crc32(view.subspan(0, split));
      const std::uint32_t right = serial::crc32(view.subspan(split));
      EXPECT_EQ(serial::crc32_combine(left, right, data.size() - split), whole)
          << "seed " << seed << " split " << split;
    }
  }
}

TEST(Crc32Combine, ZeroOpMatchesGeneralCombine) {
  const auto data = random_bytes(64 * 1024, 99);
  const std::span<const std::byte> view(data);
  constexpr std::size_t kChunk = 4096;
  const serial::Crc32ZeroOp op(kChunk);
  std::uint32_t folded = serial::crc32(view.subspan(0, kChunk));
  for (std::size_t off = kChunk; off < data.size(); off += kChunk) {
    const std::uint32_t piece = serial::crc32(view.subspan(off, kChunk));
    const std::uint32_t expect = serial::crc32_combine(folded, piece, kChunk);
    folded = op.combine(folded, piece);
    EXPECT_EQ(folded, expect);
  }
  EXPECT_EQ(folded, serial::crc32(data));
}

TEST(ParallelCrc32, MatchesSerialKernelAcrossSizesAndWidths) {
  ThreadPool pool(ThreadPool::Options{3});
  for (const std::size_t size :
       {std::size_t{0}, std::size_t{1}, std::size_t{1000},
        std::size_t{64 * 1024}, std::size_t{1 << 20}}) {
    const auto data = random_bytes(size, size + 7);
    const std::uint32_t expect = serial::crc32(data);
    for (const int parts : {1, 2, 3, 8}) {
      EXPECT_EQ(serial::parallel_crc32(data, pool, parts), expect)
          << size << " bytes, " << parts << " parts";
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded serialization

Model big_model(std::uint64_t seed, int tensors = 6, int elems = 80'000) {
  Rng rng(seed);
  Model m("shardnet");
  for (int i = 0; i < tensors; ++i) {
    // ~312 KiB per f32 tensor: big enough that shard_plan splits.
    auto t = Tensor::random(DType::kF32, Shape{elems}, rng);
    EXPECT_TRUE(t.is_ok());
    EXPECT_TRUE(m.add_tensor("t" + std::to_string(i), std::move(t).value()).is_ok());
  }
  return m;
}

TEST(ShardedSerialize, ByteIdenticalToSerialPath) {
  ThreadPool pool(ThreadPool::Options{4});
  const Model model = big_model(3);
  auto format = serial::make_viper_format();
  auto serial_blob = format->serialize_pooled(model);
  ASSERT_TRUE(serial_blob.is_ok());
  for (const int shards : {0, 2, 3, 16}) {
    auto sharded = format->serialize_pooled_sharded(model, pool, shards);
    ASSERT_TRUE(sharded.is_ok()) << sharded.status().to_string();
    EXPECT_EQ(sharded.value().vec(), serial_blob.value().vec())
        << "max_shards " << shards;
  }
}

TEST(ShardedSerialize, SmallModelFallsBackAndStillMatches) {
  ThreadPool pool(ThreadPool::Options{4});
  Rng rng(11);
  Model m("tiny");
  ASSERT_TRUE(
      m.add_tensor("w", Tensor::random(DType::kF32, Shape{16}, rng).value()).is_ok());
  auto format = serial::make_viper_format();
  auto serial_blob = format->serialize_pooled(m);
  auto sharded = format->serialize_pooled_sharded(m, pool, 8);
  ASSERT_TRUE(serial_blob.is_ok());
  ASSERT_TRUE(sharded.is_ok());
  EXPECT_EQ(sharded.value().vec(), serial_blob.value().vec());
}

TEST(ShardedSerialize, UnsupportedFormatFallsBack) {
  ThreadPool pool(ThreadPool::Options{2});
  const Model model = big_model(5, 3);
  auto h5 = serial::make_h5like_format();
  auto serial_blob = h5->serialize_pooled(model);
  auto sharded = h5->serialize_pooled_sharded(model, pool, 4);
  ASSERT_TRUE(serial_blob.is_ok());
  ASSERT_TRUE(sharded.is_ok());
  EXPECT_EQ(sharded.value().vec(), serial_blob.value().vec());
}

TEST(ShardedSerialize, PlanPartitionsContiguouslyAtRecordBoundaries) {
  const Model model = big_model(7);
  auto format = serial::make_viper_format();
  auto plan = format->shard_plan(model, 4);
  ASSERT_TRUE(plan.is_ok());
  const auto& p = plan.value();
  ASSERT_GE(p.shards.size(), 2u);
  EXPECT_EQ(p.shards.front().offset, 0u);
  std::size_t covered = 0;
  std::size_t records = 0;
  for (std::size_t i = 0; i < p.shards.size(); ++i) {
    const auto& shard = p.shards[i];
    EXPECT_EQ(shard.offset, covered) << "shard " << i << " not contiguous";
    covered += shard.bytes;
    EXPECT_EQ(shard.first_record, records);
    records += shard.num_records;
    if (i > 0) EXPECT_GE(shard.num_records, 1u);
  }
  EXPECT_EQ(covered + p.trailer_bytes, p.total_bytes);
  EXPECT_EQ(records, model.num_tensors());
}

TEST(ShardedSerialize, RoundTripsThroughDeserialize) {
  ThreadPool pool(ThreadPool::Options{4});
  const Model model = big_model(13);
  auto format = serial::make_viper_format();
  auto sharded = format->serialize_pooled_sharded(model, pool, 4);
  ASSERT_TRUE(sharded.is_ok());
  auto blob = std::move(sharded).value().share();
  auto loaded = format->deserialize_shared(blob, 0);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_TRUE(loaded.value().same_weights(model));
}

// ---------------------------------------------------------------------------
// Striped streams

constexpr int kTag = 77;

TEST(StripedStream, RoundTripsAcrossThreads) {
  auto world = net::CommWorld::create(2);
  const auto payload = random_bytes(1'500'000, 21);
  net::StripedStreamOptions options;
  options.stream.chunk_bytes = 64 * 1024;
  options.num_channels = 4;
  std::thread sender([&] {
    ASSERT_TRUE(
        net::striped_stream_send(world->comm(0), 1, kTag, payload, options)
            .is_ok());
  });
  auto received = net::striped_stream_recv(world->comm(1), 0, kTag, options);
  sender.join();
  ASSERT_TRUE(received.is_ok()) << received.status().to_string();
  EXPECT_EQ(received.value(), payload);
}

class StripedSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StripedSizes, ExactReassembly) {
  auto world = net::CommWorld::create(2);
  const auto payload = random_bytes(GetParam(), 23);
  net::StripedStreamOptions options;
  options.stream.chunk_bytes = 1024;
  options.num_channels = 3;
  std::thread sender([&] {
    ASSERT_TRUE(
        net::striped_stream_send(world->comm(0), 1, kTag, payload, options)
            .is_ok());
  });
  auto received = net::striped_stream_recv(world->comm(1), 0, kTag, options);
  sender.join();
  ASSERT_TRUE(received.is_ok()) << received.status().to_string();
  EXPECT_EQ(received.value(), payload);
}

INSTANTIATE_TEST_SUITE_P(BoundaryCases, StripedSizes,
                         ::testing::Values(0, 1, 1023, 1024, 1025, 3072, 10'000));

TEST(StripedStream, PlainReceiverReadsStripedSender) {
  // Same wire format: a striped sender's chunks reassemble on a plain
  // stream_recv (chunk arrival order is the only difference).
  auto world = net::CommWorld::create(2);
  const auto payload = random_bytes(300'000, 29);
  net::StripedStreamOptions options;
  options.stream.chunk_bytes = 16 * 1024;
  options.num_channels = 4;
  std::thread sender([&] {
    ASSERT_TRUE(
        net::striped_stream_send(world->comm(0), 1, kTag, payload, options)
            .is_ok());
  });
  auto received = net::stream_recv(world->comm(1), 0, kTag);
  sender.join();
  ASSERT_TRUE(received.is_ok()) << received.status().to_string();
  EXPECT_EQ(received.value(), payload);
}

TEST(StripedStream, StripedReceiverReadsPlainSender) {
  auto world = net::CommWorld::create(2);
  const auto payload = random_bytes(300'000, 31);
  std::thread sender([&] {
    ASSERT_TRUE(net::stream_send(world->comm(0), 1, kTag, payload,
                                 {.chunk_bytes = 16 * 1024})
                    .is_ok());
  });
  net::StripedStreamOptions options;
  options.num_channels = 4;
  auto received = net::striped_stream_recv(world->comm(1), 0, kTag, options);
  sender.join();
  ASSERT_TRUE(received.is_ok()) << received.status().to_string();
  EXPECT_EQ(received.value(), payload);
}

TEST(StripedStreamFaults, SurvivesDelayReordering) {
  // Random per-message delays shuffle cross-lane arrival order; the
  // chunk-indexed reassembly must still produce exact bytes.
  auto world = net::CommWorld::create(2);
  const auto payload = random_bytes(128 * 1024, 37);
  fault::ScopedPlan chaos{fault::FaultPlan(41).add(
      fault::FaultRule::delay("net.send", 0.002, 0.5))};
  net::StripedStreamOptions options;
  options.stream.chunk_bytes = 4 * 1024;
  options.stream.timeout_seconds = 10.0;
  options.num_channels = 4;
  std::thread sender([&] {
    ASSERT_TRUE(
        net::striped_stream_send(world->comm(0), 1, kTag, payload, options)
            .is_ok());
  });
  auto received = net::striped_stream_recv(world->comm(1), 0, kTag, options);
  sender.join();
  ASSERT_TRUE(received.is_ok()) << received.status().to_string();
  EXPECT_EQ(received.value(), payload);
  EXPECT_GT(fault::FaultInjector::global().report().delays, 0u);
}

TEST(StripedStreamFaults, CorruptionNeverYieldsWrongBytes) {
  auto world = net::CommWorld::create(2);
  const auto payload = random_bytes(32 * 1024, 43);
  fault::ScopedPlan chaos{
      fault::FaultPlan(47).add(fault::FaultRule::corrupt("net.send"))};
  net::StripedStreamOptions options;
  options.stream.chunk_bytes = 2 * 1024;
  options.stream.timeout_seconds = 0.2;
  options.num_channels = 4;
  std::thread sender([&] {
    (void)net::striped_stream_send(world->comm(0), 1, kTag, payload, options);
  });
  auto received = net::striped_stream_recv(world->comm(1), 0, kTag, options);
  sender.join();
  ASSERT_FALSE(received.is_ok());
  EXPECT_TRUE(received.status().code() == StatusCode::kDataLoss ||
              received.status().code() == StatusCode::kTimeout)
      << received.status().to_string();
}

TEST(StripedStreamFaults, DroppedChunkTimesOutInsteadOfTearing) {
  auto world = net::CommWorld::create(2);
  const auto payload = random_bytes(32 * 1024, 53);
  fault::ScopedPlan chaos{
      fault::FaultPlan(59).add(fault::FaultRule::drop_nth("net.send", 4))};
  net::StripedStreamOptions options;
  options.stream.chunk_bytes = 2 * 1024;
  options.stream.timeout_seconds = 0.2;
  options.num_channels = 4;
  std::thread sender([&] {
    (void)net::striped_stream_send(world->comm(0), 1, kTag, payload, options);
  });
  auto received = net::striped_stream_recv(world->comm(1), 0, kTag, options);
  sender.join();
  ASSERT_FALSE(received.is_ok());
  EXPECT_EQ(received.status().code(), StatusCode::kTimeout);
}

// ---------------------------------------------------------------------------
// Pipelined producer

TEST(PipelinedProducer, CommitsVersionsInOrderUnderChaoticStageTiming) {
  auto services = std::make_shared<core::SharedServices>();
  core::NotificationModule notifications(services->bus);
  auto subscription = notifications.subscribe("shardnet");

  // Randomly delay both the memory-tier store and the PFS flush so stage
  // completion times interleave across versions; the engine's FIFO must
  // still publish versions in submission order.
  fault::ScopedPlan chaos{
      fault::FaultPlan(61)
          .add(fault::FaultRule::delay("memsys.host-dram.put", 0.003, 0.5))
          .add(fault::FaultRule::delay("memsys.lustre-pfs.put", 0.006, 0.5))};

  core::ModelWeightsHandler::Options options;
  options.strategy = core::Strategy::kHostAsync;
  options.pipeline_depth = 2;
  options.serialize_shards = 4;
  core::ModelWeightsHandler handler(services, options);

  constexpr int kVersions = 8;
  for (int i = 1; i <= kVersions; ++i) {
    Model model = big_model(100 + static_cast<std::uint64_t>(i), 3, 40'000);
    model.set_version(static_cast<std::uint64_t>(i));
    auto receipt = handler.save_weights("shardnet", model, 0.5);
    ASSERT_TRUE(receipt.is_ok()) << receipt.status().to_string();
  }
  handler.drain();
  EXPECT_EQ(handler.saves_completed(), static_cast<std::uint64_t>(kVersions));

  for (int i = 1; i <= kVersions; ++i) {
    auto event = subscription.next(5.0);
    ASSERT_TRUE(event.is_ok()) << event.status().to_string();
    auto update = core::NotificationModule::parse(event.value());
    ASSERT_TRUE(update.is_ok());
    EXPECT_EQ(update.value().version, static_cast<std::uint64_t>(i))
        << "versions published out of order";
  }
}

TEST(PipelinedProducer, DepthGateAppliesBackpressure) {
  auto services = std::make_shared<core::SharedServices>();
  // Slow flushes keep slots occupied so later saves must wait at the gate.
  fault::ScopedPlan chaos{fault::FaultPlan(67).add(
      fault::FaultRule::delay("memsys.lustre-pfs.put", 0.02))};

  core::ModelWeightsHandler::Options options;
  options.strategy = core::Strategy::kHostAsync;
  options.pipeline_depth = 1;
  core::ModelWeightsHandler handler(services, options);

  auto& waits = obs::MetricsRegistry::global().histogram(
      "viper.core.pipeline_wait_seconds");
  const std::uint64_t waits_before = waits.count();
  for (int i = 1; i <= 4; ++i) {
    Model model = big_model(200 + static_cast<std::uint64_t>(i), 2, 20'000);
    model.set_version(static_cast<std::uint64_t>(i));
    ASSERT_TRUE(handler.save_weights("shardnet", model, 0.5).is_ok());
  }
  handler.drain();
  // With depth 1 and 20ms flushes, at least one later save must have
  // blocked on the gate.
  EXPECT_GT(waits.count(), waits_before);
}

}  // namespace
}  // namespace viper
