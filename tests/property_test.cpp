// Cross-module property sweeps: cost-model monotonicity, predictor vs
// execution consistency, arrival-process robustness, schedule invariants
// across the full app × strategy × schedule matrix.
#include <gtest/gtest.h>

#include <tuple>

#include "viper/core/coupled_sim.hpp"
#include "viper/sim/trajectory.hpp"

namespace viper::core {
namespace {

// ---- Platform cost monotonicity -------------------------------------------

class CostMonotonicity : public ::testing::TestWithParam<Strategy> {};

TEST_P(CostMonotonicity, LatencyNondecreasingInBytes) {
  const PlatformModel platform = PlatformModel::polaris();
  double prev_latency = 0.0;
  double prev_stall = 0.0;
  for (std::uint64_t bytes = 1'000'000; bytes <= 8'000'000'000ULL; bytes *= 2) {
    const PathCosts costs = platform.update_costs(GetParam(), bytes, 10);
    EXPECT_GE(costs.update_latency, prev_latency) << "at " << bytes;
    EXPECT_GE(costs.producer_stall, prev_stall) << "at " << bytes;
    prev_latency = costs.update_latency;
    prev_stall = costs.producer_stall;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, CostMonotonicity,
                         ::testing::ValuesIn(all_strategies()),
                         [](const auto& info) {
                           std::string name{to_string(info.param)};
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---- Predictor vs execution consistency ------------------------------------

using MatrixCase = std::tuple<AppModel, ScheduleKind, Strategy>;

class PredictionConsistency : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(PredictionConsistency, PredictedCilTracksExecutedCil) {
  CoupledRunConfig config;
  config.profile = sim::app_profile(std::get<0>(GetParam()));
  config.schedule_kind = std::get<1>(GetParam());
  config.strategy = std::get<2>(GetParam());
  auto result = run_coupled_experiment(config);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const double predicted = result.value().schedule.predicted_cil;
  const double executed = result.value().cil;
  ASSERT_GT(predicted, 0.0);
  // The IPP plans from a warm-up-fitted curve; execution adds noise,
  // integer effects and delivery staleness the closed form ignores. 20%
  // is the loose envelope — TC1 lands within 1%, the worst case is
  // PtychoNN's steep curve over the slow PFS path (~17%).
  EXPECT_NEAR(executed / predicted, 1.0, 0.20)
      << "predicted " << predicted << " executed " << executed;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PredictionConsistency,
    ::testing::Combine(::testing::Values(AppModel::kNt3B, AppModel::kTc1,
                                         AppModel::kPtychoNN),
                       ::testing::Values(ScheduleKind::kEpochBaseline,
                                         ScheduleKind::kFixedInterval,
                                         ScheduleKind::kGreedy),
                       ::testing::Values(Strategy::kGpuAsync,
                                         Strategy::kViperPfs)),
    [](const auto& info) {
      std::string name{to_string(std::get<0>(info.param))};
      name += "_";
      name += to_string(std::get<1>(info.param));
      name += "_";
      name += to_string(std::get<2>(info.param));
      for (char& c : name) {
        if (c == '.' || c == '-') c = '_';
      }
      return name;
    });

// ---- Arrival-process robustness --------------------------------------------

TEST(PoissonArrivals, CilRobustToArrivalProcess) {
  // The IPP assumes fixed-rate requests (fig. 6); Poisson arrivals at the
  // same mean rate must not change the measured CIL by more than a few
  // percent, or the assumption would be fragile.
  CoupledRunConfig config;
  config.profile = sim::app_profile(AppModel::kTc1);
  config.schedule_kind = ScheduleKind::kFixedInterval;
  const double fixed_rate = run_coupled_experiment(config).value().cil;
  config.poisson_arrivals = true;
  const double poisson = run_coupled_experiment(config).value().cil;
  EXPECT_NEAR(poisson / fixed_rate, 1.0, 0.05);
}

TEST(PoissonArrivals, ServesFullBudget) {
  CoupledRunConfig config;
  config.profile = sim::app_profile(AppModel::kNt3B);
  config.poisson_arrivals = true;
  const auto result = run_coupled_experiment(config).value();
  EXPECT_EQ(result.inferences_served, config.profile.total_inferences);
}

// ---- Jittered costs ---------------------------------------------------------

TEST(JitteredCosts, StaysNearDeterministicRun) {
  CoupledRunConfig config;
  config.profile = sim::app_profile(AppModel::kTc1);
  config.schedule_kind = ScheduleKind::kEpochBaseline;
  const auto exact = run_coupled_experiment(config).value();
  config.jitter_costs = true;
  const auto jittered = run_coupled_experiment(config).value();
  EXPECT_NEAR(jittered.cil / exact.cil, 1.0, 0.03);
  EXPECT_NEAR(jittered.training_overhead / exact.training_overhead, 1.0, 0.25);
}

// ---- Schedule invariants across the matrix ----------------------------------

class ScheduleInvariants
    : public ::testing::TestWithParam<std::tuple<AppModel, ScheduleKind>> {};

TEST_P(ScheduleInvariants, CheckpointsSortedInWindowAndCausal) {
  CoupledRunConfig config;
  config.profile = sim::app_profile(std::get<0>(GetParam()));
  config.schedule_kind = std::get<1>(GetParam());
  const auto result = run_coupled_experiment(config).value();

  const std::int64_t s_iter = config.profile.warmup_iterations();
  std::int64_t prev_iter = s_iter;
  double prev_ready = 0.0;
  for (const auto& update : result.updates) {
    EXPECT_GT(update.capture_iteration, prev_iter);
    EXPECT_LE(update.triggered_at, result.window_seconds);
    EXPECT_GT(update.ready_at, update.triggered_at);
    EXPECT_GE(update.ready_at, prev_ready);  // deliveries are ordered
    prev_iter = update.capture_iteration;
    prev_ready = update.ready_at;
  }
  // CIL is bounded by worst/best constant-loss extremes.
  const double worst =
      static_cast<double>(result.inferences_served) *
      sim::TrajectoryGenerator(config.profile, config.seed).true_loss(0);
  EXPECT_LT(result.cil, worst);
  EXPECT_GT(result.cil, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ScheduleInvariants,
    ::testing::Combine(::testing::Values(AppModel::kNt3B, AppModel::kTc1,
                                         AppModel::kPtychoNN),
                       ::testing::Values(ScheduleKind::kEpochBaseline,
                                         ScheduleKind::kFixedInterval,
                                         ScheduleKind::kGreedy)),
    [](const auto& info) {
      std::string name{to_string(std::get<0>(info.param))};
      name += "_";
      name += to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '.' || c == '-') c = '_';
      }
      return name;
    });

// ---- Seed sensitivity --------------------------------------------------------

TEST(SeedSweep, OrderingsHoldAcrossSeeds) {
  // The fig10 ordering (optimized < baseline) must not be a seed artifact.
  for (std::uint64_t seed : {1ULL, 42ULL, 2024ULL, 31337ULL}) {
    CoupledRunConfig config;
    config.profile = sim::app_profile(AppModel::kTc1);
    config.seed = seed;
    config.schedule_kind = ScheduleKind::kEpochBaseline;
    const double baseline = run_coupled_experiment(config).value().cil;
    config.schedule_kind = ScheduleKind::kFixedInterval;
    const double fixed = run_coupled_experiment(config).value().cil;
    config.schedule_kind = ScheduleKind::kGreedy;
    const double greedy = run_coupled_experiment(config).value().cil;
    EXPECT_LT(fixed, baseline) << "seed " << seed;
    EXPECT_LT(greedy, baseline) << "seed " << seed;
  }
}

}  // namespace
}  // namespace viper::core
