// Tests for the checkpoint buffer pool: bucketing/reuse semantics, the
// share()-returns-to-pool lifecycle, counter accounting, a multithreaded
// hammer (also run under ThreadSanitizer by scripts/verify.sh), and a
// pooled serialize/deserialize fuzz across every dtype.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "viper/common/thread_pool.hpp"
#include "viper/serial/buffer_pool.hpp"
#include "viper/serial/format.hpp"
#include "viper/tensor/model.hpp"

namespace viper::serial {
namespace {

TEST(BufferPool, AcquireGivesExactSize) {
  BufferPool pool;
  for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                              std::size_t{4096}, std::size_t{4097},
                              std::size_t{1} << 20}) {
    PooledBuffer buffer = pool.acquire(n);
    EXPECT_EQ(buffer.size(), n);
    EXPECT_EQ(buffer.span().size(), n);
  }
}

TEST(BufferPool, ReusesReturnedStorage) {
  BufferPool pool;
  const std::byte* first_data = nullptr;
  {
    PooledBuffer buffer = pool.acquire(1 << 16);
    first_data = buffer.span().data();
  }  // destructor returns the storage
  EXPECT_GT(pool.cached_bytes(), 0u);
  PooledBuffer again = pool.acquire(1 << 16);
  EXPECT_EQ(again.span().data(), first_data);
  EXPECT_EQ(pool.cached_buffers(), 0u);
}

TEST(BufferPool, BucketsByPowerOfTwo) {
  BufferPool pool;
  {
    PooledBuffer buffer = pool.acquire(5000);  // lands in the 8 KiB bucket
  }
  // A request within the same bucket is served by the cached buffer even
  // though the byte count differs.
  const std::size_t cached = pool.cached_bytes();
  EXPECT_GE(cached, 5000u);
  PooledBuffer hit = pool.acquire(8192);
  EXPECT_EQ(hit.size(), 8192u);
  EXPECT_EQ(pool.cached_bytes(), 0u);
}

TEST(BufferPool, TinyBuffersAreNotPooled) {
  BufferPool pool;
  // Externally-grown storage below the pooling floor is freed, not cached.
  std::vector<std::byte> tiny(16);
  pool.release(std::move(tiny));
  EXPECT_EQ(pool.cached_bytes(), 0u);
  EXPECT_EQ(pool.cached_buffers(), 0u);
}

TEST(BufferPool, PerBucketCapEvicts) {
  BufferPool::Options options;
  options.max_buffers_per_bucket = 2;
  BufferPool pool(options);
  {
    PooledBuffer a = pool.acquire(1 << 16);
    PooledBuffer b = pool.acquire(1 << 16);
    PooledBuffer c = pool.acquire(1 << 16);
  }
  EXPECT_EQ(pool.cached_buffers(), 2u);
}

TEST(BufferPool, TrimDropsEverything) {
  BufferPool pool;
  { PooledBuffer buffer = pool.acquire(1 << 18); }
  EXPECT_GT(pool.cached_bytes(), 0u);
  pool.trim();
  EXPECT_EQ(pool.cached_bytes(), 0u);
  EXPECT_EQ(pool.cached_buffers(), 0u);
}

TEST(BufferPool, ShareReturnsStorageOnLastRelease) {
  BufferPool pool;
  const std::byte* data = nullptr;
  {
    PooledBuffer buffer = pool.acquire(1 << 16);
    data = buffer.span().data();
    SharedBlob blob = std::move(buffer).share();
    ASSERT_NE(blob, nullptr);
    EXPECT_EQ(blob->data(), data);
    SharedBlob alias = blob;  // second reference keeps it alive
    blob.reset();
    EXPECT_EQ(pool.cached_bytes(), 0u);  // still referenced
  }
  // Last reference gone — the storage is back in the pool.
  EXPECT_GT(pool.cached_bytes(), 0u);
  PooledBuffer again = pool.acquire(1 << 16);
  EXPECT_EQ(again.span().data(), data);
}

TEST(BufferPool, TakeDetachesFromPool) {
  BufferPool pool;
  PooledBuffer buffer = pool.acquire(1 << 16);
  std::vector<std::byte> owned = std::move(buffer).take();
  EXPECT_EQ(owned.size(), std::size_t{1} << 16);
  owned.clear();
  EXPECT_EQ(pool.cached_bytes(), 0u);
}

TEST(BufferPool, HitMissCountersAdvance) {
  SerialMetrics& metrics = serial_metrics();
  BufferPool pool;
  const std::uint64_t misses0 = metrics.pool_misses.value();
  const std::uint64_t hits0 = metrics.pool_hits.value();
  { PooledBuffer buffer = pool.acquire(1 << 16); }
  EXPECT_EQ(metrics.pool_misses.value(), misses0 + 1);
  { PooledBuffer buffer = pool.acquire(1 << 16); }
  EXPECT_EQ(metrics.pool_hits.value(), hits0 + 1);
}

TEST(BufferPool, ConcurrentAcquireFillRelease) {
  BufferPool pool;
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &failures, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const std::size_t size =
            std::size_t{4096} << (static_cast<std::size_t>(t + i) % 4);
        PooledBuffer buffer = pool.acquire(size);
        if (buffer.size() != size) {
          failures.fetch_add(1);
          continue;
        }
        const auto fill = static_cast<std::byte>(t);
        for (auto& b : buffer.span()) b = fill;
        for (const auto& b : buffer.span()) {
          if (b != fill) {
            failures.fetch_add(1);
            break;
          }
        }
        if (i % 3 == 0) {
          SharedBlob blob = std::move(buffer).share();
          if (blob->size() != size) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(SharedDecodeAliasing, MaterializeOnWriteNeverMutatesBackingBlob) {
  // Borrowed-view tensors alias the shared blob; the first write must
  // copy-on-write into private storage, never reach the shared bytes —
  // another consumer thread may be decoding the same blob concurrently.
  auto format = make_viper_format();
  Rng rng(99);
  Model model("alias");
  ASSERT_TRUE(
      model
          .add_tensor("w", Tensor::random(DType::kF32, Shape{4096}, rng).value())
          .is_ok());
  auto buffer = format->serialize_pooled(model);
  ASSERT_TRUE(buffer.is_ok());
  const SharedBlob blob = std::move(buffer).value().share();
  const std::vector<std::byte> pristine = *blob;  // snapshot before any write

  auto decoded = format->deserialize_shared(blob);
  ASSERT_TRUE(decoded.is_ok());
  auto tensor = decoded.value().mutable_tensor("w");
  ASSERT_TRUE(tensor.is_ok());
  ASSERT_FALSE(tensor.value()->owns_payload());  // borrowing before the write

  // Scribble over the whole payload through the mutable accessor.
  for (auto& b : tensor.value()->mutable_bytes()) b = std::byte{0xAB};
  EXPECT_TRUE(tensor.value()->owns_payload());  // materialized by the write
  EXPECT_EQ(*blob, pristine) << "a view write leaked into the shared blob";

  // The blob still decodes to the original weights for everyone else.
  auto again = format->deserialize_shared(blob);
  ASSERT_TRUE(again.is_ok());
  EXPECT_TRUE(again.value().same_weights(model));
}

TEST(SharedDecodeAliasing, DroppingViewsReturnsStorageToPool) {
  // The decoded model's views anchor the pooled blob. Dropping the last
  // reference — model included — must hand the buffer back to its pool.
  auto format = make_viper_format();
  Rng rng(7);
  Model model("alias");
  ASSERT_TRUE(
      model
          .add_tensor("w", Tensor::random(DType::kF32, Shape{8192}, rng).value())
          .is_ok());
  BufferPool pool;
  auto size = format->serialized_size(model);
  ASSERT_TRUE(size.is_ok());
  const std::byte* storage = nullptr;
  {
    PooledBuffer buffer = pool.acquire(size.value());
    storage = buffer.span().data();
    ASSERT_TRUE(format->serialize_into(model, buffer.span()).is_ok());
    auto decoded = format->deserialize_shared(std::move(buffer).share());
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(pool.cached_bytes(), 0u);  // views keep the blob checked out
    for (const auto& [name, tensor] : decoded.value().tensors()) {
      EXPECT_FALSE(tensor.owns_payload()) << name;
    }
  }  // model (and with it every view and the blob) dies here
  EXPECT_GT(pool.cached_bytes(), 0u);
  PooledBuffer again = pool.acquire(size.value());
  EXPECT_EQ(again.span().data(), storage);  // the very same storage came back
}

TEST(SharedDecodeAliasing, ShardedDecodeBorrowsAndReleasesIdentically) {
  auto format = make_viper_format();
  Rng rng(23);
  Model model("alias");
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(model
                    .add_tensor("t" + std::to_string(i),
                                Tensor::random(DType::kF32, Shape{48 * 1024}, rng)
                                    .value())
                    .is_ok());
  }
  BufferPool pool;
  auto size = format->serialized_size(model);
  ASSERT_TRUE(size.is_ok());
  {
    PooledBuffer buffer = pool.acquire(size.value());
    ASSERT_TRUE(format->serialize_into(model, buffer.span()).is_ok());
    auto decoded = format->deserialize_shared_sharded(
        std::move(buffer).share(), ThreadPool::global(), 4);
    ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
    EXPECT_TRUE(decoded.value().same_weights(model));
    for (const auto& [name, tensor] : decoded.value().tensors()) {
      EXPECT_FALSE(tensor.owns_payload()) << name;
    }
    EXPECT_EQ(pool.cached_bytes(), 0u);
  }
  EXPECT_GT(pool.cached_bytes(), 0u);  // all shard views released the blob
}

TEST(BufferPool, PooledRoundTripFuzzAllDtypes) {
  constexpr DType kDtypes[] = {DType::kF32, DType::kF64, DType::kF16,
                               DType::kI32, DType::kI64, DType::kU8};
  auto format = make_viper_format();
  Rng rng(4242);
  for (int round = 0; round < 20; ++round) {
    Model model("fuzz");
    model.set_version(static_cast<std::uint64_t>(round));
    const int tensors = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < tensors; ++i) {
      const DType dtype =
          kDtypes[static_cast<std::size_t>(rng.uniform_int(0, 5))];
      const auto n = static_cast<std::int64_t>(rng.uniform_int(0, 2000));
      ASSERT_TRUE(model
                      .add_tensor("t" + std::to_string(i),
                                  Tensor::random(dtype, Shape{n}, rng).value())
                      .is_ok());
    }
    auto buffer = format->serialize_pooled(model);
    ASSERT_TRUE(buffer.is_ok()) << buffer.status().to_string();
    // Alternate between borrowing decode (shared) and copying decode.
    if (round % 2 == 0) {
      const SharedBlob blob = std::move(buffer).value().share();
      auto restored = format->deserialize_shared(blob);
      ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
      EXPECT_TRUE(restored.value().same_weights(model));
    } else {
      auto restored = format->deserialize(buffer.value().span());
      ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
      EXPECT_TRUE(restored.value().same_weights(model));
    }
  }
}

}  // namespace
}  // namespace viper::serial
