// Tests for the checkpoint buffer pool: bucketing/reuse semantics, the
// share()-returns-to-pool lifecycle, counter accounting, a multithreaded
// hammer (also run under ThreadSanitizer by scripts/verify.sh), and a
// pooled serialize/deserialize fuzz across every dtype.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "viper/serial/buffer_pool.hpp"
#include "viper/serial/format.hpp"
#include "viper/tensor/model.hpp"

namespace viper::serial {
namespace {

TEST(BufferPool, AcquireGivesExactSize) {
  BufferPool pool;
  for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                              std::size_t{4096}, std::size_t{4097},
                              std::size_t{1} << 20}) {
    PooledBuffer buffer = pool.acquire(n);
    EXPECT_EQ(buffer.size(), n);
    EXPECT_EQ(buffer.span().size(), n);
  }
}

TEST(BufferPool, ReusesReturnedStorage) {
  BufferPool pool;
  const std::byte* first_data = nullptr;
  {
    PooledBuffer buffer = pool.acquire(1 << 16);
    first_data = buffer.span().data();
  }  // destructor returns the storage
  EXPECT_GT(pool.cached_bytes(), 0u);
  PooledBuffer again = pool.acquire(1 << 16);
  EXPECT_EQ(again.span().data(), first_data);
  EXPECT_EQ(pool.cached_buffers(), 0u);
}

TEST(BufferPool, BucketsByPowerOfTwo) {
  BufferPool pool;
  {
    PooledBuffer buffer = pool.acquire(5000);  // lands in the 8 KiB bucket
  }
  // A request within the same bucket is served by the cached buffer even
  // though the byte count differs.
  const std::size_t cached = pool.cached_bytes();
  EXPECT_GE(cached, 5000u);
  PooledBuffer hit = pool.acquire(8192);
  EXPECT_EQ(hit.size(), 8192u);
  EXPECT_EQ(pool.cached_bytes(), 0u);
}

TEST(BufferPool, TinyBuffersAreNotPooled) {
  BufferPool pool;
  // Externally-grown storage below the pooling floor is freed, not cached.
  std::vector<std::byte> tiny(16);
  pool.release(std::move(tiny));
  EXPECT_EQ(pool.cached_bytes(), 0u);
  EXPECT_EQ(pool.cached_buffers(), 0u);
}

TEST(BufferPool, PerBucketCapEvicts) {
  BufferPool::Options options;
  options.max_buffers_per_bucket = 2;
  BufferPool pool(options);
  {
    PooledBuffer a = pool.acquire(1 << 16);
    PooledBuffer b = pool.acquire(1 << 16);
    PooledBuffer c = pool.acquire(1 << 16);
  }
  EXPECT_EQ(pool.cached_buffers(), 2u);
}

TEST(BufferPool, TrimDropsEverything) {
  BufferPool pool;
  { PooledBuffer buffer = pool.acquire(1 << 18); }
  EXPECT_GT(pool.cached_bytes(), 0u);
  pool.trim();
  EXPECT_EQ(pool.cached_bytes(), 0u);
  EXPECT_EQ(pool.cached_buffers(), 0u);
}

TEST(BufferPool, ShareReturnsStorageOnLastRelease) {
  BufferPool pool;
  const std::byte* data = nullptr;
  {
    PooledBuffer buffer = pool.acquire(1 << 16);
    data = buffer.span().data();
    SharedBlob blob = std::move(buffer).share();
    ASSERT_NE(blob, nullptr);
    EXPECT_EQ(blob->data(), data);
    SharedBlob alias = blob;  // second reference keeps it alive
    blob.reset();
    EXPECT_EQ(pool.cached_bytes(), 0u);  // still referenced
  }
  // Last reference gone — the storage is back in the pool.
  EXPECT_GT(pool.cached_bytes(), 0u);
  PooledBuffer again = pool.acquire(1 << 16);
  EXPECT_EQ(again.span().data(), data);
}

TEST(BufferPool, TakeDetachesFromPool) {
  BufferPool pool;
  PooledBuffer buffer = pool.acquire(1 << 16);
  std::vector<std::byte> owned = std::move(buffer).take();
  EXPECT_EQ(owned.size(), std::size_t{1} << 16);
  owned.clear();
  EXPECT_EQ(pool.cached_bytes(), 0u);
}

TEST(BufferPool, HitMissCountersAdvance) {
  SerialMetrics& metrics = serial_metrics();
  BufferPool pool;
  const std::uint64_t misses0 = metrics.pool_misses.value();
  const std::uint64_t hits0 = metrics.pool_hits.value();
  { PooledBuffer buffer = pool.acquire(1 << 16); }
  EXPECT_EQ(metrics.pool_misses.value(), misses0 + 1);
  { PooledBuffer buffer = pool.acquire(1 << 16); }
  EXPECT_EQ(metrics.pool_hits.value(), hits0 + 1);
}

TEST(BufferPool, ConcurrentAcquireFillRelease) {
  BufferPool pool;
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &failures, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const std::size_t size =
            std::size_t{4096} << (static_cast<std::size_t>(t + i) % 4);
        PooledBuffer buffer = pool.acquire(size);
        if (buffer.size() != size) {
          failures.fetch_add(1);
          continue;
        }
        const auto fill = static_cast<std::byte>(t);
        for (auto& b : buffer.span()) b = fill;
        for (const auto& b : buffer.span()) {
          if (b != fill) {
            failures.fetch_add(1);
            break;
          }
        }
        if (i % 3 == 0) {
          SharedBlob blob = std::move(buffer).share();
          if (blob->size() != size) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(BufferPool, PooledRoundTripFuzzAllDtypes) {
  constexpr DType kDtypes[] = {DType::kF32, DType::kF64, DType::kF16,
                               DType::kI32, DType::kI64, DType::kU8};
  auto format = make_viper_format();
  Rng rng(4242);
  for (int round = 0; round < 20; ++round) {
    Model model("fuzz");
    model.set_version(static_cast<std::uint64_t>(round));
    const int tensors = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < tensors; ++i) {
      const DType dtype =
          kDtypes[static_cast<std::size_t>(rng.uniform_int(0, 5))];
      const auto n = static_cast<std::int64_t>(rng.uniform_int(0, 2000));
      ASSERT_TRUE(model
                      .add_tensor("t" + std::to_string(i),
                                  Tensor::random(dtype, Shape{n}, rng).value())
                      .is_ok());
    }
    auto buffer = format->serialize_pooled(model);
    ASSERT_TRUE(buffer.is_ok()) << buffer.status().to_string();
    // Alternate between borrowing decode (shared) and copying decode.
    if (round % 2 == 0) {
      const SharedBlob blob = std::move(buffer).value().share();
      auto restored = format->deserialize_shared(blob);
      ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
      EXPECT_TRUE(restored.value().same_weights(model));
    } else {
      auto restored = format->deserialize(buffer.value().span());
      ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
      EXPECT_TRUE(restored.value().same_weights(model));
    }
  }
}

}  // namespace
}  // namespace viper::serial
