// End-to-end tests of the coupled producer/consumer experiment — the
// engine behind fig9/fig10/Table 1. Checks structural invariants and the
// paper's qualitative orderings.
#include <gtest/gtest.h>

#include "viper/core/coupled_sim.hpp"

namespace viper::core {
namespace {

CoupledRunConfig tc1_config(ScheduleKind kind,
                            Strategy strategy = Strategy::kGpuAsync) {
  CoupledRunConfig config;
  config.profile = sim::app_profile(AppModel::kTc1);
  config.strategy = strategy;
  config.schedule_kind = kind;
  return config;
}

TEST(CoupledSim, ServesExactlyTheRequestBudget) {
  auto result = run_coupled_experiment(tc1_config(ScheduleKind::kEpochBaseline));
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().inferences_served,
            sim::app_profile(AppModel::kTc1).total_inferences);
  EXPECT_GT(result.value().cil, 0.0);
}

TEST(CoupledSim, IsDeterministicForSeed) {
  auto a = run_coupled_experiment(tc1_config(ScheduleKind::kFixedInterval));
  auto b = run_coupled_experiment(tc1_config(ScheduleKind::kFixedInterval));
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_DOUBLE_EQ(a.value().cil, b.value().cil);
  EXPECT_EQ(a.value().checkpoints, b.value().checkpoints);
}

TEST(CoupledSim, UpdateRecordsAreCausal) {
  auto result =
      run_coupled_experiment(tc1_config(ScheduleKind::kEpochBaseline)).value();
  ASSERT_FALSE(result.updates.empty());
  double prev_trigger = -1.0;
  for (const auto& update : result.updates) {
    EXPECT_GT(update.triggered_at, prev_trigger);   // strictly ordered
    EXPECT_GT(update.ready_at, update.triggered_at);  // delivery takes time
    EXPECT_GT(update.loss, 0.0);
    prev_trigger = update.triggered_at;
  }
}

TEST(CoupledSim, EpochBaselineCheckpointCountMatchesPaper) {
  // Table 1 baseline column: TC1 = 16 checkpoints over 50k inferences.
  auto result =
      run_coupled_experiment(tc1_config(ScheduleKind::kEpochBaseline)).value();
  EXPECT_NEAR(static_cast<double>(result.checkpoints), 16.0, 2.0);
}

TEST(CoupledSim, WarmupFitSelectsExponential) {
  auto result = run_coupled_experiment(tc1_config(ScheduleKind::kGreedy)).value();
  EXPECT_NE(result.tlp_family, math::CurveFamily::kLin2);
  EXPECT_GT(result.greedy_threshold, 0.0);
}

TEST(CoupledSim, Fig10OrderingHoldsForTc1) {
  // Baseline > fixed ≥ adaptive in measured CIL (fig10b).
  const double baseline =
      run_coupled_experiment(tc1_config(ScheduleKind::kEpochBaseline)).value().cil;
  const double fixed =
      run_coupled_experiment(tc1_config(ScheduleKind::kFixedInterval)).value().cil;
  const double greedy =
      run_coupled_experiment(tc1_config(ScheduleKind::kGreedy)).value().cil;
  EXPECT_LT(fixed, baseline);
  EXPECT_LT(greedy, baseline);
}

TEST(CoupledSim, GreedyUsesFewerCheckpointsThanFixed) {
  const auto fixed =
      run_coupled_experiment(tc1_config(ScheduleKind::kFixedInterval)).value();
  const auto greedy =
      run_coupled_experiment(tc1_config(ScheduleKind::kGreedy)).value();
  EXPECT_LT(greedy.checkpoints, fixed.checkpoints);
}

TEST(CoupledSim, Fig9StrategyOrderingOnEpochSchedule) {
  // fig9: with the same epoch schedule, GPU < host < PFS in both CIL and
  // training overhead.
  const auto gpu = run_coupled_experiment(
                       tc1_config(ScheduleKind::kEpochBaseline, Strategy::kGpuAsync))
                       .value();
  const auto host = run_coupled_experiment(
                        tc1_config(ScheduleKind::kEpochBaseline, Strategy::kHostAsync))
                        .value();
  const auto pfs = run_coupled_experiment(
                       tc1_config(ScheduleKind::kEpochBaseline, Strategy::kViperPfs))
                       .value();
  EXPECT_LT(gpu.training_overhead, host.training_overhead);
  EXPECT_LT(host.training_overhead, pfs.training_overhead);
  EXPECT_LE(gpu.cil, host.cil);
  EXPECT_LT(host.cil, pfs.cil);
}

TEST(CoupledSim, Tc1BaselineCilNearPaper) {
  // fig10b: TC1 epoch-baseline CIL ≈ 32.8k over 50 000 inferences (GPU
  // strategy). Accept ±15%.
  const auto result =
      run_coupled_experiment(tc1_config(ScheduleKind::kEpochBaseline)).value();
  EXPECT_GT(result.cil, 32.8e3 * 0.85);
  EXPECT_LT(result.cil, 32.8e3 * 1.15);
}

TEST(CoupledSim, ScheduleOverrideIsHonored) {
  CoupledRunConfig config = tc1_config(ScheduleKind::kEpochBaseline);
  CheckpointSchedule manual;
  manual.kind = ScheduleKind::kFixedInterval;
  manual.iterations = {1200, 1500, 2000};
  config.schedule_override = manual;
  const auto result = run_coupled_experiment(config).value();
  EXPECT_EQ(result.checkpoints, 3);
  ASSERT_EQ(result.updates.size(), 3u);
  EXPECT_EQ(result.updates[0].capture_iteration, 1200);
}

TEST(CoupledSim, GreedyThresholdOverrideControlsCheckpointCount) {
  CoupledRunConfig loose = tc1_config(ScheduleKind::kGreedy);
  loose.greedy_threshold_override = 0.5;
  CoupledRunConfig tight = tc1_config(ScheduleKind::kGreedy);
  tight.greedy_threshold_override = 0.01;
  const auto few = run_coupled_experiment(loose).value();
  const auto many = run_coupled_experiment(tight).value();
  EXPECT_LT(few.checkpoints, many.checkpoints);
}

TEST(CoupledSim, TrainingOverheadIsStallTimesCheckpoints) {
  const auto result = run_coupled_experiment(
                          tc1_config(ScheduleKind::kEpochBaseline, Strategy::kGpuAsync))
                          .value();
  const double expected =
      static_cast<double>(result.checkpoints) * result.timing.t_p;
  EXPECT_NEAR(result.training_overhead, expected, expected * 0.01);
}

class AllAppsAllSchedules
    : public ::testing::TestWithParam<std::tuple<AppModel, ScheduleKind>> {};

TEST_P(AllAppsAllSchedules, RunsCleanlyWithPositiveCil) {
  CoupledRunConfig config;
  config.profile = sim::app_profile(std::get<0>(GetParam()));
  config.schedule_kind = std::get<1>(GetParam());
  auto result = run_coupled_experiment(config);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().inferences_served, config.profile.total_inferences);
  EXPECT_GT(result.value().cil, 0.0);
  EXPECT_GE(result.value().checkpoints, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllAppsAllSchedules,
    ::testing::Combine(::testing::Values(AppModel::kNt3B, AppModel::kTc1,
                                         AppModel::kPtychoNN),
                       ::testing::Values(ScheduleKind::kEpochBaseline,
                                         ScheduleKind::kFixedInterval,
                                         ScheduleKind::kGreedy)),
    [](const auto& info) {
      std::string name{to_string(std::get<0>(info.param))};
      name += "_";
      name += to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '.' || c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace viper::core
