// Tests for the incremental checkpoint store: delta chains, anchors,
// fallback to full checkpoints, reconstruction of arbitrary versions.
#include <gtest/gtest.h>

#include "viper/memsys/presets.hpp"
#include "viper/repo/delta_store.hpp"

namespace viper::repo {
namespace {

std::shared_ptr<memsys::StorageTier> tier() {
  return std::make_shared<memsys::MemoryTier>(memsys::polaris_lustre());
}

Model make_model(std::uint64_t version, std::uint64_t seed = 6) {
  Rng rng(seed);
  Model m("net");
  m.set_version(version);
  m.set_iteration(static_cast<std::int64_t>(version) * 10);
  EXPECT_TRUE(m.add_tensor("frozen/w",
                           Tensor::random(DType::kF32, Shape{4096}, rng).value())
                  .is_ok());
  EXPECT_TRUE(m.add_tensor("head/w",
                           Tensor::random(DType::kF32, Shape{512}, rng).value())
                  .is_ok());
  return m;
}

/// Fine-tunes only the head layer (the sparse-update scenario).
Model tune_head(const Model& base, std::uint64_t version, Rng& rng) {
  Model next = base;
  next.set_version(version);
  next.set_iteration(base.iteration() + 10);
  next.mutable_tensor("head/w").value()->perturb(rng, 0.01);
  return next;
}

TEST(DeltaStore, FirstPutIsAlwaysFull) {
  DeltaStore store(tier(), {});
  auto report = store.put(make_model(1));
  ASSERT_TRUE(report.is_ok());
  EXPECT_FALSE(report.value().stored_as_delta);
  EXPECT_EQ(report.value().blob_bytes, report.value().full_bytes);
}

TEST(DeltaStore, SparseUpdatesStoreAsSmallDeltas) {
  DeltaStore store(tier(), {.full_every = 16});
  Model model = make_model(1);
  ASSERT_TRUE(store.put(model).is_ok());
  Rng rng(2);
  for (std::uint64_t v = 2; v <= 6; ++v) {
    model = tune_head(model, v, rng);
    auto report = store.put(model);
    ASSERT_TRUE(report.is_ok());
    EXPECT_TRUE(report.value().stored_as_delta) << "version " << v;
    EXPECT_LT(report.value().blob_bytes, report.value().full_bytes / 4);
  }
  auto savings = store.savings("net");
  EXPECT_LT(savings.bytes_written, savings.full_equivalent / 2);
}

TEST(DeltaStore, LatestReconstructsThroughChain) {
  DeltaStore store(tier(), {.full_every = 16});
  Model model = make_model(1);
  ASSERT_TRUE(store.put(model).is_ok());
  Rng rng(3);
  for (std::uint64_t v = 2; v <= 8; ++v) {
    model = tune_head(model, v, rng);
    ASSERT_TRUE(store.put(model).is_ok());
  }
  auto latest = store.get_latest("net");
  ASSERT_TRUE(latest.is_ok()) << latest.status().to_string();
  EXPECT_EQ(latest.value().version(), 8u);
  EXPECT_TRUE(latest.value().same_weights(model));
}

TEST(DeltaStore, AnyStoredVersionIsReconstructible) {
  DeltaStore store(tier(), {.full_every = 4});
  Model model = make_model(1);
  std::vector<Model> history{model};
  ASSERT_TRUE(store.put(model).is_ok());
  Rng rng(4);
  for (std::uint64_t v = 2; v <= 10; ++v) {
    model = tune_head(model, v, rng);
    history.push_back(model);
    ASSERT_TRUE(store.put(model).is_ok());
  }
  for (const Model& expected : history) {
    auto got = store.get_version("net", expected.version());
    ASSERT_TRUE(got.is_ok()) << "version " << expected.version();
    EXPECT_TRUE(got.value().same_weights(expected));
  }
}

TEST(DeltaStore, FullAnchorsEveryN) {
  DeltaStore store(tier(), {.full_every = 3});
  Model model = make_model(1);
  ASSERT_TRUE(store.put(model).is_ok());  // full (v1)
  Rng rng(5);
  std::vector<bool> as_delta;
  for (std::uint64_t v = 2; v <= 7; ++v) {
    model = tune_head(model, v, rng);
    as_delta.push_back(store.put(model).value().stored_as_delta);
  }
  // Pattern with full_every=3: v2 delta, v3 delta, v4 full, v5 d, v6 d, v7 full.
  EXPECT_TRUE(as_delta[0]);
  EXPECT_TRUE(as_delta[1]);
  EXPECT_FALSE(as_delta[2]);
  EXPECT_TRUE(as_delta[3]);
  EXPECT_TRUE(as_delta[4]);
  EXPECT_FALSE(as_delta[5]);
}

TEST(DeltaStore, DenseUpdateFallsBackToFull) {
  DeltaStore store(tier(), {.full_every = 16, .max_delta_fraction = 0.6});
  Model model = make_model(1);
  ASSERT_TRUE(store.put(model).is_ok());
  Model dense = model;
  dense.set_version(2);
  Rng rng(6);
  dense.perturb_weights(rng, 0.01);  // every block changes
  auto report = store.put(dense);
  ASSERT_TRUE(report.is_ok());
  EXPECT_FALSE(report.value().stored_as_delta);
}

TEST(DeltaStore, RejectsNonMonotonicVersions) {
  DeltaStore store(tier(), {});
  ASSERT_TRUE(store.put(make_model(5)).is_ok());
  EXPECT_EQ(store.put(make_model(5)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.put(make_model(3)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DeltaStore, VersionsListedAscending) {
  DeltaStore store(tier(), {});
  Model model = make_model(1);
  ASSERT_TRUE(store.put(model).is_ok());
  Rng rng(7);
  model = tune_head(model, 4, rng);
  ASSERT_TRUE(store.put(model).is_ok());
  model = tune_head(model, 9, rng);
  ASSERT_TRUE(store.put(model).is_ok());
  const auto versions = store.versions("net");
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[0], 1u);
  EXPECT_EQ(versions[2], 9u);
}

TEST(DeltaStore, UnknownModelAndVersionAreNotFound) {
  DeltaStore store(tier(), {});
  EXPECT_EQ(store.get_latest("ghost").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(store.put(make_model(1)).is_ok());
  EXPECT_EQ(store.get_version("net", 99).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(store.versions("ghost").empty());
}

TEST(DeltaStore, RejectsUnnamedModel) {
  DeltaStore store(tier(), {});
  EXPECT_FALSE(store.put(Model{}).is_ok());
}

}  // namespace
}  // namespace viper::repo
