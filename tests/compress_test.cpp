// Tests for checkpoint compression: f16 conversions, zero-RLE, and the
// model-aware codec paths.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "viper/serial/compress.hpp"
#include "viper/tensor/architectures.hpp"

namespace viper::serial {
namespace {

// ---- f16 conversions -----------------------------------------------------

TEST(Half, ExactValuesRoundTrip) {
  for (float v : {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, 0.25f,
                  -65504.0f, 65504.0f}) {
    EXPECT_EQ(f16_to_f32(f32_to_f16(v)), v) << v;
  }
}

TEST(Half, SpecialValues) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(f16_to_f32(f32_to_f16(inf)), inf);
  EXPECT_EQ(f16_to_f32(f32_to_f16(-inf)), -inf);
  EXPECT_TRUE(std::isnan(f16_to_f32(f32_to_f16(std::nanf("")))));
  // Overflow saturates to infinity.
  EXPECT_EQ(f16_to_f32(f32_to_f16(1e10f)), inf);
  // Deep underflow flushes to (signed) zero.
  EXPECT_EQ(f16_to_f32(f32_to_f16(1e-10f)), 0.0f);
  EXPECT_TRUE(std::signbit(f16_to_f32(f32_to_f16(-1e-10f))));
}

TEST(Half, SubnormalsSurvive) {
  const float smallest_normal = 6.103515625e-05f;  // 2^-14
  EXPECT_EQ(f16_to_f32(f32_to_f16(smallest_normal)), smallest_normal);
  const float subnormal = 5.960464477539063e-08f;  // 2^-24 (min subnormal)
  EXPECT_EQ(f16_to_f32(f32_to_f16(subnormal)), subnormal);
}

TEST(Half, RelativeErrorWithinHalfPrecision) {
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const float v = static_cast<float>(rng.uniform(-100.0, 100.0));
    const float round_tripped = f16_to_f32(f32_to_f16(v));
    EXPECT_NEAR(round_tripped, v, std::abs(v) * 1e-3 + 1e-6) << v;
  }
}

// ---- Blob codecs -----------------------------------------------------------

TEST(ZeroRle, CompressesZeroHeavyBuffers) {
  std::vector<std::byte> sparse(64 * 1024, std::byte{0});
  for (std::size_t i = 0; i < sparse.size(); i += 1024) sparse[i] = std::byte{7};
  auto compressed = compress_blob(sparse, Codec::kZeroRle);
  ASSERT_TRUE(compressed.is_ok());
  EXPECT_LT(compressed.value().size(), sparse.size() / 50);
  auto restored = decompress_blob(compressed.value());
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value(), sparse);
}

TEST(ZeroRle, DenseDataPassesThroughWithTinyOverhead) {
  Rng rng(3);
  std::vector<std::byte> dense(32 * 1024);
  for (auto& b : dense) {
    b = static_cast<std::byte>(rng.uniform_int(1, 255));  // no zeros at all
  }
  auto compressed = compress_blob(dense, Codec::kZeroRle).value();
  EXPECT_LT(compressed.size(), dense.size() + dense.size() / 100 + 64);
  EXPECT_EQ(decompress_blob(compressed).value(), dense);
}

TEST(ZeroRle, EmptyAndTinyInputs) {
  for (std::size_t n : {0u, 1u, 2u, 3u}) {
    std::vector<std::byte> input(n, std::byte{0x42});
    auto compressed = compress_blob(input, Codec::kZeroRle).value();
    EXPECT_EQ(decompress_blob(compressed).value(), input) << n;
  }
}

TEST(ZeroRle, LongRunsSplitAcrossRecords) {
  std::vector<std::byte> zeros(200'000, std::byte{0});  // > u16 max run
  auto compressed = compress_blob(zeros, Codec::kZeroRle).value();
  EXPECT_LT(compressed.size(), 100u);
  EXPECT_EQ(decompress_blob(compressed).value(), zeros);
}

TEST(Codecs, NoneIsIdentityPlusHeader) {
  std::vector<std::byte> data(100, std::byte{0xAB});
  auto wrapped = compress_blob(data, Codec::kNone).value();
  EXPECT_EQ(wrapped.size(), data.size() + 17);  // magic+codec+size+crc
  EXPECT_EQ(decompress_blob(wrapped).value(), data);
}

TEST(Codecs, DetectCorruption) {
  std::vector<std::byte> data(1000, std::byte{5});
  auto wrapped = compress_blob(data, Codec::kZeroRle).value();
  wrapped[wrapped.size() / 2] ^= std::byte{1};
  EXPECT_EQ(decompress_blob(wrapped).status().code(), StatusCode::kDataLoss);
}

TEST(Codecs, RejectForeignBlobAndF16OnRawBytes) {
  std::vector<std::byte> junk(64, std::byte{9});
  EXPECT_FALSE(decompress_blob(junk).is_ok());
  EXPECT_FALSE(compress_blob(junk, Codec::kF16).is_ok());
  EXPECT_FALSE(compress_blob(junk, Codec::kF16ZeroRle).is_ok());
}

// ---- Model-aware codecs ----------------------------------------------------

class ModelCodecs : public ::testing::TestWithParam<Codec> {};

TEST_P(ModelCodecs, RoundTripsModelStructure) {
  Model model = build_app_model(AppModel::kNt3A, {}).value();
  model.set_version(4);
  model.set_iteration(321);
  auto blob = compress_model(model, GetParam());
  ASSERT_TRUE(blob.is_ok()) << blob.status().to_string();
  auto restored = decompress_model(blob.value());
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value().version(), 4u);
  EXPECT_EQ(restored.value().iteration(), 321);
  EXPECT_EQ(restored.value().num_tensors(), model.num_tensors());
  // Every tensor keeps its shape and comes back as f32.
  for (const auto& [name, tensor] : model.tensors()) {
    auto got = restored.value().tensor(name);
    ASSERT_TRUE(got.is_ok()) << name;
    EXPECT_TRUE(got.value()->shape() == tensor.shape());
    EXPECT_EQ(got.value()->dtype(), tensor.dtype());
  }
}

TEST_P(ModelCodecs, LossyCodecsStayWithinHalfPrecision) {
  Model model = build_app_model(AppModel::kNt3A, {}).value();
  auto blob = compress_model(model, GetParam()).value();
  auto restored = decompress_model(blob).value();
  const bool lossy =
      GetParam() == Codec::kF16 || GetParam() == Codec::kF16ZeroRle;
  for (const auto& [name, tensor] : model.tensors()) {
    if (tensor.dtype() != DType::kF32) continue;
    const auto original = tensor.data<float>();
    const auto round_tripped = restored.tensor(name).value()->data<float>();
    for (std::size_t i = 0; i < original.size(); i += 97) {
      if (lossy) {
        EXPECT_NEAR(round_tripped[i], original[i],
                    std::abs(original[i]) * 1e-3 + 1e-6);
      } else {
        EXPECT_EQ(round_tripped[i], original[i]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, ModelCodecs,
                         ::testing::Values(Codec::kNone, Codec::kZeroRle,
                                           Codec::kF16, Codec::kF16ZeroRle),
                         [](const auto& info) {
                           std::string name{to_string(info.param)};
                           for (char& c : name) {
                             if (c == '-' || c == '+') c = '_';
                           }
                           return name;
                         });

TEST(ModelCodecs, F16HalvesTheWeightPayload) {
  Model model = build_app_model(AppModel::kTc1, {}).value();
  const auto plain = compress_model(model, Codec::kNone).value();
  const auto half = compress_model(model, Codec::kF16).value();
  EXPECT_LT(half.size(), plain.size() * 0.55);
  EXPECT_GT(half.size(), plain.size() * 0.45);
}

TEST(ModelCodecs, ZeroRleShrinksZeroBiases) {
  // Bias tensors are all-zero at init: RLE must exploit that for free.
  Model model("zeros");
  (void)model.add_tensor("bias", Tensor::zeros(DType::kF32, Shape{65536}).value());
  const auto plain = compress_model(model, Codec::kNone).value();
  const auto rle = compress_model(model, Codec::kZeroRle).value();
  EXPECT_LT(rle.size(), plain.size() / 100);
}

TEST(ModelCodecs, RejectsModelsAlreadyInF16) {
  Model model("halfy");
  (void)model.add_tensor("w", Tensor::zeros(DType::kF16, Shape{8}).value());
  EXPECT_FALSE(compress_model(model, Codec::kF16).is_ok());
  // Lossless codecs handle them fine.
  EXPECT_TRUE(compress_model(model, Codec::kZeroRle).is_ok());
}

TEST(ModelCodecs, NonFloatTensorsPassThroughLossyCodecs) {
  Rng rng(5);
  Model model("mixed");
  (void)model.add_tensor("w", Tensor::random(DType::kF32, Shape{128}, rng).value());
  (void)model.add_tensor("ids", Tensor::random(DType::kI64, Shape{16}, rng).value());
  auto restored =
      decompress_model(compress_model(model, Codec::kF16).value()).value();
  EXPECT_TRUE(
      restored.tensor("ids").value()->equals(*model.tensor("ids").value()));
}

}  // namespace
}  // namespace viper::serial
