// Unit + concurrency tests for viper_kvstore: the Redis-substitute KV
// store and the publish/subscribe notification bus.
#include <gtest/gtest.h>

#include <thread>

#include "viper/common/retry.hpp"
#include "viper/fault/fault.hpp"
#include "viper/kvstore/kvstore.hpp"
#include "viper/kvstore/pubsub.hpp"
#include "viper/obs/metrics.hpp"

namespace viper::kv {
namespace {

TEST(KvStore, SetGetVersioned) {
  KvStore db;
  EXPECT_EQ(db.set("k", "v1"), 1u);
  EXPECT_EQ(db.set("k", "v2"), 2u);
  auto got = db.get("k");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().value, "v2");
  EXPECT_EQ(got.value().version, 2u);
}

TEST(KvStore, GetMissingFails) {
  KvStore db;
  EXPECT_EQ(db.get("missing").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(db.contains("missing"));
}

TEST(KvStore, EraseRemovesBothKinds) {
  KvStore db;
  db.set("s", "x");
  db.hset("h", "f", "y");
  EXPECT_TRUE(db.erase("s").is_ok());
  EXPECT_TRUE(db.erase("h").is_ok());
  EXPECT_EQ(db.erase("s").code(), StatusCode::kNotFound);
  EXPECT_EQ(db.size(), 0u);
}

TEST(KvStore, CompareAndSetEnforcesVersion) {
  KvStore db;
  auto created = db.compare_and_set("k", "v1", 0);
  ASSERT_TRUE(created.is_ok());
  EXPECT_EQ(created.value(), 1u);
  // Stale expected version must fail.
  EXPECT_EQ(db.compare_and_set("k", "v2", 0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(db.compare_and_set("k", "v2", 1).is_ok());
  EXPECT_EQ(db.get("k").value().value, "v2");
}

TEST(KvStore, IncrIsAtomicCounter) {
  KvStore db;
  EXPECT_EQ(db.incr("n"), 1);
  EXPECT_EQ(db.incr("n", 5), 6);
  EXPECT_EQ(db.incr("n", -2), 4);
}

TEST(KvStore, IncrUnderContentionNeverLosesUpdates) {
  KvStore db;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&db] {
      for (int i = 0; i < 500; ++i) db.incr("counter");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.incr("counter", 0), 8 * 500);
}

TEST(KvStore, HashFieldOps) {
  KvStore db;
  db.hset("model", "version", "3");
  db.hset("model", "location", "gpu");
  EXPECT_EQ(db.hget("model", "version").value(), "3");
  EXPECT_EQ(db.hget("model", "missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.hget("nohash", "f").status().code(), StatusCode::kNotFound);
  auto all = db.hgetall("model");
  ASSERT_TRUE(all.is_ok());
  EXPECT_EQ(all.value().size(), 2u);
}

TEST(KvStore, HsetAllReplacesAtomically) {
  KvStore db;
  db.hset("h", "old", "1");
  db.hset_all("h", {{"a", "1"}, {"b", "2"}});
  auto all = db.hgetall("h").value();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_FALSE(all.contains("old"));
}

TEST(KvStore, KeysWithPrefix) {
  KvStore db;
  db.set("viper:model:a", "1");
  db.hset("viper:model:b", "f", "2");
  db.set("other", "3");
  const auto keys = db.keys_with_prefix("viper:model:");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "viper:model:a");
  EXPECT_EQ(keys[1], "viper:model:b");
}

TEST(PubSub, DeliversToSubscriber) {
  auto bus = PubSub::create();
  auto sub = bus->subscribe("ch");
  EXPECT_EQ(bus->publish("ch", "hello"), 1u);
  auto event = sub.next(1.0);
  ASSERT_TRUE(event.is_ok());
  EXPECT_EQ(event.value().payload, "hello");
  EXPECT_EQ(event.value().channel, "ch");
  EXPECT_EQ(event.value().sequence, 1u);
}

TEST(PubSub, FanOutToMultipleSubscribers) {
  auto bus = PubSub::create();
  auto a = bus->subscribe("ch");
  auto b = bus->subscribe("ch");
  EXPECT_EQ(bus->publish("ch", "x"), 2u);
  EXPECT_TRUE(a.next(1.0).is_ok());
  EXPECT_TRUE(b.next(1.0).is_ok());
}

TEST(PubSub, ChannelsAreIsolated) {
  auto bus = PubSub::create();
  auto a = bus->subscribe("a");
  EXPECT_EQ(bus->publish("b", "x"), 0u);
  EXPECT_FALSE(a.poll().has_value());
}

TEST(PubSub, NoDeliveryBeforeSubscribe) {
  auto bus = PubSub::create();
  bus->publish("ch", "early");
  auto sub = bus->subscribe("ch");
  EXPECT_FALSE(sub.poll().has_value());
}

TEST(PubSub, UnsubscribeOnDestruction) {
  auto bus = PubSub::create();
  {
    auto sub = bus->subscribe("ch");
    EXPECT_EQ(bus->subscriber_count("ch"), 1u);
  }
  EXPECT_EQ(bus->subscriber_count("ch"), 0u);
  EXPECT_EQ(bus->publish("ch", "x"), 0u);
}

TEST(PubSub, NextTimesOut) {
  auto bus = PubSub::create();
  auto sub = bus->subscribe("ch");
  auto event = sub.next(0.01);
  ASSERT_FALSE(event.is_ok());
  EXPECT_EQ(event.status().code(), StatusCode::kTimeout);
}

TEST(PubSub, ShutdownCancelsBlockedSubscribers) {
  auto bus = PubSub::create();
  auto sub = bus->subscribe("ch");
  std::thread waiter([&sub] {
    EXPECT_EQ(sub.next(-1.0).status().code(), StatusCode::kCancelled);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  bus->shutdown();
  waiter.join();
}

TEST(PubSub, BacklogCoalescingSupported) {
  auto bus = PubSub::create();
  auto sub = bus->subscribe("ch");
  for (int i = 0; i < 5; ++i) bus->publish("ch", std::to_string(i));
  EXPECT_EQ(sub.backlog(), 5u);
  // Consumers drain to the latest event (what InferenceConsumer does).
  std::string last;
  while (auto event = sub.poll()) last = event->payload;
  EXPECT_EQ(last, "4");
}

TEST(PubSub, MoveTransfersOwnership) {
  auto bus = PubSub::create();
  auto sub = bus->subscribe("ch");
  Subscription moved = std::move(sub);
  bus->publish("ch", "x");
  EXPECT_TRUE(moved.next(1.0).is_ok());
}

TEST(PubSub, PublishLatencyIsSubMillisecond) {
  // The paper's claim: push notification beats 1 ms polling floors.
  auto bus = PubSub::create();
  auto sub = bus->subscribe("ch");
  const auto start = std::chrono::steady_clock::now();
  bus->publish("ch", "x");
  auto event = sub.next(1.0);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  ASSERT_TRUE(event.is_ok());
  EXPECT_LT(elapsed, 1e-3);
}

TEST(PubSub, ConcurrentPublishersAllDeliver) {
  auto bus = PubSub::create();
  auto sub = bus->subscribe("ch");
  constexpr int kThreads = 4;
  constexpr int kEach = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bus] {
      for (int i = 0; i < kEach; ++i) bus->publish("ch", "m");
    });
  }
  for (auto& t : threads) t.join();
  int received = 0;
  while (sub.poll()) ++received;
  EXPECT_EQ(received, kThreads * kEach);
  EXPECT_EQ(bus->published_total(), static_cast<std::uint64_t>(kThreads * kEach));
}

TEST(ShardedPubSub, DefaultAndCustomShardCounts) {
  EXPECT_EQ(PubSub::create()->num_shards(), PubSub::kDefaultShards);
  EXPECT_EQ(PubSub::create(1)->num_shards(), 1u);
  EXPECT_EQ(PubSub::create(32)->num_shards(), 32u);
  // A degenerate request still yields a usable bus.
  auto bus = PubSub::create(0);
  EXPECT_GE(bus->num_shards(), 1u);
  auto sub = bus->subscribe("ch");
  EXPECT_EQ(bus->publish("ch", "x"), 1u);
  EXPECT_TRUE(sub.next(1.0).is_ok());
}

TEST(ShardedPubSub, ChannelsOnDifferentShardsStayIsolated) {
  auto bus = PubSub::create(4);
  // Enough channels to land on several shards with high probability.
  std::vector<Subscription> subs;
  subs.reserve(16);
  for (int c = 0; c < 16; ++c) {
    subs.push_back(bus->subscribe("ch" + std::to_string(c)));
  }
  for (int c = 0; c < 16; ++c) {
    EXPECT_EQ(bus->publish("ch" + std::to_string(c), std::to_string(c)), 1u);
  }
  for (int c = 0; c < 16; ++c) {
    auto event = subs[static_cast<std::size_t>(c)].next(1.0);
    ASSERT_TRUE(event.is_ok()) << "channel " << c;
    EXPECT_EQ(event.value().payload, std::to_string(c));
    EXPECT_EQ(event.value().channel, "ch" + std::to_string(c));
  }
  EXPECT_EQ(bus->published_total(), 16u);
}

TEST(ShardedPubSub, SequenceIsBusWideAcrossShards) {
  auto bus = PubSub::create(4);
  auto a = bus->subscribe("alpha");
  auto b = bus->subscribe("bravo");
  bus->publish("alpha", "1");
  bus->publish("bravo", "2");
  bus->publish("alpha", "3");
  EXPECT_EQ(a.poll()->sequence, 1u);
  EXPECT_EQ(b.poll()->sequence, 2u);
  EXPECT_EQ(a.poll()->sequence, 3u);
  EXPECT_EQ(bus->published_total(), 3u);
}

TEST(ShardedPubSub, ConcurrentPublishersAcrossChannelsLoseNothing) {
  auto bus = PubSub::create(4);
  constexpr int kChannels = 4;
  constexpr int kEach = 200;
  std::vector<Subscription> subs;
  subs.reserve(kChannels);
  for (int c = 0; c < kChannels; ++c) {
    subs.push_back(bus->subscribe("ch" + std::to_string(c)));
  }
  std::vector<std::thread> threads;
  for (int c = 0; c < kChannels; ++c) {
    threads.emplace_back([&bus, c] {
      const std::string channel = "ch" + std::to_string(c);
      for (int i = 0; i < kEach; ++i) bus->publish(channel, "m");
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kChannels; ++c) {
    int received = 0;
    while (subs[static_cast<std::size_t>(c)].poll()) ++received;
    EXPECT_EQ(received, kEach) << "channel " << c;
  }
  EXPECT_EQ(bus->published_total(),
            static_cast<std::uint64_t>(kChannels * kEach));
}

TEST(ShardedPubSub, ContentionCounterMovesOnlyUnderCollisions) {
  // Force every channel onto the one shard of a width-1 bus and hammer it
  // from several threads: the try-lock contention probe must register.
  const auto before = obs::MetricsRegistry::global().snapshot();
  auto bus = PubSub::create(1);
  auto sub = bus->subscribe("ch");
  constexpr int kThreads = 4;
  constexpr int kEach = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bus] {
      for (int i = 0; i < kEach; ++i) bus->publish("ch", "m");
    });
  }
  for (auto& t : threads) t.join();
  int received = 0;
  while (sub.poll()) ++received;
  EXPECT_EQ(received, kThreads * kEach);
  const auto after = obs::MetricsRegistry::global().snapshot();
  // Contention is timing-dependent; the counter must never go backwards
  // and the gauge reflects the bus width last created.
  EXPECT_GE(after.counter_value("viper.kvstore.pubsub.shard_contention"),
            before.counter_value("viper.kvstore.pubsub.shard_contention"));
}

TEST(KvStoreFaults, RetrySucceedsAfterInjectedTransients) {
  KvStore db;
  db.set("k", "v");
  // First two gets fail with kUnavailable; the third goes through.
  fault::FaultPlan plan(7);
  fault::FaultRule rule = fault::FaultRule::fail("kvstore.get");
  rule.max_injections = 2;
  plan.add(rule);
  fault::ScopedPlan chaos{std::move(plan)};

  RetryPolicy policy{.max_attempts = 4,
                     .initial_backoff_seconds = 0.0001,
                     .max_backoff_seconds = 0.0001,
                     .backoff_multiplier = 1.0,
                     .jitter = 0.0};
  int attempts = 0;
  auto got = retry_call(policy, nullptr, [&db] { return db.get("k"); }, &attempts);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().value, "v");
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(fault::FaultInjector::global().report().failures, 2u);
}

TEST(KvStoreFaults, ExhaustionSurfacesTheInjectedStatus) {
  KvStore db;
  db.set("k", "v");
  fault::ScopedPlan chaos{fault::FaultPlan(7).add(fault::FaultRule::fail("kvstore.get"))};

  RetryPolicy policy{.max_attempts = 3,
                     .initial_backoff_seconds = 0.0001,
                     .max_backoff_seconds = 0.0001,
                     .backoff_multiplier = 1.0,
                     .jitter = 0.0};
  int attempts = 0;
  auto got = retry_call(policy, nullptr, [&db] { return db.get("k"); }, &attempts);
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(got.status().message(), "injected fault");
  EXPECT_EQ(attempts, 3);
}

TEST(PubSubFaults, DroppedDeliveryIsCountedAndRecoverable) {
  auto bus = PubSub::create();
  auto sub = bus->subscribe("ch");
  fault::ScopedPlan chaos{
      fault::FaultPlan(7).add(fault::FaultRule::drop_nth("kvstore.pubsub.deliver", 1))};

  // First publish: delivery to the only subscriber is dropped.
  EXPECT_EQ(bus->publish("ch", "lost"), 0u);
  EXPECT_FALSE(sub.poll().has_value());
  EXPECT_EQ(fault::FaultInjector::global().report().drops, 1u);

  // The bus itself is healthy: the next publish lands.
  EXPECT_EQ(bus->publish("ch", "delivered"), 1u);
  auto event = sub.next(1.0);
  ASSERT_TRUE(event.is_ok());
  EXPECT_EQ(event.value().payload, "delivered");
}

}  // namespace
}  // namespace viper::kv
