// Tests for the Transfer Selector (paper fig. 7): strategy choice under
// link availability, memory headroom, and stall budgets.
#include <gtest/gtest.h>

#include "viper/core/selector.hpp"

namespace viper::core {
namespace {

constexpr std::uint64_t kModel = 4'700'000'000ULL;  // TC1

SelectorInputs rich_inputs() {
  return SelectorInputs{
      .model_bytes = kModel,
      .num_tensors = 10,
      .gpu_free_bytes = 30'000'000'000ULL,
      .host_free_bytes = 400'000'000'000ULL,
  };
}

TransferSelector polaris_selector() {
  return TransferSelector(net::Fabric::polaris(), PlatformModel::polaris());
}

TEST(Selector, PrefersGpuDirectWhenEverythingIsAvailable) {
  auto decision = polaris_selector().select(rich_inputs());
  EXPECT_EQ(decision.strategy, Strategy::kGpuAsync);
  EXPECT_GT(decision.expected.update_latency, 0.0);
}

TEST(Selector, SyncModeWhenAsyncNotPreferred) {
  SelectorInputs inputs = rich_inputs();
  inputs.prefer_async = false;
  auto decision = polaris_selector().select(inputs);
  EXPECT_EQ(decision.strategy, Strategy::kGpuSync);
}

TEST(Selector, FallsBackToHostWithoutGpuDirect) {
  // The §4.4 fallback chain: no GPUDirect → host-to-host RDMA.
  net::Fabric fabric = net::Fabric::polaris();
  fabric.set_available(net::LinkKind::kGpuDirect, false);
  TransferSelector selector(std::move(fabric), PlatformModel::polaris());
  auto decision = selector.select(rich_inputs());
  EXPECT_EQ(decision.strategy, Strategy::kHostAsync);
  EXPECT_NE(decision.reason.find("no GPUDirect"), std::string::npos);
}

TEST(Selector, FallsBackToPfsWithoutAnyRdma) {
  net::Fabric fabric = net::Fabric::polaris();
  fabric.set_available(net::LinkKind::kGpuDirect, false);
  fabric.set_available(net::LinkKind::kHostRdma, false);
  TransferSelector selector(std::move(fabric), PlatformModel::polaris());
  auto decision = selector.select(rich_inputs());
  EXPECT_EQ(decision.strategy, Strategy::kViperPfs);
}

TEST(Selector, GpuMemoryPressureForcesHostPath) {
  // A 4.7 GB send buffer no longer fits beside the training state.
  SelectorInputs inputs = rich_inputs();
  inputs.gpu_free_bytes = 1'000'000'000ULL;
  auto decision = polaris_selector().select(inputs);
  EXPECT_EQ(decision.strategy, Strategy::kHostAsync);
  EXPECT_NE(decision.reason.find("GPU memory"), std::string::npos);
}

TEST(Selector, HostMemoryPressureForcesPfs) {
  SelectorInputs inputs = rich_inputs();
  inputs.gpu_free_bytes = 0;
  inputs.host_free_bytes = 0;
  auto decision = polaris_selector().select(inputs);
  EXPECT_EQ(decision.strategy, Strategy::kViperPfs);
}

TEST(Selector, StallBudgetSkipsSlowCapturePaths) {
  // Host async stalls ~1.4 s for TC1; a 0.1 s budget admits only the GPU
  // snapshot (≈0.06 s).
  SelectorInputs inputs = rich_inputs();
  inputs.stall_budget = 0.1;
  auto decision = polaris_selector().select(inputs);
  EXPECT_EQ(decision.strategy, Strategy::kGpuAsync);
  EXPECT_LT(decision.expected.producer_stall, 0.1);

  // Without GPUDirect the same budget rejects host async too — the PFS
  // safety net is chosen even though it stalls longer (nothing else works).
  net::Fabric fabric = net::Fabric::polaris();
  fabric.set_available(net::LinkKind::kGpuDirect, false);
  TransferSelector selector(std::move(fabric), PlatformModel::polaris());
  auto fallback = selector.select(inputs);
  EXPECT_EQ(fallback.strategy, Strategy::kViperPfs);
}

TEST(Selector, SmallModelFitsEverywhere) {
  SelectorInputs inputs = rich_inputs();
  inputs.model_bytes = 600'000'000ULL;  // NT3.A
  inputs.gpu_free_bytes = 700'000'000ULL;
  auto decision = polaris_selector().select(inputs);
  EXPECT_EQ(decision.strategy, Strategy::kGpuAsync);
}

TEST(Selector, DecisionCarriesExpectedCosts) {
  auto decision = polaris_selector().select(rich_inputs());
  const PathCosts direct = PlatformModel::polaris().update_costs(
      decision.strategy, kModel, 10);
  EXPECT_DOUBLE_EQ(decision.expected.update_latency, direct.update_latency);
  EXPECT_DOUBLE_EQ(decision.expected.producer_stall, direct.producer_stall);
}

}  // namespace
}  // namespace viper::core
