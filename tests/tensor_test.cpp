// Unit tests for viper_tensor: shapes, tensors, models, architectures.
#include <gtest/gtest.h>

#include "viper/common/units.hpp"
#include "viper/tensor/architectures.hpp"
#include "viper/tensor/model.hpp"
#include "viper/tensor/tensor.hpp"

namespace viper {
namespace {

TEST(Shape, NumElements) {
  EXPECT_EQ(Shape({}).num_elements(), 1);  // scalar
  EXPECT_EQ(Shape({4}).num_elements(), 4);
  EXPECT_EQ(Shape({3, 4, 5}).num_elements(), 60);
  EXPECT_EQ(Shape({3, 0, 5}).num_elements(), 0);
}

TEST(Shape, Validity) {
  EXPECT_TRUE(Shape({2, 3}).valid());
  EXPECT_TRUE(Shape({0}).valid());
  EXPECT_FALSE(Shape({-1, 3}).valid());
}

TEST(Shape, ToString) {
  EXPECT_EQ(Shape({128, 20, 1}).to_string(), "[128, 20, 1]");
  EXPECT_EQ(Shape({}).to_string(), "[]");
}

TEST(DType, SizesAndNames) {
  EXPECT_EQ(dtype_size(DType::kF32), 4u);
  EXPECT_EQ(dtype_size(DType::kF64), 8u);
  EXPECT_EQ(dtype_size(DType::kF16), 2u);
  EXPECT_EQ(dtype_size(DType::kU8), 1u);
  EXPECT_EQ(to_string(DType::kI64), "i64");
  EXPECT_EQ(dtype_from_string("f32").value(), DType::kF32);
  EXPECT_FALSE(dtype_from_string("bogus").is_ok());
  EXPECT_FALSE(dtype_from_wire(200).is_ok());
}

TEST(Tensor, ZerosAllocatesAndZeroes) {
  auto t = Tensor::zeros(DType::kF32, Shape{2, 3});
  ASSERT_TRUE(t.is_ok());
  EXPECT_EQ(t.value().byte_size(), 24u);
  EXPECT_EQ(t.value().num_elements(), 6);
  for (float v : t.value().data<float>()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, ZeroSizedTensorIsValid) {
  auto t = Tensor::zeros(DType::kF32, Shape{0, 8});
  ASSERT_TRUE(t.is_ok());
  EXPECT_EQ(t.value().byte_size(), 0u);
}

TEST(Tensor, RejectsNegativeShape) {
  EXPECT_FALSE(Tensor::zeros(DType::kF32, Shape{-2}).is_ok());
}

TEST(Tensor, RandomIsBoundedAndSeeded) {
  Rng rng1(99), rng2(99);
  auto a = Tensor::random(DType::kF32, Shape{64}, rng1, 0.25);
  auto b = Tensor::random(DType::kF32, Shape{64}, rng2, 0.25);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_TRUE(a.value().equals(b.value()));
  for (float v : a.value().data<float>()) {
    EXPECT_GE(v, -0.25f);
    EXPECT_LE(v, 0.25f);
  }
}

TEST(Tensor, FromBytesValidatesSize) {
  std::vector<std::byte> buf(12);
  EXPECT_TRUE(Tensor::from_bytes(DType::kF32, Shape{3}, buf).is_ok());
  EXPECT_FALSE(Tensor::from_bytes(DType::kF32, Shape{4}, std::move(buf)).is_ok());
}

TEST(Tensor, PerturbChangesFloatsOnly) {
  Rng rng(1);
  auto f = Tensor::zeros(DType::kF32, Shape{16}).value();
  auto i = Tensor::zeros(DType::kI32, Shape{16}).value();
  auto f_before = f;
  auto i_before = i;
  f.perturb(rng, 0.1);
  i.perturb(rng, 0.1);
  EXPECT_FALSE(f.equals(f_before));
  EXPECT_TRUE(i.equals(i_before));
}

TEST(Tensor, EqualsChecksShapeDtypeAndBytes) {
  auto a = Tensor::zeros(DType::kF32, Shape{4}).value();
  auto b = Tensor::zeros(DType::kF32, Shape{2, 2}).value();
  auto c = Tensor::zeros(DType::kI32, Shape{4}).value();
  EXPECT_FALSE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
  EXPECT_TRUE(a.equals(a));
}

TEST(Model, AddAndLookup) {
  Model m("net");
  ASSERT_TRUE(m.add_tensor("w", Tensor::zeros(DType::kF32, Shape{4}).value()).is_ok());
  EXPECT_TRUE(m.has_tensor("w"));
  EXPECT_TRUE(m.tensor("w").is_ok());
  EXPECT_FALSE(m.tensor("nope").is_ok());
  EXPECT_EQ(m.num_tensors(), 1u);
  EXPECT_EQ(m.num_parameters(), 4);
  EXPECT_EQ(m.payload_bytes(), 16u);
}

TEST(Model, RejectsDuplicateTensor) {
  Model m("net");
  ASSERT_TRUE(m.add_tensor("w", Tensor::zeros(DType::kF32, Shape{4}).value()).is_ok());
  EXPECT_EQ(m.add_tensor("w", Tensor::zeros(DType::kF32, Shape{4}).value()).code(),
            StatusCode::kAlreadyExists);
}

TEST(Model, UpdateEnforcesShapeAndDtype) {
  Model m("net");
  ASSERT_TRUE(m.add_tensor("w", Tensor::zeros(DType::kF32, Shape{4}).value()).is_ok());
  EXPECT_TRUE(m.update_tensor("w", Tensor::zeros(DType::kF32, Shape{4}).value()).is_ok());
  EXPECT_EQ(m.update_tensor("w", Tensor::zeros(DType::kF32, Shape{5}).value()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(m.update_tensor("missing", Tensor::zeros(DType::kF32, Shape{4}).value()).code(),
            StatusCode::kNotFound);
}

TEST(Model, CostBytesPrefersNominal) {
  Model m("net");
  ASSERT_TRUE(m.add_tensor("w", Tensor::zeros(DType::kF32, Shape{4}).value()).is_ok());
  EXPECT_EQ(m.cost_bytes(), 16u);
  m.set_nominal_bytes(4'700'000'000ULL);
  EXPECT_EQ(m.cost_bytes(), 4'700'000'000ULL);
}

TEST(Model, SameWeightsDetectsDrift) {
  Rng rng(3);
  Model a("net");
  ASSERT_TRUE(
      a.add_tensor("w", Tensor::random(DType::kF32, Shape{32}, rng).value()).is_ok());
  Model b = a;
  EXPECT_TRUE(a.same_weights(b));
  b.perturb_weights(rng, 0.01);
  EXPECT_FALSE(a.same_weights(b));
}

class ArchitectureBuilders : public ::testing::TestWithParam<AppModel> {};

TEST_P(ArchitectureBuilders, BuildsNonEmptyScaledModel) {
  ArchitectureOptions options;
  auto model = build_app_model(GetParam(), options);
  ASSERT_TRUE(model.is_ok()) << model.status().to_string();
  const Model& m = model.value();
  EXPECT_GT(m.num_tensors(), 4u);
  EXPECT_GT(m.num_parameters(), 0);
  EXPECT_EQ(m.nominal_bytes(), nominal_model_bytes(GetParam()));
  // Scaled-down payload must stay test-friendly (< 32 MiB).
  EXPECT_LT(m.payload_bytes(), 32u * kMiB);
}

TEST_P(ArchitectureBuilders, DeterministicForSeed) {
  auto a = build_app_model(GetParam(), {});
  auto b = build_app_model(GetParam(), {});
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_TRUE(a.value().same_weights(b.value()));
}

INSTANTIATE_TEST_SUITE_P(AllApps, ArchitectureBuilders,
                         ::testing::Values(AppModel::kNt3A, AppModel::kNt3B,
                                           AppModel::kTc1, AppModel::kPtychoNN),
                         [](const auto& info) {
                           std::string name{to_string(info.param)};
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

TEST(Architectures, NominalSizesMatchPaper) {
  EXPECT_EQ(nominal_model_bytes(AppModel::kNt3A), 600'000'000ULL);
  EXPECT_EQ(nominal_model_bytes(AppModel::kNt3B), 1'700'000'000ULL);
  EXPECT_EQ(nominal_model_bytes(AppModel::kTc1), 4'700'000'000ULL);
  EXPECT_EQ(nominal_model_bytes(AppModel::kPtychoNN), 4'500'000'000ULL);
}

TEST(Architectures, Tc1IsWiderThanNt3) {
  auto nt3 = build_app_model(AppModel::kNt3A, {}).value();
  auto tc1 = build_app_model(AppModel::kTc1, {}).value();
  EXPECT_GT(tc1.num_parameters(), nt3.num_parameters());
}

TEST(Architectures, PtychoNNHasEncoderAndTwoDecoders) {
  auto m = build_app_model(AppModel::kPtychoNN, {}).value();
  EXPECT_TRUE(m.has_tensor("encoder/conv2d_0/kernel"));
  EXPECT_TRUE(m.has_tensor("decoder_amplitude/conv2d_2/kernel"));
  EXPECT_TRUE(m.has_tensor("decoder_phase/conv2d_2/kernel"));
}

}  // namespace
}  // namespace viper
