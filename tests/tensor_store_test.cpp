// Tests for the tensor-granular repository (DStore/EvoStore stand-in):
// per-tensor versioning, change detection, and partial retrieval.
#include <gtest/gtest.h>

#include "viper/memsys/presets.hpp"
#include "viper/repo/tensor_store.hpp"
#include "viper/tensor/architectures.hpp"

namespace viper::repo {
namespace {

std::shared_ptr<memsys::StorageTier> pfs() {
  return std::make_shared<memsys::MemoryTier>(memsys::polaris_lustre());
}

Model model_v(std::uint64_t version, std::uint64_t seed = 8) {
  Rng rng(seed);
  Model m("net");
  m.set_version(version);
  m.set_iteration(static_cast<std::int64_t>(version));
  EXPECT_TRUE(m.add_tensor("a", Tensor::random(DType::kF32, Shape{512}, rng).value())
                  .is_ok());
  EXPECT_TRUE(m.add_tensor("b", Tensor::random(DType::kF32, Shape{256}, rng).value())
                  .is_ok());
  EXPECT_TRUE(m.add_tensor("c", Tensor::random(DType::kF32, Shape{64}, rng).value())
                  .is_ok());
  return m;
}

TEST(TensorStore, PutThenGetRoundTrips) {
  TensorStore store(pfs());
  const Model model = model_v(1);
  auto report = store.put_model(model);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().tensors_written, 3u);
  EXPECT_EQ(report.value().tensors_skipped, 0u);
  EXPECT_GT(report.value().io_seconds, 0.0);

  GetReport get_report;
  auto loaded = store.get_model("net", &get_report);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_TRUE(loaded.value().same_weights(model));
  EXPECT_EQ(loaded.value().version(), 1u);
  EXPECT_EQ(get_report.tensors_read, 3u);
}

TEST(TensorStore, UnchangedTensorsAreSkippedOnReput) {
  TensorStore store(pfs());
  ASSERT_TRUE(store.put_model(model_v(1)).is_ok());
  // Same weights, new version — the incremental-storage scenario.
  auto report = store.put_model(model_v(2));
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().tensors_written, 0u);
  EXPECT_EQ(report.value().tensors_skipped, 3u);
  EXPECT_EQ(report.value().bytes_written, 0u);
  EXPECT_EQ(store.get_model("net").value().version(), 2u);
}

TEST(TensorStore, OnlyChangedTensorIsRewritten) {
  TensorStore store(pfs());
  Model v1 = model_v(1);
  ASSERT_TRUE(store.put_model(v1).is_ok());
  Model v2 = v1;
  v2.set_version(2);
  Rng rng(99);
  v2.mutable_tensor("b").value()->perturb(rng, 0.1);

  auto report = store.put_model(v2).value();
  EXPECT_EQ(report.tensors_written, 1u);
  EXPECT_EQ(report.tensors_skipped, 2u);
  EXPECT_LT(report.bytes_written, v2.payload_bytes());
  EXPECT_TRUE(store.get_model("net").value().same_weights(v2));
}

TEST(TensorStore, PartialRetrievalReadsOnlyRequestedTensors) {
  TensorStore store(pfs());
  const Model model = model_v(1);
  ASSERT_TRUE(store.put_model(model).is_ok());

  GetReport report;
  auto partial = store.get_tensors("net", {"a"}, &report);
  ASSERT_TRUE(partial.is_ok());
  EXPECT_EQ(partial.value().num_tensors(), 1u);
  EXPECT_EQ(report.tensors_read, 1u);
  EXPECT_LT(report.bytes_read, model.payload_bytes());
  EXPECT_TRUE(
      partial.value().tensor("a").value()->equals(*model.tensor("a").value()));
}

TEST(TensorStore, SingleTensorFetch) {
  TensorStore store(pfs());
  const Model model = model_v(1);
  ASSERT_TRUE(store.put_model(model).is_ok());
  auto tensor = store.get_tensor("net", "c");
  ASSERT_TRUE(tensor.is_ok());
  EXPECT_TRUE(tensor.value().equals(*model.tensor("c").value()));
}

TEST(TensorStore, RemovedTensorsDisappear) {
  TensorStore store(pfs());
  Model v1 = model_v(1);
  ASSERT_TRUE(store.put_model(v1).is_ok());
  Model v2("net");
  v2.set_version(2);
  ASSERT_TRUE(v2.add_tensor("a", *v1.tensor("a").value()).is_ok());
  ASSERT_TRUE(store.put_model(v2).is_ok());

  EXPECT_EQ(store.list_tensors("net").value().size(), 1u);
  EXPECT_EQ(store.get_tensor("net", "b").status().code(), StatusCode::kNotFound);
}

TEST(TensorStore, MissingModelAndTensorAreNotFound) {
  TensorStore store(pfs());
  EXPECT_EQ(store.get_model("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.list_tensors("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(store.contains("ghost"));
  ASSERT_TRUE(store.put_model(model_v(1)).is_ok());
  EXPECT_EQ(store.get_tensor("net", "zzz").status().code(), StatusCode::kNotFound);
}

TEST(TensorStore, RejectsUnnamedModel) {
  TensorStore store(pfs());
  EXPECT_FALSE(store.put_model(Model{}).is_ok());
}

TEST(TensorStore, TwoModelsCoexist) {
  TensorStore store(pfs());
  Model a = model_v(1, 1);
  Model b = model_v(1, 2);
  b.set_name("other");
  ASSERT_TRUE(store.put_model(a).is_ok());
  ASSERT_TRUE(store.put_model(b).is_ok());
  EXPECT_TRUE(store.get_model("net").value().same_weights(a));
  EXPECT_TRUE(store.get_model("other").value().same_weights(b));
}

TEST(TensorStore, FineGrainBeatsFullModelForPartialUpdates) {
  // The DStore argument: across a transfer-learning run where one layer
  // changes per version, tensor-level storage moves far fewer bytes than
  // re-writing whole checkpoints.
  TensorStore store(pfs());
  Model model = build_app_model(AppModel::kTc1, {}).value();
  model.set_version(1);
  ASSERT_TRUE(store.put_model(model).is_ok());

  Rng rng(41);
  std::uint64_t incremental_bytes = 0;
  for (std::uint64_t v = 2; v <= 6; ++v) {
    model.set_version(v);
    model.mutable_tensor("dense_2/kernel").value()->perturb(rng, 0.01);
    incremental_bytes += store.put_model(model).value().bytes_written;
  }
  const std::uint64_t full_rewrites = 5 * model.payload_bytes();
  EXPECT_LT(incremental_bytes, full_rewrites / 10);
}

}  // namespace
}  // namespace viper::repo
