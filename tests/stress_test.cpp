// Concurrency stress tests: the live engine under sustained contention —
// rapid producer updates racing a serving consumer, parallel loaders,
// per-source FIFO ordering on the comm layer, tensor-store contention.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "viper/core/consumer.hpp"
#include "viper/fault/fault.hpp"
#include "viper/obs/context.hpp"
#include "viper/obs/ledger.hpp"
#include "viper/obs/metrics.hpp"
#include "viper/obs/slo.hpp"
#include "viper/repo/tensor_store.hpp"
#include "viper/sim/chaos.hpp"
#include "viper/tensor/architectures.hpp"

namespace viper::core {
namespace {

Model tiny_model(std::uint64_t seed) {
  Rng rng(seed);
  Model m("net");
  (void)m.add_tensor("w", Tensor::random(DType::kF32, Shape{512}, rng).value());
  return m;
}

TEST(Stress, RapidUpdatesRacingAServingConsumer) {
  auto services = std::make_shared<SharedServices>();
  auto world = net::CommWorld::create(2);
  ModelWeightsHandler::Options options;
  options.strategy = Strategy::kHostAsync;
  auto handler = std::make_shared<ModelWeightsHandler>(services, options);
  std::thread server([&] { handler->serve_transfers(world->comm(0)); });

  InferenceConsumer::Options consumer_options;
  consumer_options.loader.producer_rank = 0;
  InferenceConsumer consumer(services, world->comm(1), "net", consumer_options);
  consumer.start();

  // A "serving" thread hammers active_model() while updates stream in.
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread serving([&] {
    while (!stop.load()) {
      if (auto model = consumer.active_model()) {
        if (model->num_tensors() != 1) ++torn;
      }
      std::this_thread::yield();  // single-core box: let the engine run
    }
  });

  constexpr std::uint64_t kVersions = 60;
  Model model = tiny_model(1);
  Rng rng(2);
  for (std::uint64_t v = 1; v <= kVersions; ++v) {
    model.set_version(v);
    model.perturb_weights(rng, 1e-3);
    ASSERT_TRUE(handler->save_weights("net", model).is_ok());
  }
  handler->drain();
  for (int spin = 0; spin < 1000 && consumer.active_version() < kVersions;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop = true;
  serving.join();

  EXPECT_EQ(torn.load(), 0);
  // The racing reader may be starved on a single-core host; the serving
  // path itself must still work from this thread.
  for (int i = 0; i < 10; ++i) {
    auto model = consumer.active_model();
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->num_tensors(), 1u);
  }
  EXPECT_EQ(consumer.active_version(), kVersions);
  ASSERT_NE(consumer.active_model(), nullptr);
  EXPECT_TRUE(consumer.active_model()->same_weights(model));

  consumer.stop();
  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(world->comm(1), 0).is_ok());
  server.join();
}

TEST(Stress, ManyLoadersPullConcurrently) {
  auto services = std::make_shared<SharedServices>();
  constexpr int kLoaders = 4;
  auto world = net::CommWorld::create(kLoaders + 1);
  ModelWeightsHandler::Options options;
  options.strategy = Strategy::kGpuSync;
  auto handler = std::make_shared<ModelWeightsHandler>(services, options);
  std::thread server([&] { handler->serve_transfers(world->comm(0)); });

  Model model = tiny_model(5);
  model.set_version(1);
  ASSERT_TRUE(handler->save_weights("net", model).is_ok());

  std::atomic<int> successes{0};
  std::vector<std::thread> loaders;
  for (int rank = 1; rank <= kLoaders; ++rank) {
    loaders.emplace_back([&, rank] {
      ModelLoader::Options loader_options;
      loader_options.producer_rank = 0;
      ModelLoader loader(services, world->comm(rank), loader_options);
      for (int i = 0; i < 25; ++i) {
        auto loaded = loader.load_weights("net");
        if (loaded.is_ok() && loaded.value().same_weights(model)) ++successes;
      }
    });
  }
  for (auto& t : loaders) t.join();
  EXPECT_EQ(successes.load(), kLoaders * 25);

  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(world->comm(1), 0).is_ok());
  server.join();
}

TEST(Stress, PerSourceFifoOrderingUnderConcurrency) {
  // Messages from each source must arrive in send order even when many
  // sources interleave.
  constexpr int kSenders = 4;
  constexpr int kPerSender = 300;
  auto world = net::CommWorld::create(kSenders + 1);
  std::vector<std::thread> senders;
  for (int rank = 1; rank <= kSenders; ++rank) {
    senders.emplace_back([&world, rank] {
      auto comm = world->comm(rank);
      for (int i = 0; i < kPerSender; ++i) {
        std::byte value{static_cast<unsigned char>(i % 251)};
        ASSERT_TRUE(comm.send(0, 3, {&value, 1}).is_ok());
      }
    });
  }
  auto receiver = world->comm(0);
  std::vector<int> expected(kSenders + 1, 0);
  for (int i = 0; i < kSenders * kPerSender; ++i) {
    auto msg = receiver.recv(net::kAnySource, 3, 10.0);
    ASSERT_TRUE(msg.is_ok());
    const int source = msg.value().source;
    const int value = static_cast<int>(msg.value().payload.at(0));
    EXPECT_EQ(value, expected[static_cast<std::size_t>(source)] % 251)
        << "out-of-order from rank " << source;
    ++expected[static_cast<std::size_t>(source)];
  }
  for (auto& t : senders) t.join();
  for (int rank = 1; rank <= kSenders; ++rank) {
    EXPECT_EQ(expected[static_cast<std::size_t>(rank)], kPerSender);
  }
}

TEST(Stress, TensorStoreConcurrentMixedWorkload) {
  repo::TensorStore store(
      std::make_shared<memsys::MemoryTier>(memsys::polaris_dram()));
  // Seed two models.
  for (const char* name : {"a", "b"}) {
    Model m(name);
    Rng rng(7);
    (void)m.add_tensor("w", Tensor::random(DType::kF32, Shape{128}, rng).value());
    m.set_version(1);
    ASSERT_TRUE(store.put_model(m).is_ok());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, &failures, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 100);
      const std::string name = t % 2 == 0 ? "a" : "b";
      for (int i = 0; i < 100; ++i) {
        if (i % 3 == 0) {
          Model m(name);
          (void)m.add_tensor(
              "w", Tensor::random(DType::kF32, Shape{128}, rng).value());
          m.set_version(static_cast<std::uint64_t>(i) + 2);
          if (!store.put_model(m).is_ok()) ++failures;
        } else {
          if (!store.get_model(name).is_ok()) ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Stress, ChaosSoakSurvivesRandomizedFaults) {
  // A coupled producer/consumer run under a randomized (but seeded, hence
  // replayable) fault plan: message drops/corruptions/delays, lost
  // notifications, failing tier writes. The run must not deadlock, the
  // consumer must never observe a torn model or a version regression, and
  // once faults stop it must converge to the final version.
  constexpr std::uint64_t kChaosSeed = 0xC0FFEE;
  SCOPED_TRACE("chaos seed = 0xC0FFEE");

  // Observability rides along: the soak ends with an SLO verdict over the
  // ledger, not just the coherence invariants below.
  obs::VersionLedger::global().clear();
  obs::VersionLedger::set_armed(true);
  obs::set_context_armed(true);

  auto services = std::make_shared<SharedServices>();
  auto world = net::CommWorld::create(2);
  ModelWeightsHandler::Options options;
  options.strategy = Strategy::kHostAsync;
  auto handler = std::make_shared<ModelWeightsHandler>(services, options);
  std::thread server([&] { handler->serve_transfers(world->comm(0)); });

  InferenceConsumer::Options consumer_options;
  consumer_options.loader.producer_rank = 0;
  consumer_options.loader.request_timeout = 0.2;
  consumer_options.loader.retry.max_attempts = 2;
  consumer_options.loader.retry.initial_backoff_seconds = 0.001;
  consumer_options.loader.retry.max_backoff_seconds = 0.01;
  consumer_options.resync_interval = 0.05;
  InferenceConsumer consumer(services, world->comm(1), "net", consumer_options);
  consumer.start();

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<int> regressions{0};
  std::thread serving([&] {
    std::uint64_t last_seen = 0;
    while (!stop.load()) {
      if (auto model = consumer.active_model()) {
        if (model->num_tensors() != 1) ++torn;
        const std::uint64_t v = model->version();
        if (v < last_seen) ++regressions;
        if (v > last_seen) last_seen = v;
      }
      std::this_thread::yield();
    }
  });

  constexpr std::uint64_t kChaosVersions = 40;
  Model model = tiny_model(1);
  Rng rng(2);
  {
    fault::ScopedPlan chaos{sim::chaos_plan(kChaosSeed)};
    for (std::uint64_t v = 1; v <= kChaosVersions; ++v) {
      model.set_version(v);
      model.perturb_weights(rng, 1e-3);
      // Saves themselves may fail under chaos (every tier write can be
      // failed); the engine must stay coherent regardless.
      (void)handler->save_weights("net", model);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    handler->drain();
  }

  // Faults stopped; one clean save must bring the consumer to the head.
  model.set_version(kChaosVersions + 1);
  ASSERT_TRUE(handler->save_weights("net", model).is_ok());
  handler->drain();
  for (int spin = 0;
       spin < 3000 && consumer.active_version() < kChaosVersions + 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop = true;
  serving.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(regressions.load(), 0);
  EXPECT_EQ(consumer.active_version(), kChaosVersions + 1);
  ASSERT_NE(consumer.active_model(), nullptr);
  EXPECT_TRUE(consumer.active_model()->same_weights(model));

  // Machine-checked verdict: every swapped version's end-to-end latency
  // within a generous wall-clock budget, and zero checkpoints served
  // despite failing verification (chaos corruption must be caught by the
  // transfer checksums, never reach a consumer swap).
  obs::SloSpec spec;
  spec.model = "net";
  spec.max_p99_update_latency_seconds = 30.0;
  const obs::SloReport verdict =
      obs::evaluate_slo(spec, obs::VersionLedger::global(),
                        obs::MetricsRegistry::global().snapshot());
  EXPECT_TRUE(verdict.pass) << verdict.to_text();
  obs::VersionLedger::set_armed(false);
  obs::set_context_armed(false);

  consumer.stop();
  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(world->comm(1), 0).is_ok());
  server.join();
}

TEST(Stress, PubSubManySubscribersManyPublishers) {
  auto bus = kv::PubSub::create();
  constexpr int kSubscribers = 8;
  constexpr int kMessages = 200;
  std::vector<kv::Subscription> subs;
  for (int i = 0; i < kSubscribers; ++i) subs.push_back(bus->subscribe("ch"));

  std::vector<std::thread> publishers;
  for (int p = 0; p < 2; ++p) {
    publishers.emplace_back([&bus] {
      for (int i = 0; i < kMessages / 2; ++i) bus->publish("ch", "m");
    });
  }
  for (auto& t : publishers) t.join();
  for (auto& sub : subs) {
    int received = 0;
    while (sub.poll()) ++received;
    EXPECT_EQ(received, kMessages);
  }
}

}  // namespace
}  // namespace viper::core
