// Unit tests for viper_memsys: device cost models and tier object stores.
#include <gtest/gtest.h>

#include <thread>

#include "viper/common/units.hpp"
#include "viper/memsys/presets.hpp"
#include "viper/memsys/storage_tier.hpp"

namespace viper::memsys {
namespace {

std::vector<std::byte> blob_of(std::size_t n, std::uint8_t fill = 0xAA) {
  return std::vector<std::byte>(n, static_cast<std::byte>(fill));
}

TEST(DeviceModel, BandwidthDominatesLargeTransfers) {
  DeviceModel d{.name = "d", .write_bw = 1e9, .read_bw = 2e9};
  EXPECT_NEAR(d.write_seconds(1'000'000'000), 1.0, 1e-9);
  EXPECT_NEAR(d.read_seconds(1'000'000'000), 0.5, 1e-9);
}

TEST(DeviceModel, LatencyAndMetadataOps) {
  DeviceModel d{.name = "d",
                .write_bw = 1e9,
                .read_bw = 1e9,
                .access_latency = 0.002,
                .metadata_op_latency = 0.015};
  EXPECT_NEAR(d.write_seconds(0, 2), 0.002 + 0.030, 1e-12);
}

TEST(DeviceModel, SmallIoFloorDominatesTinyAccesses) {
  DeviceModel d{.name = "pfs",
                .write_bw = 1e9,
                .read_bw = 1e9,
                .small_io_threshold = 4 * kMiB,
                .small_io_penalty = 0.005};
  // A 1 MiB access would take ~1 ms raw; the 5 ms service floor wins.
  EXPECT_NEAR(d.write_seconds(1 * kMiB), 0.005, 1e-9);
  // Large accesses are pure bandwidth.
  EXPECT_NEAR(d.write_seconds(8 * kMiB), static_cast<double>(8 * kMiB) / 1e9,
              1e-9);
  // Zero-byte accesses do not pay the floor.
  EXPECT_NEAR(d.write_seconds(0), 0.0, 1e-12);
}

TEST(DeviceModel, SmallIoFloorKeepsCostMonotone) {
  DeviceModel d{.name = "pfs",
                .write_bw = 1e9,
                .read_bw = 1e9,
                .small_io_threshold = 4 * kMiB,
                .small_io_penalty = 0.005};
  double prev = 0.0;
  for (std::uint64_t bytes = 1; bytes <= 64 * kMiB; bytes *= 2) {
    const double t = d.write_seconds(bytes);
    EXPECT_GE(t, prev) << "at " << bytes;
    prev = t;
  }
}

TEST(DeviceModel, JitterStaysWithinBounds) {
  DeviceModel d{.name = "d", .write_bw = 1e9, .read_bw = 1e9, .jitter_fraction = 0.1};
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double t = d.write_seconds(1'000'000'000, 0, &rng);
    EXPECT_GT(t, 1.0 / 1.3);
    EXPECT_LT(t, 1.0 / 0.7);
  }
}

TEST(Presets, TierOrderingHolds) {
  // The engine's decisions depend on GPU > DRAM > NVMe > PFS bandwidth.
  EXPECT_GT(polaris_gpu_hbm().write_bw, polaris_dram().write_bw);
  EXPECT_GT(polaris_dram().write_bw, polaris_nvme().write_bw);
  EXPECT_GT(polaris_nvme().write_bw, polaris_lustre().write_bw);
  EXPECT_GT(polaris_lustre().write_bw, polaris_lustre_h5py().write_bw);
}

TEST(StorageTier, PutGetRoundTrip) {
  MemoryTier tier(polaris_dram());
  auto ticket = tier.put("k1", blob_of(100));
  ASSERT_TRUE(ticket.is_ok());
  EXPECT_EQ(ticket.value().bytes, 100u);
  std::vector<std::byte> out;
  ASSERT_TRUE(tier.get("k1", out).is_ok());
  EXPECT_EQ(out, blob_of(100));
  EXPECT_EQ(tier.used_bytes(), 100u);
  EXPECT_EQ(tier.num_objects(), 1u);
}

TEST(StorageTier, GetMissingFails) {
  MemoryTier tier(polaris_dram());
  std::vector<std::byte> out;
  EXPECT_EQ(tier.get("missing", out).status().code(), StatusCode::kNotFound);
}

TEST(StorageTier, OverwriteReplacesAndAdjustsUsage) {
  MemoryTier tier(polaris_dram());
  ASSERT_TRUE(tier.put("k", blob_of(100, 1)).is_ok());
  ASSERT_TRUE(tier.put("k", blob_of(40, 2)).is_ok());
  EXPECT_EQ(tier.used_bytes(), 40u);
  std::vector<std::byte> out;
  ASSERT_TRUE(tier.get("k", out).is_ok());
  EXPECT_EQ(out, blob_of(40, 2));
}

TEST(StorageTier, EraseFreesSpace) {
  MemoryTier tier(polaris_dram());
  ASSERT_TRUE(tier.put("k", blob_of(100)).is_ok());
  ASSERT_TRUE(tier.erase("k").is_ok());
  EXPECT_EQ(tier.used_bytes(), 0u);
  EXPECT_FALSE(tier.contains("k"));
  EXPECT_EQ(tier.erase("k").code(), StatusCode::kNotFound);
}

TEST(StorageTier, CostBytesOverrideChargesNominalTime) {
  MemoryTier tier(polaris_dram());
  // Store 1 KB but charge for 4.7 GB — the scaled-model accounting trick.
  auto ticket = tier.put("k", blob_of(1024), 4'700'000'000ULL);
  ASSERT_TRUE(ticket.is_ok());
  EXPECT_GT(ticket.value().seconds, 0.2);  // 4.7 GB / 16 GB/s ≈ 0.29 s
  EXPECT_EQ(ticket.value().bytes, 4'700'000'000ULL);
  EXPECT_EQ(tier.used_bytes(), 1024u);  // real memory use stays small
}

TEST(StorageTier, LruEvictionKeepsLatest) {
  DeviceModel d = polaris_dram();
  d.capacity_bytes = 250;
  MemoryTier tier(d);
  ASSERT_TRUE(tier.put("v1", blob_of(100)).is_ok());
  ASSERT_TRUE(tier.put("v2", blob_of(100)).is_ok());
  ASSERT_TRUE(tier.put("v3", blob_of(100)).is_ok());  // evicts v1
  EXPECT_FALSE(tier.contains("v1"));
  EXPECT_TRUE(tier.contains("v2"));
  EXPECT_TRUE(tier.contains("v3"));
  EXPECT_LE(tier.used_bytes(), 250u);
}

TEST(StorageTier, GetRefreshesLruOrder) {
  DeviceModel d = polaris_dram();
  d.capacity_bytes = 250;
  MemoryTier tier(d);
  ASSERT_TRUE(tier.put("a", blob_of(100)).is_ok());
  ASSERT_TRUE(tier.put("b", blob_of(100)).is_ok());
  std::vector<std::byte> out;
  ASSERT_TRUE(tier.get("a", out).is_ok());  // 'a' becomes most recent
  ASSERT_TRUE(tier.put("c", blob_of(100)).is_ok());  // evicts 'b'
  EXPECT_TRUE(tier.contains("a"));
  EXPECT_FALSE(tier.contains("b"));
}

TEST(StorageTier, ObjectLargerThanCapacityIsRejected) {
  DeviceModel d = polaris_dram();
  d.capacity_bytes = 50;
  MemoryTier tier(d);
  EXPECT_EQ(tier.put("big", blob_of(100)).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(StorageTier, KeysMruOrder) {
  MemoryTier tier(polaris_dram());
  ASSERT_TRUE(tier.put("a", blob_of(1)).is_ok());
  ASSERT_TRUE(tier.put("b", blob_of(1)).is_ok());
  std::vector<std::byte> out;
  ASSERT_TRUE(tier.get("a", out).is_ok());
  const auto keys = tier.keys_mru();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

TEST(StorageTier, ConcurrentPutsAndGetsAreSafe) {
  MemoryTier tier(polaris_dram());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tier, t] {
      for (int i = 0; i < 200; ++i) {
        const std::string key = "k" + std::to_string((t * 200 + i) % 16);
        ASSERT_TRUE(tier.put(key, blob_of(64, static_cast<std::uint8_t>(t))).is_ok());
        std::vector<std::byte> out;
        (void)tier.get(key, out);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(tier.num_objects(), 16u);
}

}  // namespace
}  // namespace viper::memsys
