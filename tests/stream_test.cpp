// Tests for chunked payload streaming and the live pipelined-chain relay.
#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <tuple>

#include "viper/common/rng.hpp"
#include "viper/fault/fault.hpp"
#include "viper/net/stream.hpp"
#include "viper/obs/context.hpp"

namespace viper::net {
namespace {

std::vector<std::byte> random_payload(std::size_t n, std::uint64_t seed = 2) {
  Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.uniform_int(0, 255));
  return out;
}

constexpr int kTag = 55;

TEST(Stream, RoundTripsAcrossThreads) {
  auto world = CommWorld::create(2);
  const auto payload = random_payload(1'000'000);
  std::thread sender([&] {
    ASSERT_TRUE(stream_send(world->comm(0), 1, kTag, payload,
                            {.chunk_bytes = 64 * 1024})
                    .is_ok());
  });
  auto received = stream_recv(world->comm(1), 0, kTag);
  sender.join();
  ASSERT_TRUE(received.is_ok()) << received.status().to_string();
  EXPECT_EQ(received.value(), payload);
}

class StreamSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StreamSizes, ExactReassembly) {
  auto world = CommWorld::create(2);
  const auto payload = random_payload(GetParam());
  std::thread sender([&] {
    ASSERT_TRUE(
        stream_send(world->comm(0), 1, kTag, payload, {.chunk_bytes = 1024})
            .is_ok());
  });
  auto received = stream_recv(world->comm(1), 0, kTag);
  sender.join();
  ASSERT_TRUE(received.is_ok());
  EXPECT_EQ(received.value(), payload);
}

// Sizes around chunk boundaries, including empty and sub-chunk payloads.
INSTANTIATE_TEST_SUITE_P(BoundaryCases, StreamSizes,
                         ::testing::Values(0, 1, 1023, 1024, 1025, 2048, 10'000));

TEST(Stream, RelayChainDeliversToEveryHop) {
  // rank 0 → relay 1 → relay 2 → sink 3: the live pipelined chain.
  auto world = CommWorld::create(4);
  const auto payload = random_payload(300'000, 7);

  std::thread sender([&] {
    ASSERT_TRUE(stream_send(world->comm(0), 1, kTag, payload,
                            {.chunk_bytes = 16 * 1024})
                    .is_ok());
  });
  std::thread relay1([&] {
    auto got = stream_relay(world->comm(1), 0, 2, kTag);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value(), payload);  // relays serve the update too
  });
  std::thread relay2([&] {
    auto got = stream_relay(world->comm(2), 1, 3, kTag);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value(), payload);
  });
  auto sink = stream_recv(world->comm(3), 2, kTag);
  sender.join();
  relay1.join();
  relay2.join();
  ASSERT_TRUE(sink.is_ok()) << sink.status().to_string();
  EXPECT_EQ(sink.value(), payload);
}

TEST(Stream, CoexistsWithOtherTrafficOnOtherTags) {
  auto world = CommWorld::create(2);
  const auto payload = random_payload(100'000, 9);
  std::thread sender([&] {
    // Interleave unrelated messages mid-stream.
    ASSERT_TRUE(world->comm(0).send(1, 99, random_payload(64)).is_ok());
    ASSERT_TRUE(stream_send(world->comm(0), 1, kTag, payload).is_ok());
    ASSERT_TRUE(world->comm(0).send(1, 99, random_payload(64)).is_ok());
  });
  auto received = stream_recv(world->comm(1), 0, kTag);
  sender.join();
  ASSERT_TRUE(received.is_ok());
  EXPECT_EQ(received.value(), payload);
  // The unrelated messages are still retrievable afterwards.
  EXPECT_TRUE(world->comm(1).recv(0, 99, 1.0).is_ok());
  EXPECT_TRUE(world->comm(1).recv(0, 99, 1.0).is_ok());
}

TEST(Stream, MissingChunksTimeOut) {
  auto world = CommWorld::create(2);
  // Send only the header claiming one chunk, never the chunk.
  std::thread sender([&] {
    const auto payload = random_payload(10);
    StreamOptions options;
    options.chunk_bytes = 1024;
    // Hand-roll just the header by sending a real stream to nowhere...
    // simpler: send header via a 1-chunk stream to rank 1 but drop the
    // chunk by sending it on a different tag.
    ASSERT_TRUE(stream_send(world->comm(0), 1, kTag + 1, payload, options).is_ok());
  });
  sender.join();
  // Receive the header from the kTag+1 stream, then starve: use a fresh
  // tag with nothing on it.
  auto result = stream_recv(world->comm(1), 0, kTag + 2, {.timeout_seconds = 0.05});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

TEST(Stream, GarbageHeaderIsDataLoss) {
  auto world = CommWorld::create(2);
  ASSERT_TRUE(world->comm(0).send(1, kTag, random_payload(7)).is_ok());
  auto result = stream_recv(world->comm(1), 0, kTag, {.timeout_seconds = 0.5});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(Stream, RejectsZeroChunkSize) {
  auto world = CommWorld::create(2);
  EXPECT_FALSE(stream_send(world->comm(0), 1, kTag, random_payload(8),
                           {.chunk_bytes = 0})
                   .is_ok());
}

TEST(Stream, ChunkCountIsComputedIn64Bits) {
  // Regression: the chunk count used to be truncated to u32, silently
  // losing chunks for payloads above ~2^32 * chunk_bytes.
  EXPECT_EQ(stream_num_chunks((std::uint64_t{1} << 32) + 1, 1),
            (std::uint64_t{1} << 32) + 1);
  EXPECT_EQ(stream_num_chunks(std::uint64_t{1} << 40, 1 << 20),
            std::uint64_t{1} << 20);
  EXPECT_EQ(stream_num_chunks(1, 1024), 1u);
  EXPECT_EQ(stream_num_chunks(0, 1024), 0u);
  EXPECT_EQ(stream_num_chunks(100, 0), 0u);  // invalid chunk size, no overflow
}

TEST(Stream, TwoInterleavedStreamsOnSamePairDemultiplex) {
  // Two concurrent streams on the SAME (source, tag) pair: per-stream ids
  // let each receiver requeue chunks belonging to the other stream.
  auto world = CommWorld::create(2);
  const auto payload_a = random_payload(64 * 1024, 11);
  const auto payload_b = random_payload(48 * 1024, 13);
  StreamOptions options{.chunk_bytes = 4 * 1024, .timeout_seconds = 5.0};

  std::thread send_a([&] {
    ASSERT_TRUE(stream_send(world->comm(0), 1, kTag, payload_a, options).is_ok());
  });
  std::thread send_b([&] {
    ASSERT_TRUE(stream_send(world->comm(0), 1, kTag, payload_b, options).is_ok());
  });

  std::vector<std::byte> got_a, got_b;
  std::thread recv_a([&] {
    auto got = stream_recv(world->comm(1), 0, kTag, options);
    ASSERT_TRUE(got.is_ok()) << got.status().to_string();
    got_a = std::move(got).value();
  });
  std::thread recv_b([&] {
    auto got = stream_recv(world->comm(1), 0, kTag, options);
    ASSERT_TRUE(got.is_ok()) << got.status().to_string();
    got_b = std::move(got).value();
  });
  send_a.join();
  send_b.join();
  recv_a.join();
  recv_b.join();

  // Receivers race for the headers, so either may get either payload.
  const bool direct = got_a == payload_a && got_b == payload_b;
  const bool swapped = got_a == payload_b && got_b == payload_a;
  EXPECT_TRUE(direct || swapped) << "payloads were torn or cross-assembled";
}

TEST(StreamWire, ContextlessFramesUseTheLegacyHeaderFormat) {
  // With context propagation disarmed the sender emits exactly the
  // pre-observability 40-byte header (flags == 0), and a context-aware
  // receiver parses it as "peer sent no context" — both directions of the
  // version-compat story in one exchange.
  obs::set_context_armed(false);
  auto world = CommWorld::create(2);
  const auto payload = random_payload(64 * 1024, 23);

  obs::TraceContext received_context;
  received_context.trace_id = 999;  // must be overwritten with "invalid"
  StreamOptions recv_options;
  recv_options.context_out = &received_context;

  std::thread sender([&] {
    ASSERT_TRUE(stream_send(world->comm(0), 1, kTag, payload,
                            {.chunk_bytes = 16 * 1024})
                    .is_ok());
  });
  auto received = stream_recv(world->comm(1), 0, kTag, recv_options);
  sender.join();
  ASSERT_TRUE(received.is_ok()) << received.status().to_string();
  EXPECT_EQ(received.value(), payload);
  EXPECT_FALSE(received_context.valid());
}

TEST(StreamWire, ArmedContextRidesTheHeaderAcrossTheWire) {
  obs::set_context_armed(true);
  auto world = CommWorld::create(2);
  const auto payload = random_payload(64 * 1024, 29);

  obs::TraceContext sent;
  sent.trace_id = obs::TraceContext::trace_id_for("net", 7);
  sent.parent_span_id = 41;
  sent.origin_rank = 0;

  obs::TraceContext received_context;
  StreamOptions recv_options;
  recv_options.context_out = &received_context;

  std::thread sender([&] {
    obs::ScopedTraceContext scoped(sent);
    ASSERT_TRUE(stream_send(world->comm(0), 1, kTag, payload,
                            {.chunk_bytes = 16 * 1024})
                    .is_ok());
  });
  auto received = stream_recv(world->comm(1), 0, kTag, recv_options);
  sender.join();
  obs::set_context_armed(false);

  ASSERT_TRUE(received.is_ok()) << received.status().to_string();
  EXPECT_EQ(received.value(), payload);
  ASSERT_TRUE(received_context.valid());
  EXPECT_EQ(received_context.trace_id, sent.trace_id);
  EXPECT_EQ(received_context.origin_rank, sent.origin_rank);
}

TEST(StreamWire, RelayForwardsTheSenderContextUnchanged) {
  // The relay forwards raw header bytes, so a context attached at the
  // origin survives an intermediate hop it never inspected.
  obs::set_context_armed(true);
  auto world = CommWorld::create(3);
  const auto payload = random_payload(32 * 1024, 31);

  obs::TraceContext sent;
  sent.trace_id = obs::TraceContext::trace_id_for("net", 11);
  sent.origin_rank = 0;

  obs::TraceContext received_context;
  StreamOptions recv_options;
  recv_options.context_out = &received_context;

  std::thread sender([&] {
    obs::ScopedTraceContext scoped(sent);
    ASSERT_TRUE(stream_send(world->comm(0), 1, kTag, payload,
                            {.chunk_bytes = 8 * 1024})
                    .is_ok());
  });
  std::thread relay([&] {
    ASSERT_TRUE(stream_relay(world->comm(1), 0, 2, kTag).is_ok());
  });
  auto received = stream_recv(world->comm(2), 1, kTag, recv_options);
  sender.join();
  relay.join();
  obs::set_context_armed(false);

  ASSERT_TRUE(received.is_ok()) << received.status().to_string();
  EXPECT_EQ(received.value(), payload);
  ASSERT_TRUE(received_context.valid());
  EXPECT_EQ(received_context.trace_id, sent.trace_id);
  EXPECT_EQ(received_context.origin_rank, sent.origin_rank);
}

TEST(StreamWire, StripedStreamCarriesContextToo) {
  obs::set_context_armed(true);
  auto world = CommWorld::create(2);
  const auto payload = random_payload(256 * 1024, 37);

  obs::TraceContext sent;
  sent.trace_id = obs::TraceContext::trace_id_for("net", 13);
  sent.origin_rank = 0;

  obs::TraceContext received_context;
  StripedStreamOptions options;
  options.stream.chunk_bytes = 16 * 1024;
  options.num_channels = 2;
  StripedStreamOptions recv_options = options;
  recv_options.stream.context_out = &received_context;

  std::thread sender([&] {
    obs::ScopedTraceContext scoped(sent);
    ASSERT_TRUE(
        striped_stream_send(world->comm(0), 1, kTag, payload, options).is_ok());
  });
  auto received = striped_stream_recv(world->comm(1), 0, kTag, recv_options);
  sender.join();
  obs::set_context_armed(false);

  ASSERT_TRUE(received.is_ok()) << received.status().to_string();
  EXPECT_EQ(received.value(), payload);
  ASSERT_TRUE(received_context.valid());
  EXPECT_EQ(received_context.trace_id, sent.trace_id);
}

TEST(StreamFaults, CorruptedChunkNeverYieldsWrongBytes) {
  // Corrupt every message. Depending on which bytes flip, the receiver
  // sees a checksum mismatch (kDataLoss) or an unassemblable stream that
  // times out — but never silently wrong payload bytes.
  auto world = CommWorld::create(2);
  const auto payload = random_payload(8 * 1024, 17);
  fault::ScopedPlan chaos{fault::FaultPlan(3).add(fault::FaultRule::corrupt("net.send"))};

  StreamOptions options{.chunk_bytes = 1024, .timeout_seconds = 0.2};
  std::thread sender(
      [&] { (void)stream_send(world->comm(0), 1, kTag, payload, options); });
  auto received = stream_recv(world->comm(1), 0, kTag, options);
  sender.join();
  ASSERT_FALSE(received.is_ok());
  EXPECT_TRUE(received.status().code() == StatusCode::kDataLoss ||
              received.status().code() == StatusCode::kTimeout)
      << received.status().to_string();
  EXPECT_GT(fault::FaultInjector::global().report().corruptions, 0u);
}

// ---- Striped interop matrix ------------------------------------------------
// Chunk striping is a send/receive-side concurrency decision, not a wire
// format: any sender lane-count must reassemble under any receiver
// lane-count, including the plain (unstriped) peers, with and without a
// trace context riding the header. 0 channels encodes "plain API".

using InteropCase = std::tuple<int, int, bool>;

class StripedInterop : public ::testing::TestWithParam<InteropCase> {};

TEST_P(StripedInterop, AnySenderAnyReceiverReassemblesExactly) {
  const auto [send_channels, recv_channels, with_context] = GetParam();
  obs::set_context_armed(with_context);
  auto world = CommWorld::create(2);
  const auto payload = random_payload(96 * 1024, 41);

  obs::TraceContext sent;
  sent.trace_id = obs::TraceContext::trace_id_for("net", 17);
  sent.origin_rank = 0;

  std::thread sender([&, send_channels = send_channels] {
    std::optional<obs::ScopedTraceContext> scoped;
    if (with_context) scoped.emplace(sent);
    if (send_channels == 0) {
      ASSERT_TRUE(stream_send(world->comm(0), 1, kTag, payload,
                              {.chunk_bytes = 8 * 1024})
                      .is_ok());
    } else {
      StripedStreamOptions options;
      options.stream.chunk_bytes = 8 * 1024;
      options.num_channels = send_channels;
      ASSERT_TRUE(
          striped_stream_send(world->comm(0), 1, kTag, payload, options).is_ok());
    }
  });

  obs::TraceContext received_context;
  Result<std::vector<std::byte>> received = Status::ok();
  if (recv_channels == 0) {
    StreamOptions options;
    options.context_out = &received_context;
    received = stream_recv(world->comm(1), 0, kTag, options);
  } else {
    StripedStreamOptions options;
    options.num_channels = recv_channels;
    options.stream.context_out = &received_context;
    received = striped_stream_recv(world->comm(1), 0, kTag, options);
  }
  sender.join();
  obs::set_context_armed(false);

  ASSERT_TRUE(received.is_ok()) << received.status().to_string();
  EXPECT_EQ(received.value(), payload);
  EXPECT_EQ(received_context.valid(), with_context);
  if (with_context) {
    EXPECT_EQ(received_context.trace_id, sent.trace_id);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SenderByReceiver, StripedInterop,
    ::testing::Combine(::testing::Values(0, 1, 2, 4, 8),
                       ::testing::Values(0, 1, 2, 4, 8),
                       ::testing::Bool()),
    [](const auto& interop) {
      auto side = [](int channels) {
        return channels == 0 ? std::string("plain")
                             : "striped" + std::to_string(channels);
      };
      return side(std::get<0>(interop.param)) + "_to_" +
             side(std::get<1>(interop.param)) +
             (std::get<2>(interop.param) ? "_ctx" : "_noctx");
    });

TEST(ReliableStripedStream, PerLaneRetryAbsorbsFailedSends) {
  // Fail two sends outright: the lane-level retry must re-issue just
  // those chunks without tearing down the stream or re-striping.
  auto world = CommWorld::create(2);
  const auto payload = random_payload(64 * 1024, 43);
  fault::ScopedPlan chaos{
      fault::FaultPlan(7)
          .add(fault::FaultRule::fail_nth("net.send", 3))
          .add(fault::FaultRule::fail_nth("net.send", 6))};

  ReliableStripedStreamOptions options;
  options.striped.stream.chunk_bytes = 4 * 1024;
  options.striped.stream.timeout_seconds = 1.0;
  options.striped.num_channels = 4;
  options.ack_timeout_seconds = 1.0;

  int attempts = 0;
  Status sent;
  std::thread sender([&] {
    sent = reliable_striped_stream_send(world->comm(0), 1, kTag, payload,
                                        options, &attempts);
  });
  auto received =
      reliable_striped_stream_recv(world->comm(1), 0, kTag, options);
  sender.join();
  ASSERT_TRUE(sent.is_ok()) << sent.to_string();
  ASSERT_TRUE(received.is_ok()) << received.status().to_string();
  EXPECT_EQ(received.value(), payload);
  // Lane retries absorbed both failures: no whole-stream resend needed.
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(fault::FaultInjector::global().report().failures, 2u);
}

TEST(ReliableStripedStream, SilentChunkDropTriggersWholeStreamResend) {
  // A dropped message is invisible to the sender (send "succeeds"), so
  // lane retry can't help; the receiver times out, nacks, and the second
  // attempt — same stream id — redelivers. Duplicate chunks from the
  // first attempt are absorbed by index-based reassembly.
  auto world = CommWorld::create(2);
  const auto payload = random_payload(32 * 1024, 47);
  fault::ScopedPlan chaos{
      fault::FaultPlan(9).add(fault::FaultRule::drop_nth("net.send", 4))};

  ReliableStripedStreamOptions options;
  options.striped.stream.chunk_bytes = 4 * 1024;
  options.striped.stream.timeout_seconds = 0.2;
  options.striped.num_channels = 2;
  options.ack_timeout_seconds = 0.4;
  options.retry = RetryPolicy{.max_attempts = 4,
                              .initial_backoff_seconds = 0.001,
                              .max_backoff_seconds = 0.002,
                              .backoff_multiplier = 2.0,
                              .jitter = 0.0};

  int attempts = 0;
  Status sent;
  std::thread sender([&] {
    sent = reliable_striped_stream_send(world->comm(0), 1, kTag, payload,
                                        options, &attempts);
  });
  auto received =
      reliable_striped_stream_recv(world->comm(1), 0, kTag, options);
  sender.join();
  ASSERT_TRUE(sent.is_ok()) << sent.to_string();
  ASSERT_TRUE(received.is_ok()) << received.status().to_string();
  EXPECT_EQ(received.value(), payload);
  EXPECT_GE(attempts, 2);
  EXPECT_EQ(fault::FaultInjector::global().report().drops, 1u);
}

TEST(ReliableStream, SurvivesSingleChunkDrop) {
  auto world = CommWorld::create(2);
  const auto payload = random_payload(8 * 1024, 19);
  // Drop the 3rd send (a mid-stream chunk); retry must redeliver.
  fault::ScopedPlan chaos{
      fault::FaultPlan(5).add(fault::FaultRule::drop_nth("net.send", 3))};

  ReliableStreamOptions options;
  options.stream.chunk_bytes = 1024;
  options.stream.timeout_seconds = 0.2;
  options.ack_timeout_seconds = 0.3;
  options.retry = RetryPolicy{.max_attempts = 4,
                              .initial_backoff_seconds = 0.001,
                              .max_backoff_seconds = 0.002,
                              .backoff_multiplier = 2.0,
                              .jitter = 0.0};

  int send_attempts = 0;
  Status sent;
  std::thread sender([&] {
    sent = reliable_stream_send(world->comm(0), 1, kTag, payload, options,
                                &send_attempts);
  });
  auto received = reliable_stream_recv(world->comm(1), 0, kTag, options);
  sender.join();
  ASSERT_TRUE(sent.is_ok()) << sent.to_string();
  ASSERT_TRUE(received.is_ok()) << received.status().to_string();
  EXPECT_EQ(received.value(), payload);
  EXPECT_GE(send_attempts, 2);
  EXPECT_EQ(fault::FaultInjector::global().report().drops, 1u);
}

}  // namespace
}  // namespace viper::net
