// Tests for chunked payload streaming and the live pipelined-chain relay.
#include <gtest/gtest.h>

#include <thread>

#include "viper/common/rng.hpp"
#include "viper/net/stream.hpp"

namespace viper::net {
namespace {

std::vector<std::byte> random_payload(std::size_t n, std::uint64_t seed = 2) {
  Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.uniform_int(0, 255));
  return out;
}

constexpr int kTag = 55;

TEST(Stream, RoundTripsAcrossThreads) {
  auto world = CommWorld::create(2);
  const auto payload = random_payload(1'000'000);
  std::thread sender([&] {
    ASSERT_TRUE(stream_send(world->comm(0), 1, kTag, payload,
                            {.chunk_bytes = 64 * 1024})
                    .is_ok());
  });
  auto received = stream_recv(world->comm(1), 0, kTag);
  sender.join();
  ASSERT_TRUE(received.is_ok()) << received.status().to_string();
  EXPECT_EQ(received.value(), payload);
}

class StreamSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StreamSizes, ExactReassembly) {
  auto world = CommWorld::create(2);
  const auto payload = random_payload(GetParam());
  std::thread sender([&] {
    ASSERT_TRUE(
        stream_send(world->comm(0), 1, kTag, payload, {.chunk_bytes = 1024})
            .is_ok());
  });
  auto received = stream_recv(world->comm(1), 0, kTag);
  sender.join();
  ASSERT_TRUE(received.is_ok());
  EXPECT_EQ(received.value(), payload);
}

// Sizes around chunk boundaries, including empty and sub-chunk payloads.
INSTANTIATE_TEST_SUITE_P(BoundaryCases, StreamSizes,
                         ::testing::Values(0, 1, 1023, 1024, 1025, 2048, 10'000));

TEST(Stream, RelayChainDeliversToEveryHop) {
  // rank 0 → relay 1 → relay 2 → sink 3: the live pipelined chain.
  auto world = CommWorld::create(4);
  const auto payload = random_payload(300'000, 7);

  std::thread sender([&] {
    ASSERT_TRUE(stream_send(world->comm(0), 1, kTag, payload,
                            {.chunk_bytes = 16 * 1024})
                    .is_ok());
  });
  std::thread relay1([&] {
    auto got = stream_relay(world->comm(1), 0, 2, kTag);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value(), payload);  // relays serve the update too
  });
  std::thread relay2([&] {
    auto got = stream_relay(world->comm(2), 1, 3, kTag);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value(), payload);
  });
  auto sink = stream_recv(world->comm(3), 2, kTag);
  sender.join();
  relay1.join();
  relay2.join();
  ASSERT_TRUE(sink.is_ok()) << sink.status().to_string();
  EXPECT_EQ(sink.value(), payload);
}

TEST(Stream, CoexistsWithOtherTrafficOnOtherTags) {
  auto world = CommWorld::create(2);
  const auto payload = random_payload(100'000, 9);
  std::thread sender([&] {
    // Interleave unrelated messages mid-stream.
    ASSERT_TRUE(world->comm(0).send(1, 99, random_payload(64)).is_ok());
    ASSERT_TRUE(stream_send(world->comm(0), 1, kTag, payload).is_ok());
    ASSERT_TRUE(world->comm(0).send(1, 99, random_payload(64)).is_ok());
  });
  auto received = stream_recv(world->comm(1), 0, kTag);
  sender.join();
  ASSERT_TRUE(received.is_ok());
  EXPECT_EQ(received.value(), payload);
  // The unrelated messages are still retrievable afterwards.
  EXPECT_TRUE(world->comm(1).recv(0, 99, 1.0).is_ok());
  EXPECT_TRUE(world->comm(1).recv(0, 99, 1.0).is_ok());
}

TEST(Stream, MissingChunksTimeOut) {
  auto world = CommWorld::create(2);
  // Send only the header claiming one chunk, never the chunk.
  std::thread sender([&] {
    const auto payload = random_payload(10);
    StreamOptions options;
    options.chunk_bytes = 1024;
    // Hand-roll just the header by sending a real stream to nowhere...
    // simpler: send header via a 1-chunk stream to rank 1 but drop the
    // chunk by sending it on a different tag.
    ASSERT_TRUE(stream_send(world->comm(0), 1, kTag + 1, payload, options).is_ok());
  });
  sender.join();
  // Receive the header from the kTag+1 stream, then starve: use a fresh
  // tag with nothing on it.
  auto result = stream_recv(world->comm(1), 0, kTag + 2, {.timeout_seconds = 0.05});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

TEST(Stream, GarbageHeaderIsDataLoss) {
  auto world = CommWorld::create(2);
  ASSERT_TRUE(world->comm(0).send(1, kTag, random_payload(7)).is_ok());
  auto result = stream_recv(world->comm(1), 0, kTag, {.timeout_seconds = 0.5});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(Stream, RejectsZeroChunkSize) {
  auto world = CommWorld::create(2);
  EXPECT_FALSE(stream_send(world->comm(0), 1, kTag, random_payload(8),
                           {.chunk_bytes = 0})
                   .is_ok());
}

}  // namespace
}  // namespace viper::net
