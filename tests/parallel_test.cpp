// Tests for the parallel module: shard planning/extraction/assembly,
// broadcast topology cost models, and the live sharded producer/loader.
#include <gtest/gtest.h>

#include <thread>

#include "viper/core/consumer.hpp"
#include "viper/parallel/broadcast.hpp"
#include "viper/parallel/multi_node.hpp"
#include "viper/parallel/sharding.hpp"
#include "viper/tensor/architectures.hpp"

namespace viper::parallel {
namespace {

Model tc1_model(std::uint64_t version = 1) {
  Model m = build_app_model(AppModel::kTc1, {}).value();
  m.set_version(version);
  m.set_iteration(static_cast<std::int64_t>(version) * 10);
  return m;
}

// ---- Shard planning ------------------------------------------------------

class ShardCounts : public ::testing::TestWithParam<int> {};

TEST_P(ShardCounts, PlanCoversEveryTensorExactlyOnce) {
  const Model model = tc1_model();
  auto plan = plan_shards(model, GetParam());
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan.value().assignments.size(), model.num_tensors());
  for (const auto& a : plan.value().assignments) {
    EXPECT_GE(a.shard, 0);
    EXPECT_LT(a.shard, GetParam());
    EXPECT_TRUE(model.has_tensor(a.tensor_name));
  }
}

TEST_P(ShardCounts, ExtractAndAssembleRoundTrips) {
  const Model model = tc1_model(5);
  auto plan = plan_shards(model, GetParam()).value();
  std::vector<Model> shards;
  std::uint64_t total_payload = 0;
  for (int s = 0; s < GetParam(); ++s) {
    auto shard = extract_shard(model, plan, s);
    ASSERT_TRUE(shard.is_ok());
    total_payload += shard.value().payload_bytes();
    shards.push_back(std::move(shard).value());
  }
  EXPECT_EQ(total_payload, model.payload_bytes());
  auto assembled = assemble_shards(shards, model.name());
  ASSERT_TRUE(assembled.is_ok()) << assembled.status().to_string();
  EXPECT_TRUE(assembled.value().same_weights(model));
  EXPECT_EQ(assembled.value().version(), 5u);
}

INSTANTIATE_TEST_SUITE_P(OneToEight, ShardCounts, ::testing::Values(1, 2, 3, 4, 8));

TEST(Sharding, BalancesBytesReasonably) {
  const Model model = build_app_model(AppModel::kPtychoNN, {}).value();
  auto plan = plan_shards(model, 4).value();
  // Greedy LPT on tensor-sized items: every shard gets something and the
  // heaviest shard stays within 2x of the mean (whole-tensor granularity
  // bounds how even it can be).
  for (std::uint64_t bytes : plan.shard_bytes()) EXPECT_GT(bytes, 0u);
  EXPECT_LT(plan.imbalance(), 2.0);
}

TEST(Sharding, NominalBytesSplitProportionally) {
  const Model model = tc1_model();
  auto plan = plan_shards(model, 4).value();
  std::uint64_t nominal_total = 0;
  for (int s = 0; s < 4; ++s) {
    nominal_total += extract_shard(model, plan, s).value().nominal_bytes();
  }
  const auto full = model.nominal_bytes();
  EXPECT_NEAR(static_cast<double>(nominal_total), static_cast<double>(full),
              static_cast<double>(full) * 0.001);
}

TEST(Sharding, RejectsBadInputs) {
  const Model model = tc1_model();
  EXPECT_FALSE(plan_shards(model, 0).is_ok());
  EXPECT_FALSE(plan_shards(Model("empty"), 2).is_ok());
  auto plan = plan_shards(model, 2).value();
  EXPECT_FALSE(extract_shard(model, plan, 2).is_ok());
  EXPECT_FALSE(extract_shard(model, plan, -1).is_ok());
  EXPECT_FALSE(assemble_shards({}, "x").is_ok());
}

TEST(Sharding, AssembleDetectsVersionSkew) {
  const Model model = tc1_model(3);
  auto plan = plan_shards(model, 2).value();
  auto a = extract_shard(model, plan, 0).value();
  auto b = extract_shard(model, plan, 1).value();
  b.set_version(4);  // a producer raced ahead on one shard
  EXPECT_EQ(assemble_shards({a, b}, model.name()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Sharding, AssembleDetectsDuplicateTensors) {
  const Model model = tc1_model();
  auto plan = plan_shards(model, 2).value();
  auto a = extract_shard(model, plan, 0).value();
  EXPECT_EQ(assemble_shards({a, a}, model.name()).status().code(),
            StatusCode::kFailedPrecondition);
}

// ---- Row-chunked (tensor-parallel) sharding -------------------------------

TEST(ChunkedSharding, SplitsOversizedTensorsAcrossShards) {
  // TC1's giant dense kernel dominates the model; with chunking no shard
  // should carry much more than its fair share.
  const Model model = tc1_model();
  const std::uint64_t cap = model.payload_bytes() / 8;
  auto whole = plan_shards(model, 4).value();
  auto chunked = plan_shards(model, 4, {.max_item_bytes = cap}).value();
  EXPECT_LT(chunked.imbalance(), whole.imbalance());
  EXPECT_LT(chunked.imbalance(), 1.3);
  EXPECT_GT(chunked.assignments.size(), whole.assignments.size());
}

TEST(ChunkedSharding, ExtractAssembleRoundTripsBitExact) {
  const Model model = tc1_model(9);
  auto plan =
      plan_shards(model, 4, {.max_item_bytes = model.payload_bytes() / 16}).value();
  std::vector<Model> shards;
  for (int s = 0; s < 4; ++s) {
    shards.push_back(extract_shard(model, plan, s).value());
  }
  auto assembled = assemble_shards(shards, model.name());
  ASSERT_TRUE(assembled.is_ok()) << assembled.status().to_string();
  EXPECT_TRUE(assembled.value().same_weights(model));
}

TEST(ChunkedSharding, MissingChunkIsDetected) {
  const Model model = tc1_model();
  auto plan =
      plan_shards(model, 3, {.max_item_bytes = model.payload_bytes() / 8}).value();
  std::vector<Model> shards;
  for (int s = 0; s < 2; ++s) {  // drop the third shard
    shards.push_back(extract_shard(model, plan, s).value());
  }
  auto assembled = assemble_shards(shards, model.name());
  EXPECT_FALSE(assembled.is_ok());
}

TEST(ChunkedSharding, RowCoverageIsExactPartition) {
  const Model model = tc1_model();
  auto plan =
      plan_shards(model, 5, {.max_item_bytes = model.payload_bytes() / 10}).value();
  // Per tensor: row ranges must tile [0, rows) without gaps or overlap.
  std::map<std::string, std::vector<std::pair<std::int64_t, std::int64_t>>> ranges;
  for (const auto& a : plan.assignments) {
    ranges[a.tensor_name].push_back({a.row_begin, a.row_end});
  }
  for (auto& [name, spans] : ranges) {
    std::sort(spans.begin(), spans.end());
    const auto& tensor = *model.tensor(name).value();
    const std::int64_t rows =
        tensor.shape().rank() == 0 ? 1 : tensor.shape().dim(0);
    std::int64_t cursor = 0;
    for (const auto& [begin, end] : spans) {
      EXPECT_EQ(begin, cursor) << "gap/overlap in tensor " << name;
      cursor = end;
    }
    EXPECT_EQ(cursor, rows) << "incomplete coverage of tensor " << name;
  }
}

TEST(ChunkedSharding, LiveShardedRoundTripWithChunks) {
  // ShardedProducer/Loader must transport row chunks transparently.
  auto services = std::make_shared<core::SharedServices>();
  auto world = net::CommWorld::create(2);
  core::ModelWeightsHandler::Options options;
  options.strategy = core::Strategy::kViperPfs;
  const Model model = tc1_model(2);
  ShardedProducer producer(services, options, 4,
                           {.max_item_bytes = model.payload_bytes() / 8});
  ASSERT_TRUE(producer.save_sharded("tc1", model).is_ok());

  ShardedLoader loader(services, world->comm(1), {});
  auto loaded = loader.load_sharded("tc1");
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_TRUE(loaded.value().same_weights(model));
}

// ---- Broadcast cost models ----------------------------------------------

TEST(Broadcast, SingleConsumerAllTopologiesAgreeRoughly) {
  const auto link = net::polaris_gpudirect();
  for (auto topology : {BroadcastTopology::kSequential, BroadcastTopology::kTree}) {
    auto estimate = estimate_broadcast(topology, 4'700'000'000ULL, 1, link);
    ASSERT_TRUE(estimate.is_ok());
    EXPECT_NEAR(estimate.value().last_consumer_seconds,
                link.transfer_seconds(4'700'000'000ULL), 1e-9);
  }
}

TEST(Broadcast, TreeBeatsSequentialAtScale) {
  const auto link = net::polaris_host_rdma();
  const auto seq =
      estimate_broadcast(BroadcastTopology::kSequential, 1'000'000'000, 16, link)
          .value();
  const auto tree =
      estimate_broadcast(BroadcastTopology::kTree, 1'000'000'000, 16, link).value();
  EXPECT_LT(tree.last_consumer_seconds, seq.last_consumer_seconds);
  // log2(17) rounds ≈ 5 transfers vs 16 sequential ones.
  EXPECT_GT(seq.last_consumer_seconds / tree.last_consumer_seconds, 2.5);
}

TEST(Broadcast, ChainCompletionGrowsSlowlyWithConsumers) {
  const auto link = net::polaris_host_rdma();
  const auto few =
      estimate_broadcast(BroadcastTopology::kChain, 4'700'000'000ULL, 2, link)
          .value();
  const auto many =
      estimate_broadcast(BroadcastTopology::kChain, 4'700'000'000ULL, 32, link)
          .value();
  // Pipelining: 30 extra hops cost only 30 chunk times, not 30 transfers.
  EXPECT_LT(many.last_consumer_seconds, few.last_consumer_seconds * 2.0);
}

TEST(Broadcast, RankTopologiesIsSortedAndComplete) {
  const auto result =
      rank_topologies(4'700'000'000ULL, 8, net::polaris_gpudirect());
  ASSERT_TRUE(result.is_ok());
  const auto& ranked = result.value();
  ASSERT_EQ(ranked.size(), 3u);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].last_consumer_seconds, ranked[i].last_consumer_seconds);
  }
}

TEST(Broadcast, RankTopologiesRejectsBadInputs) {
  const auto link = net::polaris_gpudirect();
  EXPECT_FALSE(rank_topologies(100, 0, link).is_ok());
  EXPECT_FALSE(rank_topologies(100, -3, link).is_ok());
  EXPECT_FALSE(rank_topologies(100, 4, link, {.chunk_bytes = 0}).is_ok());
}

TEST(Broadcast, RejectsBadInputs) {
  const auto link = net::polaris_gpudirect();
  EXPECT_FALSE(estimate_broadcast(BroadcastTopology::kTree, 100, 0, link).is_ok());
  EXPECT_FALSE(
      estimate_broadcast(BroadcastTopology::kChain, 100, 2, link, {.chunk_bytes = 0})
          .is_ok());
}

// ---- Live sharded producer/consumer ---------------------------------------

TEST(ShardedLive, SaveShardedThenLoadShardedRoundTrips) {
  auto services = std::make_shared<core::SharedServices>();
  auto world = net::CommWorld::create(2);

  core::ModelWeightsHandler::Options options;
  options.strategy = core::Strategy::kGpuAsync;
  ShardedProducer producer(services, options, /*num_shards=*/3);
  std::thread server(
      [&] { producer.handler().serve_transfers(world->comm(0)); });

  const Model model = tc1_model(7);
  auto manifest = producer.save_sharded("tc1", model, 0.4);
  ASSERT_TRUE(manifest.is_ok()) << manifest.status().to_string();
  EXPECT_EQ(manifest.value().version, 7u);
  EXPECT_EQ(manifest.value().num_shards, 3);

  core::ModelLoader::Options loader_options;
  loader_options.producer_rank = 0;
  ShardedLoader loader(services, world->comm(1), loader_options);
  EXPECT_EQ(loader.peek_manifest("tc1").value().version, 7u);
  auto loaded = loader.load_sharded("tc1");
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_TRUE(loaded.value().same_weights(model));
  EXPECT_EQ(loaded.value().version(), 7u);

  ASSERT_TRUE(
      core::ModelWeightsHandler::stop_transfer_server(world->comm(1), 0).is_ok());
  server.join();
}

TEST(ShardedLive, ManifestNotifiesOnMainChannel) {
  auto services = std::make_shared<core::SharedServices>();
  auto sub = services->bus->subscribe(core::notification_channel("tc1"));

  core::ModelWeightsHandler::Options options;
  options.strategy = core::Strategy::kViperPfs;  // no transfer server needed
  ShardedProducer producer(services, options, 2);
  ASSERT_TRUE(producer.save_sharded("tc1", tc1_model(1)).is_ok());

  auto event = sub.next(1.0);
  ASSERT_TRUE(event.is_ok());
  auto update = core::NotificationModule::parse(event.value());
  ASSERT_TRUE(update.is_ok());
  EXPECT_EQ(update.value().model_name, "tc1");
  EXPECT_EQ(update.value().version, 1u);
}

TEST(ShardedLive, MissingManifestIsNotFound) {
  auto services = std::make_shared<core::SharedServices>();
  auto world = net::CommWorld::create(1);
  ShardedLoader loader(services, world->comm(0), {});
  EXPECT_EQ(loader.load_sharded("ghost").status().code(), StatusCode::kNotFound);
}

TEST(ShardedLive, MultipleConsumersConvergeOnFanOut) {
  // One producer, three push-notified consumers — the 1:N side of §6.
  auto services = std::make_shared<core::SharedServices>();
  auto world = net::CommWorld::create(4);

  core::ModelWeightsHandler::Options options;
  options.strategy = core::Strategy::kHostAsync;
  auto handler = std::make_shared<core::ModelWeightsHandler>(services, options);
  std::thread server([&] { handler->serve_transfers(world->comm(0)); });

  std::vector<std::unique_ptr<core::InferenceConsumer>> consumers;
  for (int rank = 1; rank <= 3; ++rank) {
    core::InferenceConsumer::Options consumer_options;
    consumer_options.loader.producer_rank = 0;
    consumers.push_back(std::make_unique<core::InferenceConsumer>(
        services, world->comm(rank), "tc1", consumer_options));
    consumers.back()->start();
  }

  Model model = tc1_model();
  for (std::uint64_t v = 1; v <= 3; ++v) {
    model.set_version(v);
    ASSERT_TRUE(handler->save_weights("tc1", model).is_ok());
    handler->drain();
  }
  for (auto& consumer : consumers) {
    for (int spin = 0; spin < 500 && consumer->active_version() < 3; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(consumer->active_version(), 3u);
    ASSERT_NE(consumer->active_model(), nullptr);
    EXPECT_TRUE(consumer->active_model()->same_weights(model));
    consumer->stop();
  }

  ASSERT_TRUE(
      core::ModelWeightsHandler::stop_transfer_server(world->comm(1), 0).is_ok());
  server.join();
}

}  // namespace
}  // namespace viper::parallel
