// Fault-tolerance tests: the background PFS flush plus recovery must
// survive producer crashes and corrupted flushes.
#include <gtest/gtest.h>

#include "viper/core/recovery.hpp"
#include "viper/durability/journal.hpp"
#include "viper/fault/fault.hpp"
#include "viper/obs/ledger.hpp"
#include "viper/obs/metrics.hpp"

namespace viper::core {
namespace {

Model versioned_model(std::uint64_t version) {
  Rng rng(version);
  Model m("net");
  m.set_version(version);
  m.set_iteration(static_cast<std::int64_t>(version) * 100);
  EXPECT_TRUE(
      m.add_tensor("w", Tensor::random(DType::kF32, Shape{128}, rng).value()).is_ok());
  return m;
}

struct Rig {
  std::shared_ptr<SharedServices> services = std::make_shared<SharedServices>();

  std::shared_ptr<ModelWeightsHandler> handler() {
    ModelWeightsHandler::Options options;
    options.strategy = Strategy::kGpuAsync;  // memory path + background flush
    return std::make_shared<ModelWeightsHandler>(services, options);
  }

  void corrupt(const std::string& key) {
    std::vector<std::byte> blob;
    ASSERT_TRUE(services->pfs->get(key, blob).is_ok());
    blob[blob.size() / 3] ^= std::byte{0xFF};
    ASSERT_TRUE(services->pfs->put(key, std::move(blob)).is_ok());
  }
};

TEST(Recovery, ListsFlushedVersionsAscending) {
  Rig rig;
  auto handler = rig.handler();
  for (std::uint64_t v : {3, 1, 2}) {
    ASSERT_TRUE(handler->save_weights("net", versioned_model(v)).is_ok());
  }
  handler->drain();
  const auto versions = flushed_versions(*rig.services, "net");
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[0], 1u);
  EXPECT_EQ(versions[2], 3u);
}

TEST(Recovery, IgnoresOtherModelsKeys) {
  Rig rig;
  auto handler = rig.handler();
  ASSERT_TRUE(handler->save_weights("net", versioned_model(1)).is_ok());
  ASSERT_TRUE(handler->save_weights("other", versioned_model(9)).is_ok());
  handler->drain();
  EXPECT_EQ(flushed_versions(*rig.services, "net").size(), 1u);
  EXPECT_TRUE(flushed_versions(*rig.services, "ne").empty());  // prefix != model
}

TEST(Recovery, RecoversNewestIntactVersion) {
  Rig rig;
  auto handler = rig.handler();
  Model v3 = versioned_model(3);
  for (std::uint64_t v = 1; v <= 3; ++v) {
    ASSERT_TRUE(handler->save_weights("net", versioned_model(v)).is_ok());
  }
  handler->drain();

  auto recovered = recover_latest(*rig.services, "net");
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_EQ(recovered.value().version, 3u);
  EXPECT_TRUE(recovered.value().model.same_weights(v3));
  EXPECT_TRUE(recovered.value().skipped_corrupt.empty());
}

TEST(Recovery, SkipsCorruptedNewestVersion) {
  Rig rig;
  auto handler = rig.handler();
  Model v2 = versioned_model(2);
  for (std::uint64_t v = 1; v <= 3; ++v) {
    ASSERT_TRUE(handler->save_weights("net", versioned_model(v)).is_ok());
  }
  handler->drain();
  rig.corrupt("ckpt/net/v3");  // torn flush

  auto recovered = recover_latest(*rig.services, "net");
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_EQ(recovered.value().version, 2u);
  EXPECT_TRUE(recovered.value().model.same_weights(v2));
  ASSERT_EQ(recovered.value().skipped_corrupt.size(), 1u);
  EXPECT_EQ(recovered.value().skipped_corrupt[0], 3u);
}

TEST(Recovery, TruncatedNewestVersionIsQuarantinedNotDeleted) {
  Rig rig;
  auto handler = rig.handler();
  Model v2 = versioned_model(2);
  for (std::uint64_t v = 1; v <= 3; ++v) {
    ASSERT_TRUE(handler->save_weights("net", versioned_model(v)).is_ok());
  }
  handler->drain();
  // Torn flush: only half of v3 survived on the PFS.
  {
    std::vector<std::byte> blob;
    ASSERT_TRUE(rig.services->pfs->get("ckpt/net/v3", blob).is_ok());
    blob.resize(blob.size() / 2);
    ASSERT_TRUE(rig.services->pfs->put("ckpt/net/v3", std::move(blob)).is_ok());
  }

  auto recovered = recover_latest(*rig.services, "net");
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_EQ(recovered.value().version, 2u);
  EXPECT_TRUE(recovered.value().model.same_weights(v2));
  ASSERT_EQ(recovered.value().skipped_corrupt.size(), 1u);
  EXPECT_EQ(recovered.value().skipped_corrupt[0], 3u);

  // Quarantine accounting: the torn bytes were moved, never deleted, and
  // the manifest no longer claims v3 exists.
  EXPECT_TRUE(rig.services->pfs->contains("quarantine/net/v3"));
  EXPECT_FALSE(rig.services->pfs->contains("ckpt/net/v3"));
  durability::ManifestJournal journal(rig.services->pfs, "net");
  ASSERT_TRUE(journal.load().is_ok());
  EXPECT_FALSE(journal.state().is_committed(3));
  EXPECT_EQ(journal.state().last_committed, 3u);  // the id is never reused
}

TEST(Recovery, SilentFlushCorruptionIsCaughtByTheScrubber) {
  Rig rig;
  auto handler = rig.handler();
  Model v1 = versioned_model(1);
  ASSERT_TRUE(handler->save_weights("net", v1).is_ok());
  handler->drain();

  {
    // Silent media corruption on the NEXT PFS write of a checkpoint blob.
    // Each journaled flush puts three objects — journal INTENT, blob,
    // journal COMMIT — so skip one matching probe and corrupt the 2nd.
    fault::FaultRule rule = fault::FaultRule::corrupt("memsys.lustre-pfs.put");
    rule.after_hits = 1;
    rule.max_injections = 1;
    fault::ScopedPlan chaos{fault::FaultPlan(0xBAD).add(std::move(rule))};
    ASSERT_TRUE(handler->save_weights("net", versioned_model(2)).is_ok());
    handler->drain();
    EXPECT_EQ(fault::FaultInjector::global().report().corruptions, 1u);
  }

  // The write "succeeded", so v2 is committed — only recovery's integrity
  // scrub can tell the bytes rotted. It must fall back to v1.
  auto recovered = recover_latest(*rig.services, "net");
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_EQ(recovered.value().version, 1u);
  EXPECT_TRUE(recovered.value().model.same_weights(v1));
  ASSERT_EQ(recovered.value().skipped_corrupt.size(), 1u);
  EXPECT_EQ(recovered.value().skipped_corrupt[0], 2u);
  EXPECT_TRUE(rig.services->pfs->contains("quarantine/net/v2"));
}

TEST(Recovery, AllCorruptIsDataLoss) {
  Rig rig;
  auto handler = rig.handler();
  ASSERT_TRUE(handler->save_weights("net", versioned_model(1)).is_ok());
  handler->drain();
  rig.corrupt("ckpt/net/v1");
  EXPECT_EQ(recover_latest(*rig.services, "net").status().code(),
            StatusCode::kDataLoss);
}

TEST(Recovery, NothingFlushedIsNotFound) {
  Rig rig;
  EXPECT_EQ(recover_latest(*rig.services, "ghost").status().code(),
            StatusCode::kNotFound);
}

TEST(Recovery, RepairRewritesMetadataToPfs) {
  Rig rig;
  auto handler = rig.handler();
  for (std::uint64_t v = 1; v <= 2; ++v) {
    ASSERT_TRUE(handler->save_weights("net", versioned_model(v)).is_ok());
  }
  handler->drain();
  // Simulate a producer crash: its memory tiers are gone, metadata stale.
  handler.reset();

  auto recovered = recover_and_repair(*rig.services, "net");
  ASSERT_TRUE(recovered.is_ok());
  auto metadata = get_metadata(rig.services->metadata_db, "net");
  ASSERT_TRUE(metadata.is_ok());
  EXPECT_EQ(metadata.value().location, Location::kPfs);
  EXPECT_EQ(metadata.value().version, 2u);
  EXPECT_EQ(metadata.value().path, "ckpt/net/v2");

  // A consumer loader with no producer can now serve the model.
  auto world = net::CommWorld::create(1);
  ModelLoader loader(rig.services, world->comm(0), {});
  auto loaded = loader.load_weights("net");
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().version(), 2u);
}

TEST(Recovery, SurvivesProducerDeathMidStream) {
  // End-to-end crash story: producer saves v1..v4, dies (tiers freed);
  // consumer recovers and keeps serving the newest flushed version.
  Rig rig;
  Model last = versioned_model(4);
  {
    auto handler = rig.handler();
    for (std::uint64_t v = 1; v <= 4; ++v) {
      ASSERT_TRUE(handler->save_weights("net", versioned_model(v)).is_ok());
    }
    handler->drain();
  }  // producer process gone

  auto recovered = recover_and_repair(*rig.services, "net");
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_EQ(recovered.value().version, 4u);
  EXPECT_TRUE(recovered.value().model.same_weights(last));
}

TEST(Recovery, ReplayClosesInterruptedTimelinesAndTimesItself) {
  // Versions that died mid-flight (no consumer swap before the restart)
  // must stop looking in-progress: recovery replay closes their ledger
  // timelines as interrupted and records how long the replay took.
  obs::VersionLedger::global().clear();
  obs::VersionLedger::set_armed(true);

  Rig rig;
  {
    auto handler = rig.handler();
    for (std::uint64_t v = 1; v <= 2; ++v) {
      ASSERT_TRUE(handler->save_weights("net", versioned_model(v)).is_ok());
    }
    handler->drain();
  }  // producer gone before any consumer swapped

  const auto before = obs::MetricsRegistry::global().snapshot();
  const auto* recovery_before =
      before.histogram_sample("viper.durability.recovery_seconds");
  const std::uint64_t runs_before =
      recovery_before != nullptr ? recovery_before->count : 0;

  auto recovered = recover_latest(*rig.services, "net");
  ASSERT_TRUE(recovered.is_ok());

  for (std::uint64_t v = 1; v <= 2; ++v) {
    auto timeline = obs::VersionLedger::global().timeline("net", v);
    ASSERT_TRUE(timeline.has_value()) << "v" << v;
    EXPECT_TRUE(timeline->interrupted) << "v" << v;
    EXPECT_EQ(timeline->interrupted_reason, "recovery replay") << "v" << v;
    EXPECT_FALSE(timeline->complete()) << "v" << v;
  }

  const auto after = obs::MetricsRegistry::global().snapshot();
  const auto* recovery_after =
      after.histogram_sample("viper.durability.recovery_seconds");
  ASSERT_NE(recovery_after, nullptr);
  EXPECT_GT(recovery_after->count, runs_before);

  // Self-healing: a late swap stamp (a consumer that was mid-install when
  // the producer restarted) clears the interrupted flag.
  obs::VersionLedger::global().record("net", 2, obs::Stage::kSwapDone);
  auto healed = obs::VersionLedger::global().timeline("net", 2);
  ASSERT_TRUE(healed.has_value());
  EXPECT_FALSE(healed->interrupted);
  EXPECT_TRUE(healed->complete());

  obs::VersionLedger::set_armed(false);
  obs::VersionLedger::global().clear();
}

}  // namespace
}  // namespace viper::core
