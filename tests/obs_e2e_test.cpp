// End-to-end observability: one model version's update traced across
// ranks (producer save -> wire -> consumer fetch/decode/swap) as a single
// causally-linked trace, the version ledger deriving the paper's headline
// end-to-end update latency, and the SLO verdict engine flipping to FAIL
// when injected faults push the latency past its budget.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>

#include "viper/core/consumer.hpp"
#include "viper/fault/fault.hpp"
#include "viper/obs/context.hpp"
#include "viper/obs/ledger.hpp"
#include "viper/obs/metrics.hpp"
#include "viper/obs/slo.hpp"
#include "viper/obs/trace.hpp"
#include "viper/tensor/architectures.hpp"

namespace viper::core {
namespace {

Model tiny_model(std::uint64_t seed) {
  Rng rng(seed);
  Model m("net");
  (void)m.add_tensor("w", Tensor::random(DType::kF32, Shape{256}, rng).value());
  return m;
}

/// Arms tracer + context propagation + ledger for one test, restoring the
/// disarmed default (and rank 0, clean buffers) on exit.
struct ScopedObservability {
  ScopedObservability() {
    obs::Tracer::global().clear();
    obs::Tracer::global().set_enabled(true);
    obs::set_context_armed(true);
    obs::VersionLedger::global().clear();
    obs::VersionLedger::set_armed(true);
  }
  ~ScopedObservability() {
    obs::VersionLedger::set_armed(false);
    obs::VersionLedger::global().clear();
    obs::set_context_armed(false);
    obs::Tracer::global().set_enabled(false);
    obs::Tracer::global().set_rank(0);
    obs::Tracer::global().clear();
  }
};

bool any_event_with_trace(const std::vector<obs::TraceEvent>& events,
                          std::uint64_t trace_id) {
  for (const auto& event : events) {
    if (event.trace_id == trace_id) return true;
  }
  return false;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ObsE2E, MergedTraceLinksOneVersionAcrossRanks) {
  ScopedObservability obs_on;
  auto services = std::make_shared<SharedServices>();
  auto world = net::CommWorld::create(2);

  // Rank 0: the producer saves v1 synchronously; its capture -> commit ->
  // notify spans land in this rank's trace with the version's trace id.
  obs::Tracer::global().set_rank(0);
  ModelWeightsHandler::Options options;
  options.strategy = Strategy::kHostSync;
  auto handler = std::make_shared<ModelWeightsHandler>(services, options);
  ASSERT_TRUE(handler->save_weights("net", tiny_model(1)).is_ok());

  const std::string producer_json = obs::Tracer::global().to_chrome_json();
  const auto producer_events = obs::Tracer::global().events();
  obs::Tracer::global().clear();

  // Rank 1: a consumer fetches the version over the comm wire; its load ->
  // transfer -> deserialize spans must join the same trace.
  obs::Tracer::global().set_rank(1);
  std::thread server([&] { handler->serve_transfers(world->comm(0)); });
  {
    ModelLoader::Options loader_options;
    loader_options.producer_rank = 0;
    ModelLoader loader(services, world->comm(1), loader_options);
    auto loaded = loader.load_weights("net");
    ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  }
  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(world->comm(1), 0).is_ok());
  server.join();
  const std::string consumer_json = obs::Tracer::global().to_chrome_json();
  const auto consumer_events = obs::Tracer::global().events();

  // Both ranks recorded spans carrying the version's trace id.
  const std::uint64_t trace_id = obs::TraceContext::trace_id_for("net", 1);
  EXPECT_TRUE(any_event_with_trace(producer_events, trace_id));
  EXPECT_TRUE(any_event_with_trace(consumer_events, trace_id));

  // The merged Chrome trace keeps one pid lane per rank and the trace id
  // links spans across the lanes.
  const std::string merged =
      obs::merge_chrome_trace_files({producer_json, consumer_json});
  EXPECT_NE(merged.find("\"pid\": 0"), std::string::npos);
  EXPECT_NE(merged.find("\"pid\": 1"), std::string::npos);
  char trace_hex[32];
  std::snprintf(trace_hex, sizeof(trace_hex), "\"trace\": \"%llx\"",
                static_cast<unsigned long long>(trace_id));
  EXPECT_GE(count_occurrences(merged, trace_hex), 2u)
      << "expected the version's trace id in both rank lanes";

  // The ledger saw both ends of the hop too.
  auto timeline = obs::VersionLedger::global().timeline("net", 1);
  ASSERT_TRUE(timeline.has_value());
  EXPECT_EQ(timeline->trace_id, trace_id);
  EXPECT_TRUE(timeline->has(obs::Stage::kCaptureStart));
  EXPECT_TRUE(timeline->has(obs::Stage::kFetchDone));
  EXPECT_TRUE(timeline->has(obs::Stage::kDecodeDone));
}

TEST(ObsE2E, LedgerLatencyIsSwapMinusCaptureExactly) {
  ScopedObservability obs_on;
  auto& ledger = obs::VersionLedger::global();
  // Virtual timestamps make the subtraction exact: capture at 10.0 s,
  // swap at 12.25 s -> end-to-end update latency 2.25 s, no tolerance.
  ledger.record_at("net", 3, obs::Stage::kCaptureStart, 10.0);
  ledger.record_at("net", 3, obs::Stage::kSerializeDone, 10.5);
  ledger.record_at("net", 3, obs::Stage::kCommitDone, 11.0);
  ledger.record_at("net", 3, obs::Stage::kNotified, 11.25);
  ledger.record_at("net", 3, obs::Stage::kSwapDone, 12.25);

  auto timeline = ledger.timeline("net", 3);
  ASSERT_TRUE(timeline.has_value());
  EXPECT_TRUE(timeline->complete());
  EXPECT_DOUBLE_EQ(timeline->update_latency(), 2.25);
  EXPECT_DOUBLE_EQ(timeline->update_latency(),
                   timeline->stamp(obs::Stage::kSwapDone) -
                       timeline->stamp(obs::Stage::kCaptureStart));

  const std::string json = ledger.to_json();
  EXPECT_NE(json.find("\"version\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"update_latency\": 2.25"), std::string::npos);
}

TEST(ObsE2E, LiveRunDerivesEndToEndLatencyForEveryVersion) {
  ScopedObservability obs_on;
  auto services = std::make_shared<SharedServices>();
  auto world = net::CommWorld::create(2);
  ModelWeightsHandler::Options options;
  options.strategy = Strategy::kHostAsync;
  auto handler = std::make_shared<ModelWeightsHandler>(services, options);
  std::thread server([&] { handler->serve_transfers(world->comm(0)); });

  InferenceConsumer::Options consumer_options;
  consumer_options.loader.producer_rank = 0;
  InferenceConsumer consumer(services, world->comm(1), "net", consumer_options);
  consumer.start();

  constexpr std::uint64_t kVersions = 5;
  Model model = tiny_model(2);
  Rng rng(3);
  for (std::uint64_t v = 1; v <= kVersions; ++v) {
    model.set_version(v);
    model.perturb_weights(rng, 1e-3);
    ASSERT_TRUE(handler->save_weights("net", model).is_ok());
    // Pace the producer so the push-notified consumer swaps every version
    // instead of coalescing.
    for (int spin = 0; spin < 2000 && consumer.active_version() < v; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  handler->drain();
  ASSERT_EQ(consumer.active_version(), kVersions);

  // Every version's timeline is complete and its derived latency is the
  // consumer-swap stamp minus the producer-capture stamp (same process,
  // one clock domain, so the cross-rank subtraction is exact).
  for (std::uint64_t v = 1; v <= kVersions; ++v) {
    auto timeline = obs::VersionLedger::global().timeline("net", v);
    ASSERT_TRUE(timeline.has_value()) << "v" << v;
    EXPECT_TRUE(timeline->complete()) << "v" << v;
    const double latency = timeline->update_latency();
    EXPECT_GT(latency, 0.0) << "v" << v;
    EXPECT_NEAR(latency,
                timeline->stamp(obs::Stage::kSwapDone) -
                    timeline->stamp(obs::Stage::kCaptureStart),
                1e-9)
        << "v" << v;
    EXPECT_EQ(timeline->trace_id, obs::TraceContext::trace_id_for("net", v));
  }
  const auto window = obs::VersionLedger::global().windowed_update_latency();
  EXPECT_EQ(window.count, kVersions);
  EXPECT_GT(obs::VersionLedger::global().staleness_seconds(
                "net", obs::VersionLedger::global().now()),
            0.0);

  consumer.stop();
  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(world->comm(1), 0).is_ok());
  server.join();
}

TEST(ObsE2E, SloVerdictFlipsToFailUnderInjectedDelay) {
  ScopedObservability obs_on;
  obs::SloSpec spec;
  spec.model = "net";
  spec.max_p99_update_latency_seconds = 0.5;

  // One producer/consumer episode; returns once the consumer swapped all
  // `versions`.
  const auto run_episode = [](std::uint64_t versions) {
    auto services = std::make_shared<SharedServices>();
    auto world = net::CommWorld::create(2);
    ModelWeightsHandler::Options options;
    options.strategy = Strategy::kHostAsync;
    auto handler = std::make_shared<ModelWeightsHandler>(services, options);
    std::thread server([&] { handler->serve_transfers(world->comm(0)); });
    InferenceConsumer::Options consumer_options;
    consumer_options.loader.producer_rank = 0;
    InferenceConsumer consumer(services, world->comm(1), "net",
                               consumer_options);
    consumer.start();
    Model model = tiny_model(4);
    Rng rng(5);
    for (std::uint64_t v = 1; v <= versions; ++v) {
      model.set_version(v);
      model.perturb_weights(rng, 1e-3);
      ASSERT_TRUE(handler->save_weights("net", model).is_ok());
      for (int spin = 0; spin < 5000 && consumer.active_version() < v;
           ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    handler->drain();
    ASSERT_EQ(consumer.active_version(), versions);
    consumer.stop();
    ASSERT_TRUE(
        ModelWeightsHandler::stop_transfer_server(world->comm(1), 0).is_ok());
    server.join();
  };

  // Clean run: swaps complete in milliseconds, well inside the budget.
  run_episode(3);
  const obs::SloReport clean =
      obs::evaluate_slo(spec, obs::VersionLedger::global(),
                        obs::MetricsRegistry::global().snapshot());
  EXPECT_TRUE(clean.pass) << clean.to_text();

  // Same budget under an injected 350 ms delay on every comm send: the
  // notify -> fetch -> reply path alone now exceeds the 0.5 s p99 budget,
  // so the verdict must flip to FAIL.
  obs::VersionLedger::global().clear();
  {
    fault::FaultPlan plan(0x5eed);
    plan.add(fault::FaultRule::delay("net.send", 0.35));
    fault::ScopedPlan delayed{std::move(plan)};
    run_episode(2);
  }
  const obs::SloReport degraded =
      obs::evaluate_slo(spec, obs::VersionLedger::global(),
                        obs::MetricsRegistry::global().snapshot());
  EXPECT_FALSE(degraded.pass) << degraded.to_text();
  const obs::SloCheck* check = degraded.check("p99_update_latency");
  ASSERT_NE(check, nullptr);
  EXPECT_TRUE(check->enabled);
  EXPECT_FALSE(check->pass);
  EXPECT_GT(check->observed, spec.max_p99_update_latency_seconds);
}

}  // namespace
}  // namespace viper::core
