// Tests for LiveWorkflow: the one-object live producer/consumer rig, and
// the CheckpointCallback it drives.
#include <gtest/gtest.h>

#include "viper/core/workflow.hpp"
#include "viper/sim/app_profile.hpp"

namespace viper::core {
namespace {

CheckpointSchedule every_n(std::int64_t n, std::int64_t upto) {
  CheckpointSchedule schedule;
  schedule.kind = ScheduleKind::kFixedInterval;
  schedule.interval = n;
  for (std::int64_t it = n - 1; it < upto; it += n) schedule.iterations.push_back(it);
  return schedule;
}

TEST(LiveWorkflow, EndToEndConvergence) {
  LiveWorkflow::Options options;
  options.model_name = "tc1";
  options.app = AppModel::kTc1;
  options.strategy = Strategy::kGpuAsync;
  options.schedule = every_n(25, 100);
  auto workflow = LiveWorkflow::create(options);
  ASSERT_TRUE(workflow.is_ok()) << workflow.status().to_string();

  auto report = workflow.value()->run(100);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().checkpoints, 4u);  // iterations 24, 49, 74, 99
  EXPECT_GE(report.value().updates_applied, 1u);
  EXPECT_EQ(report.value().final_version, 4u);
  EXPECT_TRUE(report.value().weights_converged);
  EXPECT_GT(report.value().modeled_stall_seconds, 0.0);
}

TEST(LiveWorkflow, UpdateHookFires) {
  std::atomic<int> hooks{0};
  LiveWorkflow::Options options;
  options.model_name = "nt3";
  options.app = AppModel::kNt3A;
  options.strategy = Strategy::kHostSync;
  options.schedule = every_n(10, 30);
  options.on_update = [&hooks](const ModelMetadata&) { ++hooks; };
  auto workflow = LiveWorkflow::create(options);
  ASSERT_TRUE(workflow.is_ok());
  ASSERT_TRUE(workflow.value()->run(30).is_ok());
  EXPECT_GE(hooks.load(), 1);
}

TEST(LiveWorkflow, RunsInSegments) {
  LiveWorkflow::Options options;
  options.model_name = "tc1";
  options.schedule = every_n(20, 80);
  auto workflow = LiveWorkflow::create(options);
  ASSERT_TRUE(workflow.is_ok());
  auto first = workflow.value()->run(40).value();
  EXPECT_EQ(first.checkpoints, 2u);
  auto second = workflow.value()->run(40).value();
  EXPECT_EQ(second.checkpoints, 4u);  // cumulative
  EXPECT_EQ(second.final_version, 4u);
  EXPECT_TRUE(second.weights_converged);
}

TEST(LiveWorkflow, EmptyScheduleMeansNoUpdates) {
  LiveWorkflow::Options options;
  options.model_name = "tc1";
  auto workflow = LiveWorkflow::create(options);
  ASSERT_TRUE(workflow.is_ok());
  auto report = workflow.value()->run(20).value();
  EXPECT_EQ(report.checkpoints, 0u);
  EXPECT_EQ(report.final_version, 0u);
  EXPECT_FALSE(report.weights_converged);  // consumer never got a model
}

TEST(LiveWorkflow, RejectsEmptyModelName) {
  LiveWorkflow::Options options;
  options.model_name = "";
  EXPECT_FALSE(LiveWorkflow::create(options).is_ok());
}

TEST(CheckpointCallback, RecordsLossesAndReceipts) {
  LiveWorkflow::Options options;
  options.model_name = "tc1";
  options.schedule = every_n(10, 30);
  auto workflow = LiveWorkflow::create(options).value();
  ASSERT_TRUE(workflow->run(30).is_ok());
  // The trainer ran 30 iterations: the callback saw each one.
  EXPECT_EQ(workflow->trainer().iteration(), 30);
  // Stall was charged back into the trainer's clock.
  EXPECT_GT(workflow->trainer().stall_seconds(), 0.0);
  // Stats manager observed the saves.
  EXPECT_EQ(workflow->services().stats->counters().saves, 3u);
}

}  // namespace
}  // namespace viper::core
