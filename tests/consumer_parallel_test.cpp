// Consumer-side parallel data plane: the sharded zero-copy decoder
// (byte-identical to the serial path, per-shard CRC folded before any
// record is parsed), background prefetch with supersede semantics, the
// zero-stall hot-swap guarantee under a deliberately slow fetch, and
// consumer-advertised stripe negotiation end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "viper/common/thread_pool.hpp"
#include "viper/core/consumer.hpp"
#include "viper/core/handler.hpp"
#include "viper/fault/fault.hpp"
#include "viper/obs/metrics.hpp"
#include "viper/serial/buffer_pool.hpp"
#include "viper/serial/format.hpp"
#include "viper/tensor/model.hpp"

namespace viper::core {
namespace {

/// Model wide enough to split into several decode shards (each tensor is
/// 256 KiB of f32, comfortably above the 128 KiB shard floor).
Model wide_model(int tensors = 6, std::int64_t elems = 64 * 1024,
                 std::uint64_t seed = 3) {
  Rng rng(seed);
  Model m("net");
  for (int i = 0; i < tensors; ++i) {
    EXPECT_TRUE(m.add_tensor("t" + std::to_string(i),
                             Tensor::random(DType::kF32, Shape{elems}, rng)
                                 .value())
                    .is_ok());
  }
  return m;
}

// ---- Sharded decode --------------------------------------------------------

TEST(ShardedDecode, ByteIdenticalToSerialDecoder) {
  auto format = serial::make_viper_format();
  Model model = wide_model();
  model.set_version(9);
  model.set_iteration(90);

  auto buffer = format->serialize_pooled(model);
  ASSERT_TRUE(buffer.is_ok()) << buffer.status().to_string();
  const serial::SharedBlob blob = std::move(buffer).value().share();

  const std::uint64_t decodes0 =
      serial::serial_metrics().sharded_decodes.value();
  auto serial_model = format->deserialize_shared(blob);
  auto sharded_model =
      format->deserialize_shared_sharded(blob, ThreadPool::global(), 4);
  ASSERT_TRUE(serial_model.is_ok()) << serial_model.status().to_string();
  ASSERT_TRUE(sharded_model.is_ok()) << sharded_model.status().to_string();

  EXPECT_TRUE(sharded_model.value().same_weights(model));
  EXPECT_TRUE(sharded_model.value().same_weights(serial_model.value()));
  EXPECT_EQ(sharded_model.value().version(), 9u);
  EXPECT_EQ(sharded_model.value().iteration(), 90);
  EXPECT_EQ(serial::serial_metrics().sharded_decodes.value(), decodes0 + 1);
  // Zero-copy: every decoded tensor borrows its payload from the blob.
  for (const auto& [name, tensor] : sharded_model.value().tensors()) {
    EXPECT_FALSE(tensor.owns_payload()) << name;
  }
}

TEST(ShardedDecode, IdenticalAcrossShardCounts) {
  auto format = serial::make_viper_format();
  const Model model = wide_model(5, 48 * 1024, 11);
  auto buffer = format->serialize_pooled(model);
  ASSERT_TRUE(buffer.is_ok());
  const serial::SharedBlob blob = std::move(buffer).value().share();
  for (const int shards : {1, 2, 3, 4, 8, 16}) {
    auto decoded =
        format->deserialize_shared_sharded(blob, ThreadPool::global(), shards);
    ASSERT_TRUE(decoded.is_ok())
        << shards << " shards: " << decoded.status().to_string();
    EXPECT_TRUE(decoded.value().same_weights(model)) << shards << " shards";
  }
}

TEST(ShardedDecode, SmallBlobFallsBackToSerialPath) {
  auto format = serial::make_viper_format();
  Rng rng(5);
  Model model("tiny");
  ASSERT_TRUE(
      model.add_tensor("w", Tensor::random(DType::kF32, Shape{8}, rng).value())
          .is_ok());
  auto buffer = format->serialize_pooled(model);
  ASSERT_TRUE(buffer.is_ok());
  const serial::SharedBlob blob = std::move(buffer).value().share();
  auto decoded =
      format->deserialize_shared_sharded(blob, ThreadPool::global(), 8);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_TRUE(decoded.value().same_weights(model));
}

TEST(ShardedDecode, CorruptPayloadIsDataLossNotWrongBytes) {
  auto format = serial::make_viper_format();
  auto bytes = format->serialize(wide_model(4, 48 * 1024, 7));
  ASSERT_TRUE(bytes.is_ok());
  auto corrupted = bytes.value();
  corrupted[corrupted.size() / 2] ^= std::byte{0x40};  // mid-payload flip
  const serial::SharedBlob blob =
      std::make_shared<const std::vector<std::byte>>(std::move(corrupted));
  auto decoded =
      format->deserialize_shared_sharded(blob, ThreadPool::global(), 4);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(ShardedDecode, FormatsWithoutShardSupportStillDecode) {
  // The h5-like format has no shard plan; the sharded entry point must
  // transparently degrade to its serial decoder.
  auto format = serial::make_h5like_format();
  const Model model = wide_model(3, 32 * 1024, 13);
  auto bytes = format->serialize(model);
  ASSERT_TRUE(bytes.is_ok());
  const serial::SharedBlob blob =
      std::make_shared<const std::vector<std::byte>>(std::move(bytes).value());
  auto decoded =
      format->deserialize_shared_sharded(blob, ThreadPool::global(), 4);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_TRUE(decoded.value().same_weights(model));
}

// ---- Live consumer: prefetch, supersede, zero-stall swap -------------------

struct Rig {
  std::shared_ptr<SharedServices> services = std::make_shared<SharedServices>();
  std::shared_ptr<net::CommWorld> world = net::CommWorld::create(2);
  net::Comm producer_comm = world->comm(0);
  net::Comm consumer_comm = world->comm(1);

  std::shared_ptr<ModelWeightsHandler> handler(Strategy strategy) {
    ModelWeightsHandler::Options options;
    options.strategy = strategy;
    return std::make_shared<ModelWeightsHandler>(services, options);
  }
};

void wait_for(const std::function<bool()>& done, int spins = 500) {
  for (int spin = 0; spin < spins && !done(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(ConsumerPrefetch, AppliesUpdatesOnBackgroundWorker) {
  Rig rig;
  auto handler = rig.handler(Strategy::kHostSync);
  std::thread server([&] { handler->serve_transfers(rig.producer_comm); });

  InferenceConsumer::Options options;
  options.loader.producer_rank = 0;
  ASSERT_TRUE(options.prefetch);  // the new default
  InferenceConsumer consumer(rig.services, rig.consumer_comm, "net", options);
  consumer.start();

  Model model = wide_model(2, 16 * 1024);
  for (std::uint64_t v = 1; v <= 3; ++v) {
    model.set_version(v);
    ASSERT_TRUE(handler->save_weights("net", model).is_ok());
    wait_for([&] { return consumer.active_version() >= v; });
  }
  EXPECT_EQ(consumer.active_version(), 3u);
  EXPECT_GE(consumer.prefetches_started(), 1u);
  ASSERT_NE(consumer.active_model(), nullptr);
  EXPECT_TRUE(consumer.active_model()->same_weights(model));

  consumer.stop();
  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(rig.consumer_comm, 0).is_ok());
  server.join();
}

TEST(ConsumerPrefetch, DuplicateNotificationIsSupersededWithoutRefetch) {
  // Regression for the resync/duplicate-notification path: an apply whose
  // version is already resident must early-out on the metadata peek, not
  // re-fetch and re-decode the full blob.
  Rig rig;
  auto handler = rig.handler(Strategy::kHostSync);
  std::thread server([&] { handler->serve_transfers(rig.producer_comm); });

  InferenceConsumer::Options options;
  options.loader.producer_rank = 0;
  InferenceConsumer consumer(rig.services, rig.consumer_comm, "net", options);
  consumer.start();

  Model model = wide_model(2, 16 * 1024);
  model.set_version(1);
  ASSERT_TRUE(handler->save_weights("net", model).is_ok());
  wait_for([&] { return consumer.active_version() >= 1; });
  ASSERT_EQ(consumer.active_version(), 1u);
  const std::uint64_t applied = consumer.updates_applied();

  // Replay the notification for the version that is already serving.
  NotificationModule notifier(rig.services->bus);
  EXPECT_GE(notifier.publish_update("net", 1), 1u);
  wait_for([&] { return consumer.loads_skipped() >= 1; });

  EXPECT_GE(consumer.loads_skipped(), 1u);
  EXPECT_GE(consumer.prefetches_superseded(), 1u);
  EXPECT_EQ(consumer.updates_applied(), applied);  // no second install

  consumer.stop();
  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(rig.consumer_comm, 0).is_ok());
  server.join();
}

TEST(ConsumerPrefetch, InlineModeKeepsSeedBehavior) {
  Rig rig;
  auto handler = rig.handler(Strategy::kHostSync);
  std::thread server([&] { handler->serve_transfers(rig.producer_comm); });

  InferenceConsumer::Options options;
  options.loader.producer_rank = 0;
  options.prefetch = false;
  InferenceConsumer consumer(rig.services, rig.consumer_comm, "net", options);
  consumer.start();

  Model model = wide_model(2, 8 * 1024);
  model.set_version(1);
  ASSERT_TRUE(handler->save_weights("net", model).is_ok());
  wait_for([&] { return consumer.active_version() >= 1; });
  EXPECT_EQ(consumer.active_version(), 1u);
  EXPECT_EQ(consumer.prefetches_started(), 0u);

  consumer.stop();
  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(rig.consumer_comm, 0).is_ok());
  server.join();
}

TEST(ConsumerPrefetch, ZeroStallSwapWhileFetchCrawls) {
  // Inject a delay on every comm receive so each apply spends hundreds of
  // milliseconds in fetch. The serving path must never feel it: readers
  // only ever wait out the pointer swap, and no reader ever observes a
  // torn model (version and iteration are stamped together).
  Rig rig;
  auto handler = rig.handler(Strategy::kHostSync);
  std::thread server([&] { handler->serve_transfers(rig.producer_comm); });

  InferenceConsumer::Options options;
  options.loader.producer_rank = 0;
  options.loader.request_timeout = 10.0;
  InferenceConsumer consumer(rig.services, rig.consumer_comm, "net", options);
  consumer.start();

  std::atomic<bool> stop_reader{false};
  std::atomic<int> violations{0};
  std::atomic<std::int64_t> max_read_nanos{0};
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_acquire)) {
      const auto t0 = std::chrono::steady_clock::now();
      auto model = consumer.active_model();
      const auto dt = std::chrono::steady_clock::now() - t0;
      const auto nanos =
          std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count();
      std::int64_t seen = max_read_nanos.load(std::memory_order_relaxed);
      while (nanos > seen &&
             !max_read_nanos.compare_exchange_weak(seen, nanos)) {
      }
      if (model != nullptr &&
          model->iteration() != static_cast<std::int64_t>(model->version())) {
        violations.fetch_add(1);
      }
    }
  });

  {
    fault::ScopedPlan chaos{fault::FaultPlan(21).add(
        fault::FaultRule::delay("net.recv", 0.010))};
    Model model = wide_model(6, 64 * 1024);  // ~1.5 MB -> several chunks
    for (std::uint64_t v = 1; v <= 3; ++v) {
      model.set_version(v);
      model.set_iteration(static_cast<std::int64_t>(v));
      ASSERT_TRUE(handler->save_weights("net", model).is_ok());
      wait_for([&] { return consumer.active_version() >= v; }, 3000);
    }
  }
  stop_reader.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(consumer.active_version(), 3u);
  EXPECT_EQ(violations.load(), 0);
  // Fetch+decode took >= tens of milliseconds per version (delayed
  // receives); a reader must never be stalled anywhere near that. 50 ms
  // is orders of magnitude above the pointer swap and still far below a
  // single delayed fetch.
  EXPECT_LT(max_read_nanos.load(), 50'000'000)
      << "a reader stalled behind an in-flight apply";

  consumer.stop();
  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(rig.consumer_comm, 0).is_ok());
  server.join();
}

// ---- Stripe negotiation ----------------------------------------------------

TEST(StripeNegotiation, ConsumerPreferenceTurnsOnStripedReplies) {
  // Producer left at its plain-stream default; the consumer advertises 4
  // channels in the load request and the producer honors it.
  Rig rig;
  auto handler = rig.handler(Strategy::kHostSync);
  ASSERT_EQ(handler->options().reply_channels, 1);
  std::thread server([&] { handler->serve_transfers(rig.producer_comm); });

  Model model = wide_model(6, 64 * 1024);
  model.set_version(1);
  ASSERT_TRUE(handler->save_weights("net", model).is_ok());

  obs::Counter& negotiated =
      obs::MetricsRegistry::global().counter("viper.core.stripe_negotiations");
  const std::uint64_t negotiated0 = negotiated.value();

  ModelLoader::Options options;
  options.producer_rank = 0;
  options.request_timeout = 5.0;
  options.stripe_channels = 4;
  ModelLoader loader(rig.services, rig.consumer_comm, options);
  auto loaded = loader.load_weights("net");
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_TRUE(loaded.value().same_weights(model));
  EXPECT_EQ(negotiated.value(), negotiated0 + 1);

  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(rig.consumer_comm, 0).is_ok());
  server.join();
}

TEST(StripeNegotiation, ProducerClampsGreedyConsumers) {
  Rig rig;
  ModelWeightsHandler::Options handler_options;
  handler_options.strategy = Strategy::kHostSync;
  handler_options.max_reply_channels = 2;  // tight lane budget
  auto handler =
      std::make_shared<ModelWeightsHandler>(rig.services, handler_options);
  std::thread server([&] { handler->serve_transfers(rig.producer_comm); });

  Model model = wide_model(4, 32 * 1024);
  model.set_version(1);
  ASSERT_TRUE(handler->save_weights("net", model).is_ok());

  ModelLoader::Options options;
  options.producer_rank = 0;
  options.request_timeout = 5.0;
  options.stripe_channels = 16;  // asks for far more than the clamp
  ModelLoader loader(rig.services, rig.consumer_comm, options);
  auto loaded = loader.load_weights("net");
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_TRUE(loaded.value().same_weights(model));

  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(rig.consumer_comm, 0).is_ok());
  server.join();
}

TEST(StripeNegotiation, LegacyRequestsStillServed) {
  // A consumer that advertises nothing (stripe_channels == 1) produces
  // the legacy request tail; the producer must fall back to its own
  // configured reply width.
  Rig rig;
  ModelWeightsHandler::Options handler_options;
  handler_options.strategy = Strategy::kHostSync;
  handler_options.reply_channels = 4;
  auto handler =
      std::make_shared<ModelWeightsHandler>(rig.services, handler_options);
  std::thread server([&] { handler->serve_transfers(rig.producer_comm); });

  Model model = wide_model(4, 32 * 1024);
  model.set_version(1);
  ASSERT_TRUE(handler->save_weights("net", model).is_ok());

  ModelLoader::Options options;
  options.producer_rank = 0;
  options.request_timeout = 5.0;
  ASSERT_EQ(options.stripe_channels, 1);  // legacy tail: nothing advertised
  ModelLoader loader(rig.services, rig.consumer_comm, options);
  auto loaded = loader.load_weights("net");
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_TRUE(loaded.value().same_weights(model));

  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(rig.consumer_comm, 0).is_ok());
  server.join();
}

}  // namespace
}  // namespace viper::core
