// Long-label soak: a bigger heterogeneous fleet (three producers with
// different apps and sharing strategies, six consumers on Poisson
// traffic) under background chaos with two mid-flush crashes, two
// partition/heal pairs, and two consumer restarts — run twice to prove
// the replay contract holds under full chaos, not just in the quick
// lockstep configuration.
#include <gtest/gtest.h>

#include "viper/sim/scenario.hpp"
#include "viper/sim/soak.hpp"

namespace viper::sim {
namespace {

ScenarioSpec fleet_spec() {
  ScenarioSpec spec;
  spec.name = "fleet-chaos";
  spec.seed = 20260807;
  spec.chaos = true;
  spec.width_scale = 1.0 / 64.0;
  spec.producers.resize(3);
  spec.producers[0].app = AppModel::kTc1;
  spec.producers[0].strategy = core::Strategy::kHostAsync;
  spec.producers[1].app = AppModel::kNt3A;
  spec.producers[1].strategy = core::Strategy::kViperPfs;
  spec.producers[2].app = AppModel::kNt3B;
  spec.producers[2].strategy = core::Strategy::kGpuAsync;
  for (auto& producer : spec.producers) {
    producer.versions = 8;
    producer.save_gap_ms = 2.0;
  }
  // Round-robin consumers: two per producer.
  spec.consumers.resize(6);
  spec.traffic.think_ms = 0.2;
  spec.traffic.poisson = true;
  spec.convergence_timeout_seconds = 30.0;
  spec.slo.max_p99_update_latency_seconds = 10.0;
  spec.slo.max_rpo_seconds = 60.0;
  spec.slo.max_recovery_seconds = 10.0;

  const auto add = [&spec](SoakEvent event) { spec.events.push_back(event); };
  SoakEvent event;
  event.kind = SoakEventKind::kPartition;
  event.producer = 0;
  event.at_version = 2;
  event.consumer = 0;
  add(event);
  event.at_version = 5;
  event.kind = SoakEventKind::kHeal;
  add(event);
  event.kind = SoakEventKind::kPartition;
  event.producer = 2;
  event.at_version = 4;
  event.consumer = 5;
  add(event);
  event.kind = SoakEventKind::kHeal;
  event.at_version = 6;
  add(event);
  event = SoakEvent{};
  event.kind = SoakEventKind::kCrashProducer;
  event.producer = 1;
  event.at_version = 3;
  event.crash_site = "durability.flush.begin";
  add(event);
  event.at_version = 6;
  event.crash_site = "durability.flush.after-blob";
  add(event);
  event = SoakEvent{};
  event.kind = SoakEventKind::kRestartConsumer;
  event.producer = 0;
  event.at_version = 6;
  event.consumer = 3;
  add(event);
  event.producer = 1;
  event.at_version = 7;
  event.consumer = 4;
  add(event);
  return spec;
}

TEST(SoakChaos, FleetSurvivesChaosAndReplaysItsSchedule) {
  auto first = SoakRunner(fleet_spec()).run();
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  const SoakResult& soak = first.value();
  EXPECT_TRUE(soak.pass()) << soak.to_text();
  EXPECT_TRUE(soak.converged);
  EXPECT_GE(soak.injections.crashes, 2u);
  EXPECT_EQ(soak.injections.heals, 4u);  // two pairs, both directions
  EXPECT_EQ(soak.producer_restarts, 2u);
  EXPECT_EQ(soak.consumer_restarts, 2u);
  ASSERT_EQ(soak.consumers.size(), 6u);
  for (const auto& stats : soak.consumers) {
    EXPECT_TRUE(stats.converged) << soak.to_text();
    EXPECT_EQ(stats.torn_serves, 0u);
    EXPECT_GT(stats.requests, 0u);
  }
  const obs::SloCheck* closed = soak.verdict.fleet_check("timelines_closed");
  ASSERT_NE(closed, nullptr);
  EXPECT_TRUE(closed->pass) << closed->detail;

  // Replay under chaos: the schedule and the executed event log are pure
  // functions of the spec — byte-identical on a second run even though
  // the probabilistic chaos around them perturbs timing.
  auto second = SoakRunner(fleet_spec()).run();
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
  EXPECT_TRUE(second.value().pass()) << second.value().to_text();
  EXPECT_EQ(soak.fault_schedule, second.value().fault_schedule);
  EXPECT_EQ(soak.event_log, second.value().event_log);
}

}  // namespace
}  // namespace viper::sim
