// Robustness sweeps for every wire format: truncation at every region of
// the stream, random bit flips, and adversarial headers must produce a
// clean error — never a crash, hang, or silently wrong model.
#include <gtest/gtest.h>

#include "viper/serial/compress.hpp"
#include "viper/serial/delta.hpp"
#include "viper/serial/format.hpp"

namespace viper::serial {
namespace {

Model sample_model() {
  Rng rng(99);
  Model m("robust");
  m.set_version(3);
  m.set_iteration(77);
  (void)m.add_tensor("a", Tensor::random(DType::kF32, Shape{700}, rng).value());
  (void)m.add_tensor("b", Tensor::random(DType::kI32, Shape{33}, rng).value());
  (void)m.add_tensor("c", Tensor::zeros(DType::kU8, Shape{5, 5}).value());
  return m;
}

class FormatTruncation : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<CheckpointFormat> make_format() const {
    return std::string(GetParam()) == "viper" ? make_viper_format()
                                              : make_h5like_format();
  }
};

TEST_P(FormatTruncation, EveryPrefixFailsCleanly) {
  auto format = make_format();
  const auto blob = format->serialize(sample_model()).value();
  // Sweep prefixes across the whole stream (step keeps runtime sane).
  const std::size_t step = std::max<std::size_t>(1, blob.size() / 257);
  for (std::size_t len = 0; len < blob.size(); len += step) {
    auto result = format->deserialize(std::span(blob).first(len));
    EXPECT_FALSE(result.is_ok()) << "prefix of " << len << " bytes parsed";
  }
}

TEST_P(FormatTruncation, EveryBitFlipIsDetected) {
  auto format = make_format();
  auto blob = format->serialize(sample_model()).value();
  const std::size_t step = std::max<std::size_t>(1, blob.size() / 131);
  for (std::size_t pos = 0; pos < blob.size(); pos += step) {
    auto corrupted = blob;
    corrupted[pos] ^= std::byte{0x10};
    auto result = format->deserialize(corrupted);
    EXPECT_FALSE(result.is_ok()) << "bit flip at " << pos << " parsed";
  }
}

TEST_P(FormatTruncation, TrailingGarbageIsRejected) {
  auto format = make_format();
  auto blob = format->serialize(sample_model()).value();
  blob.insert(blob.end(), 16, std::byte{0x5A});
  EXPECT_FALSE(format->deserialize(blob).is_ok());
}

INSTANTIATE_TEST_SUITE_P(BothFormats, FormatTruncation,
                         ::testing::Values("viper", "h5like"));

TEST(DeltaRobustness, TruncationSweep) {
  const Model base = sample_model();
  Model next = base;
  next.set_version(4);
  Rng rng(5);
  next.perturb_weights(rng, 0.01);
  const auto blob = encode_delta(base, next).value();
  const std::size_t step = std::max<std::size_t>(1, blob.size() / 97);
  for (std::size_t len = 0; len < blob.size(); len += step) {
    EXPECT_FALSE(apply_delta(base, std::span(blob).first(len)).is_ok())
        << "prefix of " << len;
    EXPECT_FALSE(delta_stats(std::span(blob).first(len)).is_ok());
  }
}

TEST(CompressRobustness, TruncationSweep) {
  const auto blob = compress_model(sample_model(), Codec::kF16ZeroRle).value();
  const std::size_t step = std::max<std::size_t>(1, blob.size() / 97);
  for (std::size_t len = 0; len < blob.size(); len += step) {
    EXPECT_FALSE(decompress_model(std::span(blob).first(len)).is_ok())
        << "prefix of " << len;
  }
}

TEST(CompressRobustness, HeaderFieldFuzz) {
  auto blob = compress_model(sample_model(), Codec::kZeroRle).value();
  // Codec byte out of range.
  auto bad_codec = blob;
  bad_codec[4] = std::byte{0xEE};
  EXPECT_FALSE(decompress_model(bad_codec).is_ok());
  // Declared original size inflated: RLE body must not satisfy it.
  auto bad_size = blob;
  bad_size[5 + 7] = std::byte{0x7F};  // clobber high byte of the u64 size
  EXPECT_FALSE(decompress_model(bad_size).is_ok());
}

TEST(RandomGarbage, NoFormatAcceptsNoise) {
  Rng rng(1234);
  auto viper = make_viper_format();
  auto h5 = make_h5like_format();
  const Model base = sample_model();
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::byte> noise(
        static_cast<std::size_t>(rng.uniform_int(0, 4096)));
    for (auto& b : noise) {
      b = static_cast<std::byte>(rng.uniform_int(0, 255));
    }
    EXPECT_FALSE(viper->deserialize(noise).is_ok());
    EXPECT_FALSE(h5->deserialize(noise).is_ok());
    EXPECT_FALSE(apply_delta(base, noise).is_ok());
    EXPECT_FALSE(decompress_blob(noise).is_ok());
  }
}

TEST(RoundTripProperty, RandomModelsSurviveAllLosslessPipelines) {
  // Randomized models through serialize→compress→decompress→deserialize.
  Rng rng(777);
  auto format = make_viper_format();
  for (int trial = 0; trial < 12; ++trial) {
    Model m("fuzz" + std::to_string(trial));
    m.set_version(static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20)));
    m.set_iteration(rng.uniform_int(-1, 1 << 20));
    const int tensors = static_cast<int>(rng.uniform_int(1, 6));
    for (int t = 0; t < tensors; ++t) {
      const auto dims = rng.uniform_int(0, 2);
      Shape shape = dims == 0 ? Shape{}
                    : dims == 1
                        ? Shape{rng.uniform_int(0, 300)}
                        : Shape{rng.uniform_int(1, 20), rng.uniform_int(1, 20)};
      const DType dtype = rng.chance(0.5) ? DType::kF32 : DType::kF64;
      (void)m.add_tensor("t" + std::to_string(t),
                         Tensor::random(dtype, shape, rng).value());
    }
    const auto blob = format->serialize(m).value();
    EXPECT_TRUE(format->deserialize(blob).value().same_weights(m));
    const auto compressed = compress_blob(blob, Codec::kZeroRle).value();
    EXPECT_EQ(decompress_blob(compressed).value(), blob);
  }
}

}  // namespace
}  // namespace viper::serial
