// Tests for incremental (delta) checkpoints: encode/apply round trips,
// sparsity benefits, chain validation, and corruption detection.
#include <gtest/gtest.h>

#include "viper/serial/delta.hpp"
#include "viper/tensor/architectures.hpp"

namespace viper::serial {
namespace {

Model base_model(std::uint64_t seed = 3) {
  Rng rng(seed);
  Model m("net");
  m.set_version(1);
  m.set_iteration(100);
  EXPECT_TRUE(m.add_tensor("encoder/w",
                           Tensor::random(DType::kF32, Shape{8192}, rng).value())
                  .is_ok());
  EXPECT_TRUE(m.add_tensor("encoder/b",
                           Tensor::random(DType::kF32, Shape{64}, rng).value())
                  .is_ok());
  EXPECT_TRUE(m.add_tensor("head/w",
                           Tensor::random(DType::kF32, Shape{4096}, rng).value())
                  .is_ok());
  return m;
}

Model bump(const Model& base, std::uint64_t version) {
  Model next = base;
  next.set_version(version);
  next.set_iteration(base.iteration() + 50);
  return next;
}

TEST(Delta, IdenticalModelsProduceTinyDelta) {
  const Model base = base_model();
  Model next = bump(base, 2);
  auto blob = encode_delta(base, next);
  ASSERT_TRUE(blob.is_ok()) << blob.status().to_string();
  // No payload: just headers, three unchanged markers, CRC.
  EXPECT_LT(blob.value().size(), 200u);
  auto stats = delta_stats(blob.value());
  ASSERT_TRUE(stats.is_ok());
  EXPECT_EQ(stats.value().tensors_unchanged, 3u);
  EXPECT_EQ(stats.value().payload_bytes, 0u);

  auto applied = apply_delta(base, blob.value());
  ASSERT_TRUE(applied.is_ok());
  EXPECT_TRUE(applied.value().same_weights(base));
  EXPECT_EQ(applied.value().version(), 2u);
  EXPECT_EQ(applied.value().iteration(), 150);
}

TEST(Delta, SingleTensorChangeShipsOnlyThatTensor) {
  // The transfer-learning case: only the head layer was fine-tuned.
  const Model base = base_model();
  Model next = bump(base, 2);
  Rng rng(77);
  next.mutable_tensor("head/w").value()->perturb(rng, 0.01);

  auto blob = encode_delta(base, next).value();
  auto stats = delta_stats(blob).value();
  EXPECT_EQ(stats.tensors_changed, 1u);
  EXPECT_EQ(stats.tensors_unchanged, 2u);
  // Delta carries ~the head tensor (16 KiB), not the full 48 KiB model.
  EXPECT_LT(blob.size(), base.payload_bytes() / 2);

  auto applied = apply_delta(base, blob).value();
  EXPECT_TRUE(applied.same_weights(next));
}

TEST(Delta, SparseBlockChangeShipsOnlyTouchedBlocks) {
  const Model base = base_model();
  Model next = bump(base, 2);
  // Flip one float in the middle of encoder/w: exactly one 4 KiB block.
  auto span = next.mutable_tensor("encoder/w").value()->mutable_data<float>();
  span[span.size() / 2] += 1.0f;

  auto blob = encode_delta(base, next).value();
  auto stats = delta_stats(blob).value();
  EXPECT_EQ(stats.tensors_changed, 1u);
  EXPECT_EQ(stats.payload_bytes, 4096u);
  auto applied = apply_delta(base, blob).value();
  EXPECT_TRUE(applied.same_weights(next));
}

TEST(Delta, BlockSizeControlsGranularity) {
  const Model base = base_model();
  Model next = bump(base, 2);
  auto span = next.mutable_tensor("encoder/w").value()->mutable_data<float>();
  span[0] += 1.0f;
  span[span.size() - 1] += 1.0f;  // first and last block touched

  const auto fine = encode_delta(base, next, {.block_bytes = 256}).value();
  const auto coarse = encode_delta(base, next, {.block_bytes = 1 << 20}).value();
  EXPECT_LT(delta_stats(fine).value().payload_bytes,
            delta_stats(coarse).value().payload_bytes);
  EXPECT_TRUE(apply_delta(base, fine).value().same_weights(next));
  EXPECT_TRUE(apply_delta(base, coarse).value().same_weights(next));
}

TEST(Delta, FullyPerturbedModelRoundTrips) {
  const Model base = base_model();
  Model next = bump(base, 2);
  Rng rng(5);
  next.perturb_weights(rng, 0.01);
  auto blob = encode_delta(base, next).value();
  auto stats = delta_stats(blob).value();
  EXPECT_EQ(stats.tensors_changed, 3u);
  // Dense change degrades to ~full payload, never much worse.
  EXPECT_LT(stats.blob_bytes, base.payload_bytes() + 2048);
  EXPECT_TRUE(apply_delta(base, blob).value().same_weights(next));
}

TEST(Delta, AddedAndRemovedTensors) {
  const Model base = base_model();
  Model next("net");
  next.set_version(2);
  Rng rng(9);
  // Keep encoder/w, drop encoder/b and head/w, add head/v2.
  ASSERT_TRUE(next.add_tensor("encoder/w", *base.tensor("encoder/w").value()).is_ok());
  ASSERT_TRUE(next.add_tensor("head/v2",
                              Tensor::random(DType::kF32, Shape{16}, rng).value())
                  .is_ok());

  auto blob = encode_delta(base, next).value();
  auto stats = delta_stats(blob).value();
  EXPECT_EQ(stats.tensors_unchanged, 1u);
  EXPECT_EQ(stats.tensors_added, 1u);
  EXPECT_EQ(stats.tensors_removed, 2u);

  auto applied = apply_delta(base, blob).value();
  EXPECT_TRUE(applied.same_weights(next));
}

TEST(Delta, ReshapedTensorIsShippedWhole) {
  const Model base = base_model();
  Model next = bump(base, 2);
  Rng rng(4);
  next.mutable_tensors().erase("head/w");
  ASSERT_TRUE(next.add_tensor("head/w",
                              Tensor::random(DType::kF32, Shape{64, 64}, rng).value())
                  .is_ok());
  auto blob = encode_delta(base, next).value();
  EXPECT_EQ(delta_stats(blob).value().tensors_added, 1u);
  EXPECT_TRUE(apply_delta(base, blob).value().same_weights(next));
}

TEST(Delta, RejectsWrongBaseVersion) {
  const Model base = base_model();
  auto blob = encode_delta(base, bump(base, 2)).value();
  Model wrong_base = base;
  wrong_base.set_version(7);
  EXPECT_EQ(apply_delta(wrong_base, blob).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Delta, RejectsWrongModelName) {
  const Model base = base_model();
  Model other = base;
  other.set_name("different");
  EXPECT_FALSE(encode_delta(base, other).is_ok());

  auto blob = encode_delta(base, bump(base, 2)).value();
  EXPECT_EQ(apply_delta(other, blob).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Delta, DetectsCorruption) {
  const Model base = base_model();
  auto blob = encode_delta(base, bump(base, 2)).value();
  blob[blob.size() / 2] ^= std::byte{0x40};
  EXPECT_EQ(apply_delta(base, blob).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(delta_stats(blob).status().code(), StatusCode::kDataLoss);
}

TEST(Delta, RejectsZeroBlockSize) {
  const Model base = base_model();
  EXPECT_FALSE(encode_delta(base, bump(base, 2), {.block_bytes = 0}).is_ok());
}

TEST(Delta, ChainAcrossManyVersions) {
  // v1 → v2 → ... → v6 by deltas only; final equals direct training.
  Model current = base_model();
  Rng rng(12);
  Model truth = current;
  for (std::uint64_t v = 2; v <= 6; ++v) {
    Model next = truth;
    next.set_version(v);
    next.perturb_weights(rng, 1e-3);
    auto blob = encode_delta(truth, next).value();
    auto applied = apply_delta(current, blob);
    ASSERT_TRUE(applied.is_ok()) << "at version " << v;
    current = std::move(applied).value();
    truth = next;
  }
  EXPECT_TRUE(current.same_weights(truth));
  EXPECT_EQ(current.version(), 6u);
}

}  // namespace
}  // namespace viper::serial
