// Fault-injection framework tests: plan/injector semantics (determinism,
// hit windows, substring matching, rank scoping) and end-to-end recovery
// scenarios — dropped chunks mid-stream, lost pub/sub notifications,
// storage-tier write failures, and a network partition during a coupled
// producer/consumer run. Every scenario asserts both recovery (the
// consumer converges to the latest version) and accounting (the
// viper.fault.* counters match the injector's report).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "viper/core/consumer.hpp"
#include "viper/core/handler.hpp"
#include "viper/fault/fault.hpp"
#include "viper/net/stream.hpp"
#include "viper/obs/context.hpp"
#include "viper/obs/ledger.hpp"
#include "viper/obs/metrics.hpp"
#include "viper/sim/chaos.hpp"

namespace viper::core {
namespace {

Model small_model(std::uint64_t seed = 5) {
  Rng rng(seed);
  Model m("net");
  EXPECT_TRUE(
      m.add_tensor("w", Tensor::random(DType::kF32, Shape{256}, rng).value()).is_ok());
  return m;
}

// ---------------------------------------------------------------------------
// Injector semantics
// ---------------------------------------------------------------------------

TEST(FaultInjector, DisarmedByDefaultAndSitesAreFree) {
  EXPECT_FALSE(fault::armed());
  EXPECT_TRUE(fault::fail_point("kvstore.get").is_ok());
  EXPECT_TRUE(fault::fail_point("net.send").is_ok());
}

TEST(FaultInjector, ProbabilisticDecisionsReplayUnderTheSameSeed) {
  fault::FaultPlan plan_a(1234);
  plan_a.add(fault::FaultRule::drop("flaky.site", 0.5));
  std::vector<bool> first;
  {
    fault::ScopedPlan chaos{std::move(plan_a)};
    for (int i = 0; i < 200; ++i) {
      first.push_back(fault::FaultInjector::global().on_site("flaky.site").drop);
    }
  }
  fault::FaultPlan plan_b(1234);
  plan_b.add(fault::FaultRule::drop("flaky.site", 0.5));
  std::vector<bool> second;
  {
    fault::ScopedPlan chaos{std::move(plan_b)};
    for (int i = 0; i < 200; ++i) {
      second.push_back(fault::FaultInjector::global().on_site("flaky.site").drop);
    }
  }
  EXPECT_EQ(first, second);
  // Sanity: a 50% rule over 200 probes fires some but not all of the time.
  const auto fired = static_cast<std::size_t>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, first.size());
}

TEST(FaultInjector, HitWindowsAndInjectionBudgets) {
  fault::FaultRule rule = fault::FaultRule::fail("win.site");
  rule.after_hits = 2;      // skip the first two probes
  rule.max_injections = 2;  // then fail exactly twice
  fault::ScopedPlan chaos{fault::FaultPlan(1).add(std::move(rule))};

  std::vector<bool> failed;
  for (int i = 0; i < 6; ++i) {
    failed.push_back(!fault::fail_point("win.site").is_ok());
  }
  EXPECT_EQ(failed, (std::vector<bool>{false, false, true, true, false, false}));
  EXPECT_EQ(fault::FaultInjector::global().report().failures, 2u);
}

TEST(FaultInjector, DropNthFiresExactlyOnce) {
  fault::ScopedPlan chaos{
      fault::FaultPlan(1).add(fault::FaultRule::drop_nth("one.site", 3))};
  std::vector<bool> dropped;
  for (int i = 0; i < 5; ++i) {
    dropped.push_back(fault::FaultInjector::global().on_site("one.site").drop);
  }
  EXPECT_EQ(dropped, (std::vector<bool>{false, false, true, false, false}));
}

TEST(FaultInjector, SubstringMatchingCoversSiteFamilies) {
  // ".put" matches every storage tier's put site but no get site.
  fault::ScopedPlan chaos{fault::FaultPlan(1).add(fault::FaultRule::fail(".put"))};
  EXPECT_FALSE(fault::fail_point("memsys.gpu-hbm.put").is_ok());
  EXPECT_FALSE(fault::fail_point("memsys.lustre-pfs.put").is_ok());
  EXPECT_TRUE(fault::fail_point("memsys.gpu-hbm.get").is_ok());
  EXPECT_TRUE(fault::fail_point("kvstore.get").is_ok());
}

TEST(FaultInjector, PartitionScopesToRankPairAndWindow) {
  // Drop (src=0 → dst=1) traffic for 2 hits starting after the 1st.
  fault::ScopedPlan chaos{fault::FaultPlan(1).add(fault::FaultRule::partition(0, 1, 1, 2))};
  auto& injector = fault::FaultInjector::global();
  EXPECT_FALSE(injector.on_site("net.send", 0, 1).drop);  // hit 1: before window
  EXPECT_FALSE(injector.on_site("net.send", 1, 0).drop);  // reverse path unscoped
  EXPECT_TRUE(injector.on_site("net.send", 0, 1).drop);   // hit 2
  EXPECT_TRUE(injector.on_site("net.send", 0, 1).drop);   // hit 3
  EXPECT_FALSE(injector.on_site("net.send", 0, 1).drop);  // window exhausted
  EXPECT_EQ(injector.report().drops, 2u);
}

TEST(FaultInjector, CrashPointFiresOnTheNthProbeOnly) {
  fault::ScopedPlan chaos{
      fault::FaultPlan(1).add(fault::FaultRule::crash_point("proc.site", 2))};
  EXPECT_FALSE(fault::crash_point("proc.site"));
  EXPECT_TRUE(fault::crash_point("proc.site"));
  EXPECT_FALSE(fault::crash_point("proc.site"));  // a process dies only once
  EXPECT_EQ(fault::FaultInjector::global().report().crashes, 1u);
}

TEST(FaultInjector, CrashStatusIsDistinguishableFromOrdinaryFailure) {
  const Status crashed = fault::crash_status("durability.flush.begin");
  EXPECT_EQ(crashed.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(fault::is_crash_status(crashed));
  // Rollback paths must treat ordinary failures differently from a
  // simulated death — a dying process runs no rollback.
  EXPECT_FALSE(fault::is_crash_status(unavailable("tier down")));
  EXPECT_FALSE(fault::is_crash_status(Status::ok()));
}

TEST(FaultInjector, HealDisablesMatchingRules) {
  fault::ScopedPlan chaos{
      fault::FaultPlan(1).add(fault::FaultRule::drop("net.send"))};
  auto& injector = fault::FaultInjector::global();
  EXPECT_TRUE(injector.on_site("net.send").drop);
  EXPECT_EQ(injector.heal("net.send"), 1u);
  EXPECT_FALSE(injector.on_site("net.send").drop);
  // Healing again finds nothing left to heal.
  EXPECT_EQ(injector.heal("net.send"), 0u);
  EXPECT_EQ(injector.report().heals, 1u);
}

TEST(FaultInjector, HealScopedToRanks) {
  // Two directed partitions (0→1 and 1→0); heal only the forward one.
  fault::ScopedPlan chaos{fault::FaultPlan(1)
                              .add(fault::FaultRule::partition(0, 1))
                              .add(fault::FaultRule::partition(1, 0))};
  auto& injector = fault::FaultInjector::global();
  EXPECT_TRUE(injector.on_site("net.send", 0, 1).drop);
  EXPECT_TRUE(injector.on_site("net.send", 1, 0).drop);
  EXPECT_EQ(injector.heal("net.send", 0, 1), 1u);
  EXPECT_FALSE(injector.on_site("net.send", 0, 1).drop);
  EXPECT_TRUE(injector.on_site("net.send", 1, 0).drop);  // reverse still down
}

TEST(FaultInjector, TimedExpiryCountsAsHeal) {
  fault::FaultRule rule = fault::FaultRule::drop("age.site");
  rule.expire_after_seconds = 0.02;
  fault::ScopedPlan chaos{fault::FaultPlan(1).add(std::move(rule))};
  auto& injector = fault::FaultInjector::global();
  EXPECT_TRUE(injector.on_site("age.site").drop);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_FALSE(injector.on_site("age.site").drop);  // aged out
  EXPECT_EQ(injector.report().heals, 1u);
}

TEST(FaultInjector, AppendRuleExtendsAnArmedPlanWithoutReset) {
  auto& injector = fault::FaultInjector::global();
  // Unarmed: nothing to append to.
  EXPECT_FALSE(injector.append_rule(fault::FaultRule::drop("late.site")));

  fault::ScopedPlan chaos{
      fault::FaultPlan(1).add(fault::FaultRule::drop("early.site"))};
  EXPECT_TRUE(injector.on_site("early.site").drop);
  EXPECT_TRUE(injector.append_rule(fault::FaultRule::drop("late.site")));
  EXPECT_TRUE(injector.on_site("late.site").drop);
  // Appending did not reset the report: both drops are tallied.
  EXPECT_EQ(injector.report().drops, 2u);
}

TEST(FaultInjector, ScrambleAlwaysChangesThePayload) {
  std::vector<std::byte> payload(256, std::byte{0});
  const auto original = payload;
  fault::scramble(payload, 77);
  EXPECT_NE(payload, original);
  // Deterministic: same seed, same flips.
  auto again = original;
  fault::scramble(again, 77);
  EXPECT_EQ(again, payload);
}

TEST(ChaosPlan, IsDeterministicPerSeedAndCoversAllSurfaces) {
  const fault::FaultPlan a = sim::chaos_plan(0xC0FFEE);
  const fault::FaultPlan b = sim::chaos_plan(0xC0FFEE);
  EXPECT_EQ(a.seed(), b.seed());
  EXPECT_EQ(a.num_rules(), b.num_rules());
  // drop + corrupt + delay on net.send, pub/sub drop, tier-write fail.
  EXPECT_EQ(a.num_rules(), 5u);
}

// ---------------------------------------------------------------------------
// Recovery scenarios
// ---------------------------------------------------------------------------

TEST(FaultScenario, DropMidChunkedStreamRecoversViaRetry) {
  auto world = net::CommWorld::create(2);
  Rng rng(3);
  std::vector<std::byte> payload(16 * 1024);
  for (auto& b : payload) b = static_cast<std::byte>(rng.uniform_int(0, 255));

  // Drop the 3rd transfer message: header, chunk 0, then chunk 1 vanishes.
  fault::ScopedPlan chaos{
      fault::FaultPlan(9).add(fault::FaultRule::drop_nth("net.send", 3))};

  net::ReliableStreamOptions options;
  options.stream.chunk_bytes = 2048;
  options.stream.timeout_seconds = 0.2;
  options.ack_timeout_seconds = 0.3;
  options.retry = RetryPolicy{.max_attempts = 4,
                              .initial_backoff_seconds = 0.001,
                              .max_backoff_seconds = 0.002,
                              .backoff_multiplier = 2.0,
                              .jitter = 0.0};
  int attempts = 0;
  Status sent;
  std::thread sender([&] {
    sent = net::reliable_stream_send(world->comm(0), 1, 7, payload, options,
                                     &attempts);
  });
  auto received = net::reliable_stream_recv(world->comm(1), 0, 7, options);
  sender.join();

  ASSERT_TRUE(sent.is_ok()) << sent.to_string();
  ASSERT_TRUE(received.is_ok()) << received.status().to_string();
  EXPECT_EQ(received.value(), payload);
  EXPECT_GE(attempts, 2);  // the first transmission lost a chunk
  EXPECT_EQ(fault::FaultInjector::global().report().drops, 1u);
}

TEST(FaultScenario, TraceContextSurvivesChunkDropAndRetry) {
  // A dropped chunk forces a full resend; the retried transmission must
  // still deliver the sender's trace context (it rides the header, and
  // every attempt re-encodes it).
  obs::set_context_armed(true);
  auto world = net::CommWorld::create(2);
  Rng rng(13);
  std::vector<std::byte> payload(16 * 1024);
  for (auto& b : payload) b = static_cast<std::byte>(rng.uniform_int(0, 255));

  fault::ScopedPlan chaos{
      fault::FaultPlan(9).add(fault::FaultRule::drop_nth("net.send", 3))};

  obs::TraceContext sent;
  sent.trace_id = obs::TraceContext::trace_id_for("net", 5);
  sent.origin_rank = 0;

  obs::TraceContext received_context;
  net::ReliableStreamOptions options;
  options.stream.chunk_bytes = 2048;
  options.stream.timeout_seconds = 0.2;
  options.ack_timeout_seconds = 0.3;
  options.retry = RetryPolicy{.max_attempts = 4,
                              .initial_backoff_seconds = 0.001,
                              .max_backoff_seconds = 0.002,
                              .backoff_multiplier = 2.0,
                              .jitter = 0.0};
  net::ReliableStreamOptions recv_options = options;
  recv_options.stream.context_out = &received_context;

  int attempts = 0;
  Status sent_status;
  std::thread sender([&] {
    obs::ScopedTraceContext scoped(sent);
    sent_status = net::reliable_stream_send(world->comm(0), 1, 7, payload,
                                            options, &attempts);
  });
  auto received = net::reliable_stream_recv(world->comm(1), 0, 7, recv_options);
  sender.join();
  obs::set_context_armed(false);

  ASSERT_TRUE(sent_status.is_ok()) << sent_status.to_string();
  ASSERT_TRUE(received.is_ok()) << received.status().to_string();
  EXPECT_EQ(received.value(), payload);
  EXPECT_GE(attempts, 2);
  ASSERT_TRUE(received_context.valid());
  EXPECT_EQ(received_context.trace_id, sent.trace_id);
  EXPECT_EQ(received_context.origin_rank, sent.origin_rank);
}

TEST(FaultScenario, LostNotificationStillClosesTheVersionTimeline) {
  // When the notification (which carries the trace context) is dropped,
  // the consumer finds the version via metadata resync — a path with no
  // incoming context. The ledger must still complete the timeline under
  // the deterministic (model, version) trace id, just without a kNotified
  // stamp.
  obs::set_context_armed(true);
  obs::VersionLedger::global().clear();
  obs::VersionLedger::set_armed(true);

  auto services = std::make_shared<SharedServices>();
  auto world = net::CommWorld::create(2);
  ModelWeightsHandler::Options producer_options;
  producer_options.strategy = Strategy::kHostSync;
  auto handler = std::make_shared<ModelWeightsHandler>(services, producer_options);
  std::thread server([&] { handler->serve_transfers(world->comm(0)); });

  InferenceConsumer::Options consumer_options;
  consumer_options.loader.producer_rank = 0;
  consumer_options.loader.request_timeout = 2.0;
  consumer_options.resync_interval = 0.05;
  InferenceConsumer consumer(services, world->comm(1), "net", consumer_options);
  consumer.start();

  {
    fault::ScopedPlan chaos{fault::FaultPlan(2).add(
        fault::FaultRule::drop_nth("kvstore.pubsub.deliver", 1))};
    Model model = small_model();
    model.set_version(1);
    ASSERT_TRUE(handler->save_weights("net", model).is_ok());
    for (int spin = 0; spin < 2000 && consumer.active_version() < 1; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(consumer.active_version(), 1u);
  }

  auto timeline = obs::VersionLedger::global().timeline("net", 1);
  ASSERT_TRUE(timeline.has_value());
  EXPECT_TRUE(timeline->complete());
  EXPECT_FALSE(timeline->has(obs::Stage::kNotified));
  EXPECT_TRUE(timeline->has(obs::Stage::kFetchDone));
  EXPECT_GT(timeline->update_latency(), 0.0);
  EXPECT_EQ(timeline->trace_id, obs::TraceContext::trace_id_for("net", 1));

  obs::VersionLedger::set_armed(false);
  obs::VersionLedger::global().clear();
  obs::set_context_armed(false);

  consumer.stop();
  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(world->comm(1), 0).is_ok());
  server.join();
}

TEST(FaultScenario, LostNotificationIsRecoveredByMetadataResync) {
  auto services = std::make_shared<SharedServices>();
  auto world = net::CommWorld::create(2);
  ModelWeightsHandler::Options producer_options;
  producer_options.strategy = Strategy::kHostSync;
  auto handler = std::make_shared<ModelWeightsHandler>(services, producer_options);
  std::thread server([&] { handler->serve_transfers(world->comm(0)); });

  InferenceConsumer::Options consumer_options;
  consumer_options.loader.producer_rank = 0;
  consumer_options.loader.request_timeout = 2.0;
  consumer_options.resync_interval = 0.05;
  InferenceConsumer consumer(services, world->comm(1), "net", consumer_options);
  consumer.start();

  {
    // The very first notification delivery is dropped.
    fault::ScopedPlan chaos{fault::FaultPlan(2).add(
        fault::FaultRule::drop_nth("kvstore.pubsub.deliver", 1))};
    Model model = small_model();
    model.set_version(1);
    ASSERT_TRUE(handler->save_weights("net", model).is_ok());
    for (int spin = 0; spin < 2000 && consumer.active_version() < 1; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(consumer.active_version(), 1u);
    EXPECT_GE(consumer.resyncs(), 1u);  // only resync could have found v1
    EXPECT_EQ(fault::FaultInjector::global().report().drops, 1u);
  }

  consumer.stop();
  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(world->comm(1), 0).is_ok());
  server.join();
}

TEST(FaultScenario, TierWriteFailureDegradesSaveDownTheLadder) {
  auto services = std::make_shared<SharedServices>();
  ModelWeightsHandler::Options options;
  options.strategy = Strategy::kGpuSync;  // preferred tier: GPU HBM
  auto handler = std::make_shared<ModelWeightsHandler>(services, options);

  fault::ScopedPlan chaos{
      fault::FaultPlan(4).add(fault::FaultRule::fail("memsys.gpu-hbm.put"))};
  Model model = small_model();
  model.set_version(1);
  auto receipt = handler->save_weights("net", model);
  ASSERT_TRUE(receipt.is_ok()) << receipt.status().to_string();
  handler->drain();

  // The save landed one rung down and the metadata says so.
  EXPECT_EQ(handler->saves_degraded(), 1u);
  auto metadata = get_metadata(services->metadata_db, "net");
  ASSERT_TRUE(metadata.is_ok());
  EXPECT_EQ(metadata.value().location, Location::kHostMemory);
  EXPECT_GE(fault::FaultInjector::global().report().failures, 1u);
}

TEST(FaultScenario, NetworkPartitionFallsBackToPfsThenHeals) {
  auto services = std::make_shared<SharedServices>();
  auto world = net::CommWorld::create(2);
  ModelWeightsHandler::Options producer_options;
  producer_options.strategy = Strategy::kHostSync;  // memory path needs comm
  auto handler = std::make_shared<ModelWeightsHandler>(services, producer_options);
  std::thread server([&] { handler->serve_transfers(world->comm(0)); });

  Model model = small_model();
  model.set_version(1);
  ASSERT_TRUE(handler->save_weights("net", model).is_ok());
  handler->drain();  // the PFS flush must have landed before the partition

  ModelLoader::Options loader_options;
  loader_options.producer_rank = 0;
  loader_options.request_timeout = 0.1;
  loader_options.retry.max_attempts = 2;
  loader_options.retry.initial_backoff_seconds = 0.001;
  loader_options.retry.max_backoff_seconds = 0.002;
  ModelLoader loader(services, world->comm(1), loader_options);

  {
    // Producer → consumer replies vanish: the memory path is partitioned.
    fault::ScopedPlan chaos{fault::FaultPlan(6).add(fault::FaultRule::partition(0, 1))};
    auto loaded = loader.load_weights("net");
    ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
    EXPECT_TRUE(loaded.value().same_weights(model));  // served from the PFS copy
    EXPECT_GT(fault::FaultInjector::global().report().drops, 0u);
  }

  // Partition healed: the memory path works again.
  auto healed = loader.load_weights("net");
  ASSERT_TRUE(healed.is_ok()) << healed.status().to_string();
  EXPECT_TRUE(healed.value().same_weights(model));

  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(world->comm(1), 0).is_ok());
  server.join();
}

// ---------------------------------------------------------------------------
// Acceptance: 10% transfer-message drop + one lost notification. Every
// version must still reach the consumer, and the viper.fault.* counters
// must account for every injected fault.
// ---------------------------------------------------------------------------

TEST(FaultScenario, LossyCoupledRunDeliversEveryVersionAndAccountsFaults) {
  obs::MetricsRegistry::global().reset();

  auto services = std::make_shared<SharedServices>();
  auto world = net::CommWorld::create(2);
  ModelWeightsHandler::Options producer_options;
  producer_options.strategy = Strategy::kHostSync;
  auto handler = std::make_shared<ModelWeightsHandler>(services, producer_options);
  std::thread server([&] { handler->serve_transfers(world->comm(0)); });

  std::set<std::uint64_t> delivered;
  std::mutex delivered_mutex;
  InferenceConsumer::Options consumer_options;
  consumer_options.loader.producer_rank = 0;
  consumer_options.loader.request_timeout = 0.3;
  consumer_options.loader.retry.max_attempts = 3;
  consumer_options.loader.retry.initial_backoff_seconds = 0.002;
  consumer_options.loader.retry.max_backoff_seconds = 0.01;
  consumer_options.resync_interval = 0.05;
  consumer_options.on_update = [&](const ModelMetadata& meta) {
    std::lock_guard<std::mutex> lock(delivered_mutex);
    delivered.insert(meta.version);
  };
  InferenceConsumer consumer(services, world->comm(1), "net", consumer_options);
  consumer.start();

  constexpr std::uint64_t kVersions = 6;
  {
    fault::FaultPlan plan(0xFA17);
    plan.add(fault::FaultRule::drop("net.send", 0.10));
    plan.add(fault::FaultRule::drop_nth("kvstore.pubsub.deliver", 3));
    fault::ScopedPlan chaos{std::move(plan)};

    Model model = small_model();
    for (std::uint64_t v = 1; v <= kVersions; ++v) {
      model.set_version(v);
      ASSERT_TRUE(handler->save_weights("net", model).is_ok());
      // Wait out retries/resyncs so no version can be coalesced away.
      for (int spin = 0; spin < 4000 && consumer.active_version() < v; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      ASSERT_EQ(consumer.active_version(), v) << "stuck at version " << v;
    }

    const fault::InjectionReport report = fault::FaultInjector::global().report();
    // The 3rd notification delivery was dropped by schedule, so at least
    // one fault was injected and v3 can only have arrived via resync.
    EXPECT_GE(report.drops, 1u);
    EXPECT_GE(consumer.resyncs(), 1u);

    // Fault accounting: the metrics counters mirror the injector report.
    const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(snapshot.counter_value("viper.fault.drops"), report.drops);
    EXPECT_EQ(snapshot.counter_value("viper.fault.corruptions"), report.corruptions);
    EXPECT_EQ(snapshot.counter_value("viper.fault.delays"), report.delays);
    EXPECT_EQ(snapshot.counter_value("viper.fault.failures"), report.failures);
    EXPECT_EQ(snapshot.counter_value("viper.fault.injections"), report.total());
  }

  {
    std::lock_guard<std::mutex> lock(delivered_mutex);
    for (std::uint64_t v = 1; v <= kVersions; ++v) {
      EXPECT_TRUE(delivered.count(v) == 1) << "version " << v << " never applied";
    }
  }
  EXPECT_EQ(consumer.active_version(), kVersions);

  consumer.stop();
  ASSERT_TRUE(
      ModelWeightsHandler::stop_transfer_server(world->comm(1), 0).is_ok());
  server.join();
}

}  // namespace
}  // namespace viper::core
