// Unit + integration tests for viper_net: link models, channels, MiniComm,
// and the fabric's link selection / fallback.
#include <gtest/gtest.h>

#include <thread>

#include "viper/common/retry.hpp"
#include "viper/fault/fault.hpp"
#include "viper/net/channel.hpp"
#include "viper/net/comm.hpp"
#include "viper/net/fabric.hpp"
#include "viper/net/stream.hpp"

namespace viper::net {
namespace {

std::vector<std::byte> payload_of(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(LinkModel, TransferTimeIsLatencyPlusBandwidth) {
  LinkModel link{.name = "l", .bandwidth = 1e9, .setup_latency = 0.01};
  EXPECT_NEAR(link.transfer_seconds(2'000'000'000), 2.01, 1e-9);
  EXPECT_NEAR(link.transfer_seconds(0), 0.01, 1e-12);
}

TEST(LinkModel, PolarisOrdering) {
  // GPUDirect must beat host RDMA must beat TCP for multi-GB checkpoints.
  const std::uint64_t bytes = 4'700'000'000ULL;
  EXPECT_LT(polaris_gpudirect().transfer_seconds(bytes),
            polaris_host_rdma().transfer_seconds(bytes));
  EXPECT_LT(polaris_host_rdma().transfer_seconds(bytes),
            polaris_tcp().transfer_seconds(bytes));
}

TEST(Channel, DeliversInFifoOrder) {
  Channel ch;
  ch.send({0, 1, payload_of({1})});
  ch.send({0, 1, payload_of({2})});
  EXPECT_EQ(ch.recv(kAnySource, 1).value().payload, payload_of({1}));
  EXPECT_EQ(ch.recv(kAnySource, 1).value().payload, payload_of({2}));
}

TEST(Channel, TagSelectiveReceiveStashesOthers) {
  Channel ch;
  ch.send({0, 5, payload_of({5})});
  ch.send({0, 7, payload_of({7})});
  // Ask for tag 7 first: the tag-5 message is set aside, not dropped.
  EXPECT_EQ(ch.recv(kAnySource, 7).value().payload, payload_of({7}));
  EXPECT_EQ(ch.recv(kAnySource, 5).value().payload, payload_of({5}));
}

TEST(Channel, SourceSelectiveReceive) {
  Channel ch;
  ch.send({1, 0, payload_of({1})});
  ch.send({2, 0, payload_of({2})});
  EXPECT_EQ(ch.recv(2, kAnyTag).value().source, 2);
  EXPECT_EQ(ch.recv(1, kAnyTag).value().source, 1);
}

TEST(Channel, RecvTimesOut) {
  Channel ch;
  auto msg = ch.recv(kAnySource, kAnyTag, 0.01);
  ASSERT_FALSE(msg.is_ok());
  EXPECT_EQ(msg.status().code(), StatusCode::kTimeout);
}

TEST(Channel, CloseCancelsBlockedReceivers) {
  Channel ch;
  std::thread receiver([&ch] {
    auto msg = ch.recv(kAnySource, kAnyTag);
    EXPECT_EQ(msg.status().code(), StatusCode::kCancelled);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.close();
  receiver.join();
}

TEST(Channel, StashSurvivesAcrossTimeouts) {
  Channel ch;
  ch.send({0, 9, payload_of({9})});
  EXPECT_FALSE(ch.recv(kAnySource, 1, 0.01).is_ok());  // stashes the tag-9 msg
  EXPECT_EQ(ch.recv(kAnySource, 9, 0.01).value().payload, payload_of({9}));
}

TEST(Comm, PingPongAcrossThreads) {
  auto world = CommWorld::create(2);
  Comm producer = world->comm(0);
  Comm consumer = world->comm(1);

  std::thread peer([&consumer] {
    auto msg = consumer.recv(0, 42);
    ASSERT_TRUE(msg.is_ok());
    ASSERT_TRUE(consumer.send(0, 43, msg.value().payload).is_ok());
  });
  const auto ping = payload_of({1, 2, 3});
  ASSERT_TRUE(producer.send(1, 42, ping).is_ok());
  auto pong = producer.recv(1, 43);
  ASSERT_TRUE(pong.is_ok());
  EXPECT_EQ(pong.value().payload, ping);
  peer.join();
}

TEST(Comm, AnySourceReceive) {
  auto world = CommWorld::create(3);
  Comm server = world->comm(0);
  ASSERT_TRUE(world->comm(1).send(0, 7, payload_of({1})).is_ok());
  ASSERT_TRUE(world->comm(2).send(0, 7, payload_of({2})).is_ok());
  auto first = server.recv(kAnySource, 7);
  auto second = server.recv(kAnySource, 7);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  EXPECT_NE(first.value().source, second.value().source);
}

TEST(Comm, RejectsBadRanks) {
  auto world = CommWorld::create(2);
  Comm c = world->comm(0);
  EXPECT_FALSE(c.send(5, 0, {}).is_ok());
  EXPECT_FALSE(c.recv(5, 0).is_ok());
}

TEST(Comm, BarrierSynchronizesAllRanks) {
  constexpr int kRanks = 4;
  auto world = CommWorld::create(kRanks);
  std::atomic<int> arrived{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&world, &arrived, r, kRanks] {
      Comm c = world->comm(r);
      ++arrived;
      ASSERT_TRUE(c.barrier().is_ok());
      // After the barrier everyone must have arrived.
      EXPECT_EQ(arrived.load(), kRanks);
    });
  }
  for (auto& t : threads) t.join();
}

TEST(Comm, ShutdownCancelsBlockedRecv) {
  auto world = CommWorld::create(2);
  Comm c = world->comm(1);
  std::thread receiver([&c] {
    EXPECT_EQ(c.recv(0, 0).status().code(), StatusCode::kCancelled);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  world->shutdown();
  receiver.join();
}

TEST(Fabric, PrefersGpuDirectWhenAvailable) {
  Fabric fabric = Fabric::polaris();
  const LinkModel* best = fabric.best_link(4'700'000'000ULL);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->kind, LinkKind::kGpuDirect);
}

TEST(Fabric, FallsBackToHostRdma) {
  // The paper's fallback chain: no GPUDirect → host-to-host RDMA.
  Fabric fabric = Fabric::polaris();
  fabric.set_available(LinkKind::kGpuDirect, false);
  const LinkModel* best = fabric.best_link(4'700'000'000ULL);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->kind, LinkKind::kHostRdma);
  EXPECT_EQ(fabric.link(LinkKind::kGpuDirect), nullptr);
}

TEST(Fabric, AddLinkReplacesSameKind) {
  Fabric fabric;
  fabric.add_link({.name = "slow", .kind = LinkKind::kTcp, .bandwidth = 1e6});
  fabric.add_link({.name = "fast", .kind = LinkKind::kTcp, .bandwidth = 1e9});
  const LinkModel* link = fabric.link(LinkKind::kTcp);
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->name, "fast");
}

TEST(Fabric, EmptyFabricHasNoBestLink) {
  Fabric fabric;
  EXPECT_EQ(fabric.best_link(100), nullptr);
  EXPECT_FALSE(fabric.available(LinkKind::kHostRdma));
}

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy{.max_attempts = 5,
                     .initial_backoff_seconds = 0.01,
                     .max_backoff_seconds = 0.04,
                     .backoff_multiplier = 2.0,
                     .jitter = 0.0};
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(0), 0.01);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(1), 0.02);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(2), 0.04);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(3), 0.04);  // capped before jitter
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(9), 0.04);
}

TEST(RetryPolicy, JitterStaysWithinBoundsUnderFixedSeed) {
  RetryPolicy policy{.max_attempts = 4,
                     .initial_backoff_seconds = 0.01,
                     .max_backoff_seconds = 1.0,
                     .backoff_multiplier = 2.0,
                     .jitter = 0.5};
  Rng rng(42);
  bool saw_jitter = false;
  for (int i = 0; i < 8; ++i) {
    const double base = policy.backoff_seconds(i);  // no rng: deterministic base
    const double jittered = policy.backoff_seconds(i, &rng);
    EXPECT_GE(jittered, base * (1.0 - policy.jitter));
    EXPECT_LE(jittered, base * (1.0 + policy.jitter));
    if (jittered != base) saw_jitter = true;
  }
  EXPECT_TRUE(saw_jitter);
}

TEST(RetryPolicy, OnlyTransientCodesAreRetryable) {
  const RetryPolicy policy;
  EXPECT_TRUE(policy.retryable(StatusCode::kUnavailable));
  EXPECT_TRUE(policy.retryable(StatusCode::kTimeout));
  EXPECT_TRUE(policy.retryable(StatusCode::kDataLoss));
  EXPECT_TRUE(policy.retryable(StatusCode::kResourceExhausted));
  EXPECT_FALSE(policy.retryable(StatusCode::kNotFound));
  EXPECT_FALSE(policy.retryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(policy.retryable(StatusCode::kCancelled));
  EXPECT_FALSE(policy.retryable(StatusCode::kOk));
}

TEST(RetryCall, ExhaustionSurfacesTheOriginalError) {
  RetryPolicy policy{.max_attempts = 3,
                     .initial_backoff_seconds = 0.0001,
                     .max_backoff_seconds = 0.0001,
                     .backoff_multiplier = 1.0,
                     .jitter = 0.0};
  int attempts = 0;
  Status last = retry_call(
      policy, nullptr, [] { return unavailable("flaky backend"); }, &attempts);
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(last.code(), StatusCode::kUnavailable);
  EXPECT_EQ(last.message(), "flaky backend");
}

TEST(RetryCall, NonRetryableErrorStopsAfterOneAttempt) {
  const RetryPolicy policy;
  int attempts = 0;
  Result<int> out = retry_call(
      policy, nullptr, []() -> Result<int> { return not_found("no such key"); },
      &attempts);
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST(RetryCall, SucceedsAfterTransientFailures) {
  RetryPolicy policy{.max_attempts = 4,
                     .initial_backoff_seconds = 0.0001,
                     .max_backoff_seconds = 0.0001,
                     .backoff_multiplier = 1.0,
                     .jitter = 0.0};
  int calls = 0;
  int attempts = 0;
  Result<int> out = retry_call(
      policy, nullptr,
      [&calls]() -> Result<int> {
        if (++calls < 3) return unavailable("transient");
        return 99;
      },
      &attempts);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value(), 99);
  EXPECT_EQ(attempts, 3);
}

TEST(ReliableStream, ExhaustsRetriesOnTotalMessageLoss) {
  // Every send is dropped on the wire: the sender never sees an ack, so
  // it must retry exactly max_attempts times and surface the ack timeout.
  auto world = CommWorld::create(2);
  Comm sender = world->comm(0);

  fault::ScopedPlan chaos{fault::FaultPlan(1).add(fault::FaultRule::drop("net.send"))};

  ReliableStreamOptions options;
  options.stream.chunk_bytes = 1024;
  options.stream.timeout_seconds = 0.05;
  options.ack_timeout_seconds = 0.02;
  options.retry = RetryPolicy{.max_attempts = 3,
                              .initial_backoff_seconds = 0.0001,
                              .max_backoff_seconds = 0.0001,
                              .backoff_multiplier = 1.0,
                              .jitter = 0.0};
  const std::vector<std::byte> payload(256, std::byte{0xAB});
  int attempts = 0;
  Status sent = reliable_stream_send(sender, 1, 7, payload, options, &attempts);
  EXPECT_FALSE(sent.is_ok());
  EXPECT_EQ(sent.code(), StatusCode::kTimeout);
  EXPECT_EQ(attempts, 3);
  // One header + one chunk per attempt, all dropped.
  EXPECT_EQ(fault::FaultInjector::global().report().drops, 6u);
}

}  // namespace
}  // namespace viper::net
