// Tests for the shared worker pool behind the parallel data plane:
// sizing, fan-out/join, stats, shutdown semantics, the bounded pipeline
// gate, and the SerialExecutor drain/shutdown ordering contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "viper/common/thread_pool.hpp"
#include "viper/common/thread_util.hpp"

namespace viper {
namespace {

TEST(ThreadPoolSizing, HonorsViperThreadsEnv) {
  ASSERT_EQ(setenv("VIPER_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3);
  ThreadPool pool;  // Options{0} → env sizing
  EXPECT_EQ(pool.num_threads(), 3);
  ASSERT_EQ(unsetenv("VIPER_THREADS"), 0);
}

TEST(ThreadPoolSizing, RejectsGarbageAndClampsEnv) {
  ASSERT_EQ(setenv("VIPER_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
  ASSERT_EQ(setenv("VIPER_THREADS", "-4", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
  ASSERT_EQ(setenv("VIPER_THREADS", "999999", 1), 0);
  EXPECT_LE(ThreadPool::default_thread_count(), 512);
  ASSERT_EQ(unsetenv("VIPER_THREADS"), 0);
}

TEST(ThreadPoolSizing, ExplicitOptionWinsOverEnv) {
  ASSERT_EQ(setenv("VIPER_THREADS", "7", 1), 0);
  ThreadPool pool(ThreadPool::Options{2});
  EXPECT_EQ(pool.num_threads(), 2);
  ASSERT_EQ(unsetenv("VIPER_THREADS"), 0);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(ThreadPool::Options{4});
  std::atomic<int> ran{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(pool.submit([&] { ran.fetch_add(1); }));
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kTasks);

  const auto stats = pool.stats();
  EXPECT_EQ(stats.num_threads, 4);
  EXPECT_EQ(stats.tasks_submitted, kTasks);
  EXPECT_EQ(stats.tasks_completed, kTasks);
  EXPECT_EQ(stats.tasks_rejected, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(ThreadPool, SubmitAfterShutdownIsRejectedAndCounted) {
  ThreadPool pool(ThreadPool::Options{2});
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
  EXPECT_EQ(pool.stats().tasks_rejected, 1u);
  pool.shutdown();  // idempotent
}

TEST(ThreadPool, ShutdownRunsTheBacklog) {
  ThreadPool pool(ThreadPool::Options{1});
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.submit([&] { ran.fetch_add(1); }));
  }
  pool.shutdown();
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, TaskObserverSeesEveryTaskAndFirstCallerWins) {
  ThreadPool pool(ThreadPool::Options{2});
  std::atomic<int> observed{0};
  EXPECT_TRUE(pool.set_task_observer([&](double queue_wait, double run) {
    EXPECT_GE(queue_wait, 0.0);
    EXPECT_GE(run, 0.0);
    observed.fetch_add(1);
  }));
  EXPECT_FALSE(pool.set_task_observer([](double, double) {}));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.submit([] {}));
  }
  pool.wait_idle();
  EXPECT_EQ(observed.load(), 20);
}

TEST(TaskGroup, JoinsAllSubtasks) {
  ThreadPool pool(ThreadPool::Options{4});
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 32; ++i) {
    group.run([&]() -> Status {
      ran.fetch_add(1);
      return Status::ok();
    });
  }
  EXPECT_TRUE(group.wait().is_ok());
  EXPECT_EQ(ran.load(), 32);
}

TEST(TaskGroup, ReportsAnErrorAndStillJoinsTheRest) {
  ThreadPool pool(ThreadPool::Options{2});
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 16; ++i) {
    group.run([&, i]() -> Status {
      ran.fetch_add(1);
      return i == 5 ? data_loss("shard 5 failed") : Status::ok();
    });
  }
  const Status status = group.wait();
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(ran.load(), 16);  // one failure never cancels siblings
  EXPECT_EQ(group.wait().code(), StatusCode::kDataLoss);  // wait is idempotent
}

TEST(TaskGroup, PoolShutdownSurfacesAsCancelled) {
  ThreadPool pool(ThreadPool::Options{1});
  pool.shutdown();
  TaskGroup group(pool);
  group.run([]() -> Status { return Status::ok(); });
  EXPECT_EQ(group.wait().code(), StatusCode::kCancelled);
}

TEST(BoundedGate, TryAcquireHonorsDepth) {
  BoundedGate gate(2);
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_FALSE(gate.try_acquire());
  EXPECT_EQ(gate.in_flight(), 2u);
  gate.release();
  EXPECT_TRUE(gate.try_acquire());
  gate.release();
  gate.release();
  EXPECT_EQ(gate.in_flight(), 0u);
}

TEST(BoundedGate, AcquireBlocksUntilRelease) {
  BoundedGate gate(1);
  ASSERT_EQ(gate.acquire(), 0.0);  // free slot: no blocking
  std::atomic<bool> acquired{false};
  std::thread blocked([&] {
    const double waited = gate.acquire();
    acquired.store(true);
    EXPECT_GE(waited, 0.0);
  });
  // The second acquire must not complete while the slot is held.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  gate.release();
  blocked.join();
  EXPECT_TRUE(acquired.load());
  gate.release();
}

TEST(BoundedGate, ZeroDepthNeverBlocks) {
  BoundedGate gate(0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gate.acquire(), 0.0);
    EXPECT_TRUE(gate.try_acquire());
  }
}

// Regression for the drain()/shutdown() concurrency audit: tasks
// submitted from other threads *while* drain() is running must neither
// crash nor deadlock, and everything submitted before drain() began has
// run by the time it returns (the documented barrier).
TEST(SerialExecutor, SubmitDuringDrainIsSafe) {
  SerialExecutor executor;
  std::atomic<int> before{0};
  std::atomic<int> during{0};
  constexpr int kBefore = 64;
  for (int i = 0; i < kBefore; ++i) {
    ASSERT_TRUE(executor.submit([&] { before.fetch_add(1); }));
  }

  std::atomic<bool> stop{false};
  std::thread submitter([&] {
    while (!stop.load()) {
      // Races drain(): acceptance is allowed to flip to false mid-loop.
      (void)executor.submit([&] { during.fetch_add(1); });
    }
  });

  for (int i = 0; i < 10; ++i) {
    executor.drain();
    EXPECT_EQ(before.load(), kBefore);
  }
  stop.store(true);
  submitter.join();
  executor.drain();
  executor.shutdown();
  EXPECT_FALSE(executor.submit([] {}));
}

TEST(SerialExecutor, ConcurrentShutdownIsSafe) {
  SerialExecutor executor;
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(executor.submit([&] { ran.fetch_add(1); }));
  }
  std::thread a([&] { executor.shutdown(); });
  std::thread b([&] { executor.shutdown(); });
  a.join();
  b.join();
  EXPECT_EQ(ran.load(), 32);  // shutdown runs the backlog exactly once
}

TEST(SerialExecutor, PreservesFifoOrder) {
  SerialExecutor executor;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(executor.submit([&order, i] { order.push_back(i); }));
  }
  executor.drain();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace viper
