// Tests for the platform cost model: the fig8 shape assertions — who wins,
// by what factor — must hold across all three paper models.
#include <gtest/gtest.h>

#include "viper/core/platform.hpp"
#include "viper/sim/app_profile.hpp"

namespace viper::core {
namespace {

struct AppCase {
  AppModel app;
  std::uint64_t bytes;
  int tensors;
};

class Fig8Shape : public ::testing::TestWithParam<AppCase> {
 protected:
  PlatformModel platform_ = PlatformModel::polaris();

  PathCosts costs(Strategy s) const {
    return platform_.update_costs(s, GetParam().bytes, GetParam().tensors);
  }
};

TEST_P(Fig8Shape, LatencyOrderingGpuHostPfs) {
  EXPECT_LT(costs(Strategy::kGpuSync).update_latency,
            costs(Strategy::kHostSync).update_latency);
  EXPECT_LT(costs(Strategy::kHostSync).update_latency,
            costs(Strategy::kViperPfs).update_latency);
  EXPECT_LT(costs(Strategy::kViperPfs).update_latency,
            costs(Strategy::kH5pyPfs).update_latency);
}

TEST_P(Fig8Shape, GpuBeatsBaselineByRoughlyPaperFactor) {
  // Paper: ≈9x (TC1), 12x (NT3.A), 15x (PtychoNN). Accept the 5–25x band.
  const double ratio = costs(Strategy::kH5pyPfs).update_latency /
                       costs(Strategy::kGpuSync).update_latency;
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 25.0);
}

TEST_P(Fig8Shape, HostBeatsBaselineByRoughlyPaperFactor) {
  // Paper: ≈3–5x. Accept the 2–8x band.
  const double ratio = costs(Strategy::kH5pyPfs).update_latency /
                       costs(Strategy::kHostSync).update_latency;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 8.0);
}

TEST_P(Fig8Shape, ViperPfsModestlyBeatsH5py) {
  // Paper: 1.2–1.3x from leaner metadata.
  const double ratio = costs(Strategy::kH5pyPfs).update_latency /
                       costs(Strategy::kViperPfs).update_latency;
  EXPECT_GT(ratio, 1.05);
  EXPECT_LT(ratio, 1.6);
}

TEST_P(Fig8Shape, AsyncLatencySlightlyAboveSync) {
  // Async adds a staging copy: a bit more end-to-end latency...
  EXPECT_GT(costs(Strategy::kGpuAsync).update_latency,
            costs(Strategy::kGpuSync).update_latency);
  EXPECT_GT(costs(Strategy::kHostAsync).update_latency,
            costs(Strategy::kHostSync).update_latency);
  // ... but within 1.6x — it's a copy, not a second transfer.
  EXPECT_LT(costs(Strategy::kGpuAsync).update_latency,
            costs(Strategy::kGpuSync).update_latency * 1.6);
}

TEST_P(Fig8Shape, AsyncStallsTrainingLess) {
  EXPECT_LT(costs(Strategy::kGpuAsync).producer_stall,
            costs(Strategy::kGpuSync).producer_stall);
  EXPECT_LT(costs(Strategy::kHostAsync).producer_stall,
            costs(Strategy::kHostSync).producer_stall);
}

TEST_P(Fig8Shape, StallOrderingGpuHostPfs) {
  // fig9's orange line: GPU ≪ host ≪ PFS training overhead.
  EXPECT_LT(costs(Strategy::kGpuAsync).producer_stall,
            costs(Strategy::kHostAsync).producer_stall);
  EXPECT_LT(costs(Strategy::kHostAsync).producer_stall,
            costs(Strategy::kViperPfs).producer_stall);
}

TEST_P(Fig8Shape, StallNeverExceedsLatency) {
  for (Strategy s : all_strategies()) {
    const PathCosts c = costs(s);
    EXPECT_LE(c.producer_stall, c.update_latency) << to_string(s);
    EXPECT_GE(c.consumer_load, 0.0);
    EXPECT_GT(c.update_latency, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperModels, Fig8Shape,
    ::testing::Values(AppCase{AppModel::kNt3A, 600'000'000ULL, 10},
                      AppCase{AppModel::kTc1, 4'700'000'000ULL, 10},
                      AppCase{AppModel::kPtychoNN, 4'500'000'000ULL, 18}),
    [](const auto& info) {
      std::string name{to_string(info.param.app)};
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

TEST(PlatformModel, Tc1AbsoluteLatenciesNearPaper) {
  // Fig 8b anchor points for the 4.7 GB TC1 model; generous ±35% bands —
  // the shape tests above are the strict ones.
  PlatformModel platform = PlatformModel::polaris();
  const std::uint64_t bytes = 4'700'000'000ULL;
  struct Anchor {
    Strategy strategy;
    double paper;
  };
  for (const Anchor a : {Anchor{Strategy::kH5pyPfs, 7.96},
                         Anchor{Strategy::kViperPfs, 6.977},
                         Anchor{Strategy::kHostSync, 2.264},
                         Anchor{Strategy::kGpuSync, 0.626}}) {
    const double modeled = platform.update_costs(a.strategy, bytes, 10).update_latency;
    EXPECT_GT(modeled, a.paper * 0.65) << to_string(a.strategy);
    EXPECT_LT(modeled, a.paper * 1.35) << to_string(a.strategy);
  }
}

TEST(PlatformModel, Fig9StallAnchors) {
  // Fig 9: 16 epoch-boundary checkpoints cost ≈1 s (GPU), ≈22 s (host),
  // ≈60 s (PFS) of training overhead for TC1.
  PlatformModel platform = PlatformModel::polaris();
  const std::uint64_t bytes = 4'700'000'000ULL;
  const double gpu = 16 * platform.update_costs(Strategy::kGpuAsync, bytes, 10).producer_stall;
  const double host = 16 * platform.update_costs(Strategy::kHostAsync, bytes, 10).producer_stall;
  const double pfs = 16 * platform.update_costs(Strategy::kViperPfs, bytes, 10).producer_stall;
  EXPECT_GT(gpu, 0.4);
  EXPECT_LT(gpu, 2.5);
  EXPECT_GT(host, 15.0);
  EXPECT_LT(host, 30.0);
  EXPECT_GT(pfs, 45.0);
  EXPECT_LT(pfs, 75.0);
}

TEST(PlatformModel, JitterIsBoundedAndSeeded) {
  PlatformModel platform = PlatformModel::polaris();
  Rng rng(3);
  const double expected =
      platform.update_costs(Strategy::kHostSync, 1'000'000'000, 10).update_latency;
  for (int i = 0; i < 100; ++i) {
    const double jittered =
        platform.update_costs(Strategy::kHostSync, 1'000'000'000, 10, &rng)
            .update_latency;
    EXPECT_GT(jittered, expected * 0.7);
    EXPECT_LT(jittered, expected * 1.4);
  }
}

TEST(PlatformModel, MoreTensorsSlowOnlyPfsPaths) {
  PlatformModel platform = PlatformModel::polaris();
  const std::uint64_t bytes = 1'000'000'000ULL;
  EXPECT_GT(platform.update_costs(Strategy::kH5pyPfs, bytes, 50).update_latency,
            platform.update_costs(Strategy::kH5pyPfs, bytes, 5).update_latency);
  EXPECT_DOUBLE_EQ(
      platform.update_costs(Strategy::kGpuSync, bytes, 50).update_latency,
      platform.update_costs(Strategy::kGpuSync, bytes, 5).update_latency);
}

TEST(Strategy, LocationAndAsyncClassification) {
  EXPECT_EQ(strategy_location(Strategy::kGpuSync), Location::kGpuMemory);
  EXPECT_EQ(strategy_location(Strategy::kHostAsync), Location::kHostMemory);
  EXPECT_EQ(strategy_location(Strategy::kViperPfs), Location::kPfs);
  EXPECT_TRUE(strategy_is_async(Strategy::kGpuAsync));
  EXPECT_FALSE(strategy_is_async(Strategy::kGpuSync));
  EXPECT_FALSE(strategy_is_async(Strategy::kViperPfs));
  EXPECT_EQ(all_strategies().size(), 6u);
}

}  // namespace
}  // namespace viper::core
