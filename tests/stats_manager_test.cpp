// Tests for the Stats Manager and its wiring into the live engine.
#include <gtest/gtest.h>

#include "viper/core/handler.hpp"
#include "viper/core/stats_manager.hpp"
#include "viper/obs/metrics.hpp"

namespace viper::core {
namespace {

TEST(StatsManager, TracksCachedModelsPerProducer) {
  StatsManager stats;
  stats.record_cached("p0", "tc1", 3, Location::kGpuMemory);
  stats.record_cached("p1", "tc1", 3, Location::kHostMemory);
  stats.record_cached("p0", "nt3", 1, Location::kGpuMemory);

  const auto holders = stats.producers_caching("tc1");
  ASSERT_EQ(holders.size(), 2u);
  EXPECT_EQ(holders[0], "p0");
  EXPECT_EQ(holders[1], "p1");

  const auto cached = stats.cached_by("p0");
  ASSERT_EQ(cached.size(), 2u);
  EXPECT_EQ(cached[0].model_name, "nt3");
  EXPECT_EQ(cached[1].model_name, "tc1");
  EXPECT_EQ(cached[1].version, 3u);
}

TEST(StatsManager, NewVersionReplacesOldRecord) {
  StatsManager stats;
  stats.record_cached("p0", "tc1", 1, Location::kGpuMemory);
  stats.record_cached("p0", "tc1", 2, Location::kGpuMemory);
  const auto cached = stats.cached_by("p0");
  ASSERT_EQ(cached.size(), 1u);
  EXPECT_EQ(cached[0].version, 2u);
}

TEST(StatsManager, EvictionRemovesRecord) {
  StatsManager stats;
  stats.record_cached("p0", "tc1", 1, Location::kGpuMemory);
  stats.record_evicted("p0", "tc1");
  EXPECT_TRUE(stats.producers_caching("tc1").empty());
  EXPECT_TRUE(stats.cached_by("p0").empty());
  stats.record_evicted("p0", "never-there");  // no-op, no crash
}

TEST(StatsManager, CountersAccumulateAndReset) {
  StatsManager stats;
  stats.on_save(100, 0.5);
  stats.on_save(200, 0.25);
  stats.on_load(300);
  stats.on_notification();
  const auto counters = stats.counters();
  EXPECT_EQ(counters.saves, 2u);
  EXPECT_EQ(counters.loads, 1u);
  EXPECT_EQ(counters.bytes_saved, 300u);
  EXPECT_EQ(counters.bytes_loaded, 300u);
  EXPECT_EQ(counters.notifications, 1u);
  EXPECT_DOUBLE_EQ(counters.modeled_stall_seconds, 0.75);
  stats.reset();
  EXPECT_EQ(stats.counters().saves, 0u);
}

TEST(StatsManager, BridgesCountersIntoMetricsRegistry) {
  // Every StatsManager update is mirrored into the process-wide metrics
  // registry under `viper.stats.*`. The registry is global and other
  // tests/managers may have bumped it, so assert on deltas.
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t saves0 = registry.counter("viper.stats.saves").value();
  const std::uint64_t loads0 = registry.counter("viper.stats.loads").value();
  const std::uint64_t bytes_saved0 =
      registry.counter("viper.stats.bytes_saved").value();
  const std::uint64_t bytes_loaded0 =
      registry.counter("viper.stats.bytes_loaded").value();
  const std::uint64_t notifications0 =
      registry.counter("viper.stats.notifications").value();
  const double stall0 =
      registry.gauge("viper.stats.modeled_stall_seconds").value();

  StatsManager stats;
  stats.on_save(100, 0.5);
  stats.on_save(200, 0.25);
  stats.on_load(300);
  stats.on_notification();

  EXPECT_EQ(registry.counter("viper.stats.saves").value() - saves0, 2u);
  EXPECT_EQ(registry.counter("viper.stats.loads").value() - loads0, 1u);
  EXPECT_EQ(registry.counter("viper.stats.bytes_saved").value() - bytes_saved0,
            300u);
  EXPECT_EQ(
      registry.counter("viper.stats.bytes_loaded").value() - bytes_loaded0,
      300u);
  EXPECT_EQ(
      registry.counter("viper.stats.notifications").value() - notifications0,
      1u);
  EXPECT_DOUBLE_EQ(
      registry.gauge("viper.stats.modeled_stall_seconds").value() - stall0,
      0.75);

  // StatsManager::reset() clears the per-manager counters only; the
  // registry keeps its cumulative process-wide totals.
  stats.reset();
  EXPECT_EQ(stats.counters().saves, 0u);
  EXPECT_EQ(registry.counter("viper.stats.saves").value() - saves0, 2u);
}

TEST(StatsManager, EngineReportsThroughSharedServices) {
  auto services = std::make_shared<SharedServices>();
  ModelWeightsHandler::Options options;
  options.strategy = Strategy::kGpuAsync;
  options.producer_id = "producer-42";
  ModelWeightsHandler handler(services, options);

  Rng rng(1);
  Model model("net");
  ASSERT_TRUE(
      model.add_tensor("w", Tensor::random(DType::kF32, Shape{64}, rng).value())
          .is_ok());
  model.set_version(1);
  ASSERT_TRUE(handler.save_weights("net", model, 0.5).is_ok());
  handler.drain();

  const auto counters = services->stats->counters();
  EXPECT_EQ(counters.saves, 1u);
  EXPECT_GT(counters.bytes_saved, 0u);
  EXPECT_EQ(counters.notifications, 1u);
  const auto holders = services->stats->producers_caching("net");
  ASSERT_EQ(holders.size(), 1u);
  EXPECT_EQ(holders[0], "producer-42");

  // Loads report too: save a second model via the PFS path (no transfer
  // server needed) and read it back.
  ModelWeightsHandler::Options pfs_options;
  pfs_options.strategy = Strategy::kViperPfs;
  ModelWeightsHandler pfs_handler(services, pfs_options);
  model.set_version(2);
  model.set_name("net2");
  ASSERT_TRUE(pfs_handler.save_weights("net2", model).is_ok());
  auto world = net::CommWorld::create(1);
  ModelLoader loader(services, world->comm(0), {});
  ASSERT_TRUE(loader.load_weights("net2").is_ok());
  EXPECT_EQ(services->stats->counters().loads, 1u);
  EXPECT_GT(services->stats->counters().bytes_loaded, 0u);
}

}  // namespace
}  // namespace viper::core
