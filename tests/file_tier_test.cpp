// Tests for the filesystem-backed tier: real durability across instances
// (process restarts), atomic writes, key safety, and end-to-end crash
// recovery of flushed checkpoints from disk.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "viper/core/recovery.hpp"
#include "viper/memsys/file_tier.hpp"
#include "viper/memsys/presets.hpp"

namespace viper::memsys {
namespace {

namespace fs = std::filesystem;

class FileTierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("viper-filetier-" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "-" + ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::unique_ptr<FileTier> open() {
    auto tier = FileTier::open(root_, polaris_lustre());
    EXPECT_TRUE(tier.is_ok());
    return std::move(tier).value();
  }

  static std::vector<std::byte> blob_of(std::size_t n, std::uint8_t fill = 0xCD) {
    return std::vector<std::byte>(n, static_cast<std::byte>(fill));
  }

  fs::path root_;
};

TEST_F(FileTierTest, PutGetRoundTrip) {
  auto tier = open();
  ASSERT_TRUE(tier->put("ckpt/net/v1", blob_of(1000)).is_ok());
  std::vector<std::byte> out;
  ASSERT_TRUE(tier->get("ckpt/net/v1", out).is_ok());
  EXPECT_EQ(out, blob_of(1000));
  EXPECT_TRUE(tier->contains("ckpt/net/v1"));
  EXPECT_EQ(tier->num_objects(), 1u);
  EXPECT_EQ(tier->used_bytes(), 1000u);
}

TEST_F(FileTierTest, ObjectsSurviveReopen) {
  {
    auto tier = open();
    ASSERT_TRUE(tier->put("ckpt/net/v1", blob_of(64, 1)).is_ok());
    ASSERT_TRUE(tier->put("ckpt/net/v2", blob_of(64, 2)).is_ok());
  }  // tier (the "process") goes away
  auto reopened = open();
  EXPECT_EQ(reopened->num_objects(), 2u);
  std::vector<std::byte> out;
  ASSERT_TRUE(reopened->get("ckpt/net/v2", out).is_ok());
  EXPECT_EQ(out, blob_of(64, 2));
}

TEST_F(FileTierTest, OverwriteReplacesContent) {
  auto tier = open();
  ASSERT_TRUE(tier->put("k", blob_of(100, 1)).is_ok());
  ASSERT_TRUE(tier->put("k", blob_of(40, 2)).is_ok());
  std::vector<std::byte> out;
  ASSERT_TRUE(tier->get("k", out).is_ok());
  EXPECT_EQ(out, blob_of(40, 2));
  EXPECT_EQ(tier->num_objects(), 1u);
}

TEST_F(FileTierTest, EraseAndMissing) {
  auto tier = open();
  ASSERT_TRUE(tier->put("k", blob_of(10)).is_ok());
  ASSERT_TRUE(tier->erase("k").is_ok());
  EXPECT_FALSE(tier->contains("k"));
  EXPECT_EQ(tier->erase("k").code(), StatusCode::kNotFound);
  std::vector<std::byte> out;
  EXPECT_EQ(tier->get("k", out).status().code(), StatusCode::kNotFound);
}

TEST_F(FileTierTest, RejectsEscapingKeys) {
  auto tier = open();
  std::vector<std::byte> out;
  EXPECT_FALSE(tier->put("../evil", blob_of(1)).is_ok());
  EXPECT_FALSE(tier->put("a/../../evil", blob_of(1)).is_ok());
  EXPECT_FALSE(tier->put("", blob_of(1)).is_ok());
  EXPECT_FALSE(tier->get("../evil", out).is_ok());
  EXPECT_FALSE(tier->contains("../evil"));
}

TEST_F(FileTierTest, NoTempFilesLeftBehind) {
  auto tier = open();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tier->put("ckpt/v" + std::to_string(i), blob_of(256)).is_ok());
  }
  for (const auto& entry : fs::recursive_directory_iterator(root_)) {
    if (entry.is_regular_file()) {
      EXPECT_EQ(entry.path().extension(), "") << entry.path();
    }
  }
}

TEST_F(FileTierTest, StaleTempsAreInvisibleToScansAndPurged) {
  auto tier = open();
  ASSERT_TRUE(tier->put("ckpt/net/v1", blob_of(100)).is_ok());

  // A crashed writer's leftover: a torn temp next to the object.
  {
    std::ofstream torn(root_ / "ckpt" / "net" / "v2.tmp", std::ios::binary);
    torn << "half a checkpoint";
  }

  // Scans never report the temp as an object.
  EXPECT_EQ(tier->num_objects(), 1u);
  EXPECT_EQ(tier->used_bytes(), 100u);
  const auto keys = tier->keys_mru();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], "ckpt/net/v1");

  // An explicit purge reaps it...
  EXPECT_EQ(tier->purge_stale_temps(), 1u);
  EXPECT_FALSE(fs::exists(root_ / "ckpt" / "net" / "v2.tmp"));

  // ...and so does reopening the tier (restart recovery).
  {
    std::ofstream torn(root_ / "ckpt" / "net" / "v3.tmp", std::ios::binary);
    torn << "another torn write";
  }
  auto reopened = open();
  EXPECT_FALSE(fs::exists(root_ / "ckpt" / "net" / "v3.tmp"));
  EXPECT_EQ(reopened->num_objects(), 1u);
}

TEST_F(FileTierTest, KeysMruNewestFirst) {
  auto tier = open();
  ASSERT_TRUE(tier->put("old", blob_of(8)).is_ok());
  ASSERT_TRUE(tier->put("new", blob_of(8)).is_ok());
  const auto keys = tier->keys_mru();
  ASSERT_EQ(keys.size(), 2u);
  // mtime resolution may tie them; at minimum both keys are present.
  EXPECT_TRUE((keys[0] == "new" && keys[1] == "old") ||
              (keys[0] == "old" && keys[1] == "new"));
}

TEST_F(FileTierTest, TicketChargesNominalBytes) {
  auto tier = open();
  auto ticket = tier->put("k", blob_of(128), 4'700'000'000ULL);
  ASSERT_TRUE(ticket.is_ok());
  EXPECT_GT(ticket.value().seconds, 3.0);  // 4.7 GB through Lustre
  EXPECT_EQ(ticket.value().bytes, 4'700'000'000ULL);
}

TEST_F(FileTierTest, CrashRecoveryFromDiskAcrossProcessBoundary) {
  // The full §4.4 story with a durable PFS: a producer flushes versions
  // to disk and dies; a brand-new services instance (fresh process) backed
  // by the same directory recovers the newest intact version.
  Model last;
  {
    auto services = std::make_shared<core::SharedServices>();
    services->pfs = open();
    core::ModelWeightsHandler::Options options;
    options.strategy = core::Strategy::kGpuAsync;
    core::ModelWeightsHandler handler(services, options);
    Rng rng(3);
    Model model("net");
    ASSERT_TRUE(
        model.add_tensor("w", Tensor::random(DType::kF32, Shape{256}, rng).value())
            .is_ok());
    for (std::uint64_t v = 1; v <= 3; ++v) {
      model.set_version(v);
      model.perturb_weights(rng, 1e-3);
      ASSERT_TRUE(handler.save_weights("net", model).is_ok());
    }
    handler.drain();
    last = model;
  }  // producer process (and its metadata DB) gone

  auto fresh_services = std::make_shared<core::SharedServices>();
  fresh_services->pfs = open();  // same directory, empty metadata DB
  auto recovered = core::recover_and_repair(*fresh_services, "net");
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_EQ(recovered.value().version, 3u);
  EXPECT_TRUE(recovered.value().model.same_weights(last));
}

}  // namespace
}  // namespace viper::memsys
